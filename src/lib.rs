//! Conditional messaging: reliable messaging extended with application
//! conditions — a comprehensive Rust implementation of Tai, Mikalsen,
//! Rouvellou & Sutton, *"Extending Reliable Messaging with Application
//! Conditions"* (ICDCS 2002), including every substrate the middleware
//! depends on.
//!
//! This facade crate re-exports the four workspace layers:
//!
//! * [`simtime`] — virtual/system clocks; every timeout in the stack is
//!   deterministic under test.
//! * [`mq`] — the reliable message-queuing substrate: queue managers,
//!   journaled persistence with crash recovery, transacted sessions,
//!   selectors, topics, push listeners, and store-and-forward channels
//!   over a simulated network.
//! * [`condmsg`] — the paper's contribution: condition trees on pick-up
//!   and processing deadlines, implicit acknowledgments, evaluation to a
//!   success/failure outcome, success notifications and compensation
//!   (including queue-side annihilation).
//! * [`dsphere`] — Dependency-Spheres: atomic units-of-work grouping
//!   conditional messages with distributed transactional resources (2PC).
//!
//! See the repository README for a quickstart, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the paper-reproduction results.
//!
//! # Example
//!
//! ```
//! use conditional_messaging::condmsg::{ConditionalMessenger, ConditionalReceiver, Destination};
//! use conditional_messaging::condmsg::{Condition, MessageOutcome};
//! use conditional_messaging::mq::{QueueManager, Wait};
//! use conditional_messaging::simtime::{Millis, SimClock};
//!
//! let clock = SimClock::new();
//! let qmgr = QueueManager::builder("QM1").clock(clock.clone()).build()?;
//! qmgr.create_queue("ORDERS")?;
//! let messenger = ConditionalMessenger::new(qmgr.clone())?;
//!
//! let condition: Condition = Destination::queue("QM1", "ORDERS")
//!     .pickup_within(Millis(20_000))
//!     .into();
//! messenger.send_message("order #42", &condition)?;
//!
//! let mut receiver = ConditionalReceiver::new(qmgr)?;
//! receiver.read_message("ORDERS", Wait::NoWait)?.expect("delivered");
//! let outcomes = messenger.pump()?;
//! assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub use condmsg;
pub use dsphere;
pub use mq;
pub use simtime;
