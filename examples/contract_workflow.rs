//! Dependency-Spheres (paper §3): a contract-signing workflow that groups
//! two conditional messages *and* two transactional resources into one
//! atomic unit-of-work.
//!
//! The sphere sends a meeting notification to the negotiation parties and
//! a filing request to the records department, while staging a calendar
//! entry and a room reservation. The sphere commits only if both messages
//! succeed (picked up in time) and both databases accept the updates; any
//! failure rolls the databases back and compensates *all* messages — even
//! ones that individually succeeded (the paper's backward dependency).
//!
//! Run with: `cargo run --example contract_workflow`

use std::sync::Arc;
use std::time::Duration;

use conditional_messaging::condmsg::{
    Condition, ConditionalMessenger, ConditionalReceiver, Destination, MessageKind,
};
use conditional_messaging::dsphere::{Calendar, DSphereService, RoomReservations};
use conditional_messaging::mq::{QueueManager, Wait};
use conditional_messaging::simtime::Millis;

const WINDOW: Millis = Millis(300);
const MEETING_SLOT: u64 = 1_000;

fn party_condition() -> Condition {
    Destination::queue("QM1", "Q.PARTIES")
        .pickup_within(WINDOW)
        .into()
}

fn records_condition() -> Condition {
    Destination::queue("QM1", "Q.RECORDS")
        .pickup_within(WINDOW)
        .into()
}

struct Office {
    qmgr: Arc<QueueManager>,
    service: Arc<DSphereService>,
    calendar: Arc<Calendar>,
    rooms: Arc<RoomReservations>,
}

fn office() -> Result<Office, Box<dyn std::error::Error>> {
    let qmgr = QueueManager::builder("QM1").build()?;
    qmgr.create_queue("Q.PARTIES")?;
    qmgr.create_queue("Q.RECORDS")?;
    let messenger = ConditionalMessenger::new(qmgr.clone())?;
    Ok(Office {
        qmgr,
        service: DSphereService::new(messenger),
        calendar: Calendar::new("calendar-db"),
        rooms: RoomReservations::new("room-db"),
    })
}

/// A desk that reads one message from a queue within the window.
fn staff_desk(qmgr: Arc<QueueManager>, queue: &'static str, name: &'static str) {
    std::thread::spawn(move || {
        let mut receiver = ConditionalReceiver::with_identity(qmgr, name).expect("receiver");
        if let Ok(Some(msg)) = receiver.read_message(queue, Wait::Timeout(Millis(1_000))) {
            if msg.kind() == MessageKind::Original {
                println!("  [{name}] handled: {}", msg.payload_str().unwrap_or("?"));
            }
        }
    });
}

fn drain(qmgr: &Arc<QueueManager>, queue: &str) -> Vec<String> {
    let mut receiver = ConditionalReceiver::new(qmgr.clone()).expect("receiver");
    let mut out = Vec::new();
    while let Ok(Some(m)) = receiver.read_message(queue, Wait::NoWait) {
        out.push(format!(
            "{:?}: {}",
            m.kind(),
            m.payload_str().unwrap_or("(system compensation)")
        ));
    }
    out
}

fn scenario_commit() -> Result<(), Box<dyn std::error::Error>> {
    println!("--- scenario A: everything lines up; the sphere commits ---");
    let office = office()?;

    let mut sphere = office.service.begin_with_timeout(Millis(2_000));
    sphere.enlist(office.calendar.clone()).map_err(box_err)?;
    sphere.enlist(office.rooms.clone()).map_err(box_err)?;
    office
        .calendar
        .schedule(sphere.xid(), "alice", MEETING_SLOT, "contract signing");
    office
        .rooms
        .reserve(sphere.xid(), "R101", MEETING_SLOT, "legal");
    sphere
        .send_message_with_compensation(
            "signing meeting on slot 1000, room R101",
            "signing meeting cancelled",
            &party_condition(),
        )
        .map_err(box_err)?;
    sphere
        .send_message_with_compensation(
            "file contract draft #77",
            "withdraw contract draft #77",
            &records_condition(),
        )
        .map_err(box_err)?;

    // Messages are out immediately; both desks are staffed.
    staff_desk(office.qmgr.clone(), "Q.PARTIES", "alice");
    staff_desk(office.qmgr.clone(), "Q.RECORDS", "records-clerk");

    let outcome = sphere
        .commit_blocking(Duration::from_millis(5))
        .map_err(box_err)?;
    println!("sphere outcome: {outcome}");
    assert!(outcome.is_committed());
    assert_eq!(
        office.calendar.event("alice", MEETING_SLOT).as_deref(),
        Some("contract signing")
    );
    assert_eq!(
        office.rooms.holder("R101", MEETING_SLOT).as_deref(),
        Some("legal")
    );
    println!("calendar + room reservation committed\n");
    Ok(())
}

fn scenario_abort() -> Result<(), Box<dyn std::error::Error>> {
    println!("--- scenario B: records desk unstaffed; the whole sphere aborts ---");
    let office = office()?;

    let mut sphere = office.service.begin_with_timeout(Millis(2_000));
    sphere.enlist(office.calendar.clone()).map_err(box_err)?;
    sphere.enlist(office.rooms.clone()).map_err(box_err)?;
    office
        .calendar
        .schedule(sphere.xid(), "alice", MEETING_SLOT, "contract signing");
    office
        .rooms
        .reserve(sphere.xid(), "R101", MEETING_SLOT, "legal");
    sphere
        .send_message_with_compensation(
            "signing meeting on slot 1000, room R101",
            "signing meeting cancelled",
            &party_condition(),
        )
        .map_err(box_err)?;
    sphere
        .send_message_with_compensation(
            "file contract draft #77",
            "withdraw contract draft #77",
            &records_condition(),
        )
        .map_err(box_err)?;

    // Only the parties' desk is staffed; the records message misses its
    // pick-up window and fails, failing the sphere.
    staff_desk(office.qmgr.clone(), "Q.PARTIES", "alice");

    let outcome = sphere
        .commit_blocking(Duration::from_millis(5))
        .map_err(box_err)?;
    println!("sphere outcome: {outcome}");
    assert!(!outcome.is_committed());
    assert_eq!(office.calendar.event("alice", MEETING_SLOT), None);
    assert_eq!(office.rooms.holder("R101", MEETING_SLOT), None);
    println!("calendar + room reservation rolled back");

    // Backward dependency: alice consumed her message, so she receives the
    // application-defined compensation; the records original annihilates
    // with its compensation on the queue.
    std::thread::sleep(Duration::from_millis(20));
    let to_parties = drain(&office.qmgr, "Q.PARTIES");
    println!("follow-ups to parties: {to_parties:?}");
    assert!(to_parties
        .iter()
        .any(|s| s.contains("signing meeting cancelled")));
    let to_records = drain(&office.qmgr, "Q.RECORDS");
    assert!(
        to_records.is_empty(),
        "records original annihilated with its compensation: {to_records:?}"
    );
    println!("records queue: original and compensation annihilated\n");
    Ok(())
}

fn box_err(e: impl std::error::Error + 'static) -> Box<dyn std::error::Error> {
    Box::new(std::io::Error::other(
        e.to_string(),
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    scenario_commit()?;
    scenario_abort()?;
    Ok(())
}
