//! Quickstart: send one conditional message, watch it succeed.
//!
//! Run with: `cargo run --example quickstart`

use std::time::Duration;

use conditional_messaging::condmsg::{
    Condition, ConditionalMessenger, ConditionalReceiver, Destination, MessageOutcome,
};
use conditional_messaging::mq::{QueueManager, Wait};
use conditional_messaging::simtime::Millis;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A queue manager with one application queue.
    let qmgr = QueueManager::builder("QM1").build()?;
    qmgr.create_queue("ORDERS")?;

    // 2. Attach the conditional messaging service (creates DS.SLOG.Q,
    //    DS.ACK.Q, DS.COMP.Q, DS.OUTCOME.Q) and run its evaluation manager
    //    in the background.
    let messenger = ConditionalMessenger::new(qmgr.clone())?;
    let _daemon = messenger.spawn_daemon(Duration::from_millis(2))?;

    // 3. Send a message that must be picked up within one second.
    let condition: Condition = Destination::queue("QM1", "ORDERS")
        .pickup_within(Millis(1_000))
        .into();
    let id = messenger.send_message("order #42: 12 widgets", &condition)?;
    println!("sent conditional message {id}");

    // 4. A receiver reads it through the conditional API — the read-ack is
    //    generated implicitly.
    let mut receiver = ConditionalReceiver::with_identity(qmgr.clone(), "warehouse")?;
    let order = receiver
        .read_message("ORDERS", Wait::Timeout(Millis(500)))?
        .expect("order delivered");
    println!("warehouse read: {:?}", order.payload_str().unwrap());

    // 5. The sender learns the outcome on DS.OUTCOME.Q.
    let outcome = messenger
        .take_outcome(id, Wait::Timeout(Millis(2_000)))?
        .expect("outcome decided");
    println!(
        "outcome: {} (decided at {})",
        outcome.outcome, outcome.decided_at
    );
    assert_eq!(outcome.outcome, MessageOutcome::Success);
    Ok(())
}
