//! The paper's Example 1 (Fig. 1 / Fig. 4): a group-meeting notification
//! sent to four recipients on four queues.
//!
//! Conditions (paper §2.1, scaled from days to milliseconds):
//! * all four recipients must *read* the notification within 2 "days";
//! * receiver3 must *process* it (update the calendar) within 7 "days";
//! * at least two of the other three must process it within 11 "days".
//!
//! The example runs the scenario twice: once with cooperative recipients
//! (meeting scheduled — success notifications confirm it) and once where
//! receiver3 never processes (meeting cancelled — compensation messages go
//! out and annihilate or undo the invitations).
//!
//! Run with: `cargo run --example meeting_scheduler`

use std::sync::Arc;
use std::time::Duration;

use conditional_messaging::condmsg::{
    Condition, ConditionalMessenger, ConditionalReceiver, Destination, DestinationSet, MessageKind,
    MessageOutcome, SendOptions,
};
use conditional_messaging::mq::{QueueManager, Wait};
use conditional_messaging::simtime::Millis;

/// One paper "day", scaled to keep the example fast.
const DAY: u64 = 100;

const RECIPIENTS: [&str; 4] = ["receiver1", "receiver2", "receiver3", "receiver4"];

fn queue_for(recipient: &str) -> String {
    format!("Q.{}", recipient.to_uppercase())
}

fn fig4_condition() -> Condition {
    let qr3 = Destination::queue("QM1", queue_for("receiver3"))
        .recipient("receiver3")
        .process_within(Millis(7 * DAY));
    let others = DestinationSet::of(vec![
        Destination::queue("QM1", queue_for("receiver1"))
            .recipient("receiver1")
            .into(),
        Destination::queue("QM1", queue_for("receiver2"))
            .recipient("receiver2")
            .into(),
        Destination::queue("QM1", queue_for("receiver4"))
            .recipient("receiver4")
            .into(),
    ])
    .process_within(Millis(11 * DAY))
    .min_process(2);
    DestinationSet::of(vec![qr3.into(), others.into()])
        .pickup_within(Millis(2 * DAY))
        .into()
}

/// A participant: reads the invitation and, if cooperative, processes it
/// inside a receiver transaction (calendar update), which produces the
/// processed-ack on commit.
fn run_participant(
    qmgr: Arc<QueueManager>,
    name: &'static str,
    cooperative: bool,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut receiver = ConditionalReceiver::with_identity(qmgr, name).expect("receiver");
        let queue = queue_for(name);
        let Ok(Some(invite)) = receiver.read_message(&queue, Wait::Timeout(Millis(5 * DAY))) else {
            return;
        };
        if invite.kind() != MessageKind::Original {
            return;
        }
        if cooperative {
            // Transactional processing: update the calendar, then commit —
            // the processed-ack is bound to this commit (paper §2.4).
            receiver.begin_tx().expect("begin");
            println!("  [{name}] processing: {:?}", invite.payload_str().unwrap());
            receiver.commit_tx().expect("commit");
        } else {
            println!("  [{name}] read the invite but never processes it");
            // Non-transactional read already acked receipt; processing is
            // never acknowledged.
        }
        // Wait for the follow-up (success notification or compensation).
        if let Ok(Some(followup)) = receiver.read_message(&queue, Wait::Timeout(Millis(30 * DAY))) {
            match followup.kind() {
                MessageKind::SuccessNotification => {
                    println!("  [{name}] confirmation: the meeting is scheduled")
                }
                MessageKind::Compensation => println!(
                    "  [{name}] compensation: {}",
                    followup.payload_str().unwrap_or("(meeting cancelled)")
                ),
                other => println!("  [{name}] unexpected follow-up {other:?}"),
            }
        }
    })
}

fn run_scenario(label: &str, cooperative_r3: bool) -> Result<(), Box<dyn std::error::Error>> {
    println!("--- {label} ---");
    let qmgr = QueueManager::builder("QM1").build()?;
    for r in RECIPIENTS {
        qmgr.create_queue(queue_for(r))?;
    }
    let messenger = ConditionalMessenger::new(qmgr.clone())?;
    let _daemon = messenger.spawn_daemon(Duration::from_millis(2))?;

    let participants: Vec<_> = RECIPIENTS
        .iter()
        .map(|r| run_participant(qmgr.clone(), r, *r != "receiver3" || cooperative_r3))
        .collect();

    let id = messenger.send_with(
        "group meeting: 2026-07-10 10:00, room R101",
        Some("meeting cancelled: conditions not met".into()),
        &fig4_condition(),
        SendOptions {
            success_notifications: Some(true),
            evaluation_timeout: Some(Millis(20 * DAY)),
            ..SendOptions::default()
        },
    )?;
    println!("sent meeting notification {id}");

    let outcome = messenger
        .take_outcome(id, Wait::Timeout(Millis(40 * DAY)))?
        .expect("outcome decided");
    match outcome.outcome {
        MessageOutcome::Success => println!("=> meeting SCHEDULED (all conditions met)"),
        MessageOutcome::Failure => println!(
            "=> meeting CANCELLED ({})",
            outcome.reason.as_deref().unwrap_or("conditions violated")
        ),
    }
    for p in participants {
        let _ = p.join();
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run_scenario("scenario A: everyone cooperates", true)?;
    run_scenario("scenario B: receiver3 never processes", false)?;
    Ok(())
}
