//! The paper's Example 2 (Fig. 2 / Fig. 5): incoming flights are announced
//! on one shared queue; *any one* controller must pick each flight up
//! within 20 seconds (scaled down here), otherwise exception handling
//! starts.
//!
//! Several controller threads compete on the shared queue. We inject a
//! staffing gap mid-run — flights announced during the gap miss their
//! pick-up window, their conditional messages fail, and the compensation
//! messages drive the escalation path.
//!
//! Run with: `cargo run --example air_traffic_control`

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use conditional_messaging::condmsg::{
    Condition, ConditionalMessenger, ConditionalReceiver, Destination, MessageKind, MessageOutcome,
    SendOptions,
};
use conditional_messaging::mq::{QueueManager, Wait};
use conditional_messaging::simtime::Millis;

/// The paper's 20-second pick-up window, scaled 200x down.
const PICKUP_WINDOW: Millis = Millis(100);
/// The paper's 21-second evaluation timeout, scaled likewise.
const EVAL_TIMEOUT: Millis = Millis(105);

const CONTROLLERS: usize = 3;
const FLIGHTS: usize = 12;

fn flight_condition() -> Condition {
    // One shared queue, anonymous recipient: whoever reads first, acks.
    Destination::queue("QM1", "Q.CENTRAL")
        .pickup_within(PICKUP_WINDOW)
        .into()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let qmgr = QueueManager::builder("QM1").build()?;
    qmgr.create_queue("Q.CENTRAL")?;
    let messenger = ConditionalMessenger::new(qmgr.clone())?;
    let _daemon = messenger.spawn_daemon(Duration::from_millis(2))?;

    let on_duty = Arc::new(AtomicBool::new(true));
    let stop = Arc::new(AtomicBool::new(false));
    let handled = Arc::new(AtomicUsize::new(0));

    // Controllers: competing consumers on the shared queue.
    let controllers: Vec<_> = (0..CONTROLLERS)
        .map(|i| {
            let qmgr = qmgr.clone();
            let on_duty = on_duty.clone();
            let stop = stop.clone();
            let handled = handled.clone();
            std::thread::spawn(move || {
                let name: &'static str = Box::leak(format!("controller-{i}").into_boxed_str());
                let mut receiver =
                    ConditionalReceiver::with_identity(qmgr, name).expect("receiver");
                while !stop.load(Ordering::SeqCst) {
                    if !on_duty.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(5));
                        continue;
                    }
                    match receiver.read_message("Q.CENTRAL", Wait::Timeout(Millis(20))) {
                        Ok(Some(msg)) if msg.kind() == MessageKind::Original => {
                            println!("  [{name}] accepted {}", msg.payload_str().unwrap_or("?"));
                            handled.fetch_add(1, Ordering::SeqCst);
                        }
                        Ok(Some(msg)) if msg.kind() == MessageKind::Compensation => {
                            // Delivered only if this side consumed the
                            // original; in this scenario originals are
                            // annihilated instead.
                            println!("  [{name}] late compensation for a consumed flight");
                        }
                        _ => {}
                    }
                }
            })
        })
        .collect();

    // Announce flights; controllers walk out mid-run.
    let mut ids = Vec::new();
    for n in 0..FLIGHTS {
        if n == FLIGHTS / 3 {
            println!("!! all controllers off duty (shift change)");
            on_duty.store(false, Ordering::SeqCst);
        }
        if n == 2 * FLIGHTS / 3 {
            println!("!! controllers back on duty");
            on_duty.store(true, Ordering::SeqCst);
        }
        let id = messenger.send_with(
            format!("flight UA-{:03} approaching sector 7", 100 + n),
            None,
            &flight_condition(),
            SendOptions {
                evaluation_timeout: Some(EVAL_TIMEOUT),
                ..SendOptions::default()
            },
        )?;
        ids.push((n, id));
        std::thread::sleep(Duration::from_millis(40));
    }

    // Collect outcomes.
    let mut ok = 0;
    let mut escalated = 0;
    for (n, id) in ids {
        let outcome = messenger
            .take_outcome(id, Wait::Timeout(Millis(2_000)))?
            .expect("every flight decided");
        match outcome.outcome {
            MessageOutcome::Success => ok += 1,
            MessageOutcome::Failure => {
                escalated += 1;
                println!(
                    "=> flight #{n} NOT picked up in {PICKUP_WINDOW}: escalating ({})",
                    outcome.reason.as_deref().unwrap_or("deadline passed")
                );
            }
        }
    }
    stop.store(true, Ordering::SeqCst);
    for c in controllers {
        let _ = c.join();
    }

    println!();
    println!(
        "flights announced: {FLIGHTS}; accepted in time: {ok}; escalated: {escalated}; \
         controller pick-ups: {}",
        handled.load(Ordering::SeqCst)
    );
    assert_eq!(ok + escalated, FLIGHTS);
    assert!(escalated > 0, "the staffing gap must cause escalations");
    assert!(ok > 0, "staffed periods must succeed");
    Ok(())
}
