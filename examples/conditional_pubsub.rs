//! Conditional publish/subscribe: the paper's concept applied to the
//! pub/sub messaging model (§2's "specific models of conditional messaging
//! can be defined with respect to … publish/subscribe systems").
//!
//! A market-data publisher pushes a trading-halt notice to a topic and
//! requires that *at least two* of its subscriber desks pick the notice up
//! within the window; otherwise the notice is withdrawn via compensation
//! messages.
//!
//! Run with: `cargo run --example conditional_pubsub`

use std::sync::Arc;
use std::time::Duration;

use conditional_messaging::condmsg::{
    ConditionalMessenger, ConditionalReceiver, GroupCondition, MessageKind, MessageOutcome,
    SendOptions,
};
use conditional_messaging::mq::topic::Topic;
use conditional_messaging::mq::{QueueManager, Wait};
use conditional_messaging::simtime::Millis;

const WINDOW: Millis = Millis(200);

fn desk(
    qmgr: Arc<QueueManager>,
    queue: String,
    name: &'static str,
    responsive: bool,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        if !responsive {
            // This desk is away from the terminal.
            return;
        }
        let mut receiver = ConditionalReceiver::with_identity(qmgr, name).expect("receiver");
        if let Ok(Some(notice)) = receiver.read_message(&queue, Wait::Timeout(Millis(500))) {
            println!(
                "  [{name}] received: {}",
                notice.payload_str().unwrap_or("?")
            );
        }
        // Wait for the follow-up (success confirmation or withdrawal).
        if let Ok(Some(followup)) = receiver.read_message(&queue, Wait::Timeout(Millis(2_000))) {
            match followup.kind() {
                MessageKind::SuccessNotification => {
                    println!("  [{name}] confirmed: halt is in effect")
                }
                MessageKind::Compensation => println!(
                    "  [{name}] withdrawn: {}",
                    followup.payload_str().unwrap_or("(system compensation)")
                ),
                other => println!("  [{name}] unexpected follow-up {other:?}"),
            }
        }
    })
}

fn run(label: &str, responsive_desks: usize) -> Result<(), Box<dyn std::error::Error>> {
    println!("--- {label} ---");
    let qmgr = QueueManager::builder("EXCHANGE").build()?;
    let messenger = ConditionalMessenger::new(qmgr.clone())?;
    let _daemon = messenger.spawn_daemon(Duration::from_millis(2))?;
    let topic = Topic::open(qmgr.clone(), "halts")?;

    let desks = ["equities", "options", "futures"];
    let handles: Vec<_> = desks
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let queue = topic.subscribe(name).expect("subscribe");
            desk(qmgr.clone(), queue, name, i < responsive_desks)
        })
        .collect();

    let (id, n) = messenger.publish_conditional_with_compensation(
        &topic,
        "TRADING HALT: XYZ pending news",
        "halt notice withdrawn",
        &GroupCondition::min_pickup_within(2, WINDOW),
        SendOptions {
            success_notifications: Some(true),
            evaluation_timeout: Some(WINDOW + Millis(50)),
            ..SendOptions::default()
        },
    )?;
    println!("published halt notice {id} to {n} desks (need ≥2 pick-ups in {WINDOW})");

    let outcome = messenger
        .take_outcome(id, Wait::Timeout(Millis(5_000)))?
        .expect("outcome decided");
    match outcome.outcome {
        MessageOutcome::Success => println!("=> quorum reached: halt CONFIRMED"),
        MessageOutcome::Failure => println!(
            "=> quorum missed: halt WITHDRAWN ({})",
            outcome.reason.as_deref().unwrap_or("window passed")
        ),
    }
    for h in handles {
        let _ = h.join();
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run("scenario A: all three desks responsive", 3)?;
    run(
        "scenario B: only one desk responsive (quorum of 2 missed)",
        1,
    )?;
    Ok(())
}
