#!/usr/bin/env sh
# Full local gate: release build, test suite (plain and with lock-order
# deadlock detection), lint-clean (clippy + cond-lint), smoke bench.
#
# `./check.sh --lint-only` runs just the static gates — the cond-lint
# token scan + cond-verify passes (with their golden fixture corpus)
# and clippy — for a fast pre-commit check.
set -eux

if [ "${1:-}" = "--lint-only" ]; then
    # Project-specific source lints and the cond-verify static analyses
    # (lock order, never-hold disciplines, message custody, registries).
    cargo run -q -p cond-lint -- --deny
    # The golden fixture corpus: every seeded violation must still fire
    # with both-site diagnostics, and the clean corpus must stay silent.
    cargo test -q -p cond-lint
    cargo clippy --workspace --all-targets -- -D warnings
    exit 0
fi

cargo build --release
cargo test -q
# Re-run the whole suite with the parking_lot shim's lock-acquisition-order
# checker: an ABBA hazard panics with both acquisition sites.
cargo test -q --workspace --features parking_lot/deadlock_detection
cargo clippy --workspace --all-targets -- -D warnings
# Project-specific source lints (sleep-polls, std::sync locks, wall-clock
# reads, unwraps) plus the cond-verify passes (lock order, never-hold,
# custody, registries); lint.allow documents the accepted exceptions.
cargo run --release -p cond-lint -- --deny
cargo run --release -p cond-bench --bin exp_fig6_overhead -- --quick
# Journal throughput regression gate: group commit must beat fsync-per-append
# by >= 5x at 8 writers (asserted inside the binary).
cargo run --release -p cond-bench --bin exp_journal -- --quick
# Transport smoke: in-proc link vs loopback TCP, asserts batches moved and
# writes BENCH_tcp.json.
cargo run --release -p cond-bench --bin exp_tcp -- --quick
# Relay federation: multi-hop chains over loopback TCP, plus the Fig. 8
# crash proof (middle relay crashed mid-handoff, exactly-once asserted
# inside the binary). Writes BENCH_federation.json.
cargo run --release -p cond-bench --bin exp_federation -- --quick
# Storage inversion gate: indexed selector/correlation gets must beat the
# band scan, and checkpointed restart must be >= 10x faster than replaying
# the full history (asserted inside the binary). Writes BENCH_store.json.
cargo run --release -p cond-bench --bin exp_store -- --quick
# Declarative scenarios: the three flagship TOMLs (relay crash, D-Sphere
# branch pattern, scaled-down IoT chaos fleet) compile, run, and every
# exactly-one-outcome oracle must pass (asserted inside the binary).
# Writes BENCH_scenario.json.
cargo run --release -p cond-bench --bin exp_scenario -- --quick
