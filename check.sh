#!/usr/bin/env sh
# Full local gate: release build, test suite, lint-clean.
set -eux

cargo build --release
cargo test -q
cargo clippy -- -D warnings
cargo run --release -p cond-bench --bin exp_fig6_overhead -- --quick
