#!/usr/bin/env sh
# Full local gate: release build, test suite, lint-clean.
set -eux

cargo build --release
cargo test -q
cargo clippy -- -D warnings
