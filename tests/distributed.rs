//! Cross-queue-manager integration: conditional messages and their
//! acknowledgments travelling over store-and-forward channels with
//! simulated network links (latency, loss, partitions).
//!
//! This is the paper's distributed architecture (§2.4: "Responsibilities
//! of conditional messaging are distributed between the sender side and
//! the various receiver sides, with message communication taking place in
//! both directions").

use std::sync::Arc;
use std::time::Duration;

use condmsg::{
    CondConfig, Condition, ConditionalMessenger, ConditionalReceiver, Destination, DestinationSet,
    MessageKind, MessageOutcome, SendOptions,
};
use mq::channel::Channel;
use mq::net::{Link, LinkConfig};
use mq::{QueueManager, SystemClock, Wait};
use simtime::Millis;

struct Cluster {
    sender_qm: Arc<QueueManager>,
    receiver_qm: Arc<QueueManager>,
    messenger: Arc<ConditionalMessenger>,
    _channels: (Channel, Channel),
}

fn cluster(link_ab: Arc<Link>, link_ba: Arc<Link>) -> Cluster {
    cluster_with(link_ab, link_ba, CondConfig::default())
}

fn cluster_with(link_ab: Arc<Link>, link_ba: Arc<Link>, config: CondConfig) -> Cluster {
    let clock = SystemClock::new();
    let sender_qm = QueueManager::builder("QM.SEND")
        .clock(clock.clone())
        .build()
        .unwrap();
    let receiver_qm = QueueManager::builder("QM.RECV")
        .clock(clock)
        .build()
        .unwrap();
    receiver_qm.create_queue("Q.IN").unwrap();
    let channels = Channel::connect_duplex(&sender_qm, &receiver_qm, link_ab, link_ba).unwrap();
    let messenger = ConditionalMessenger::with_config(sender_qm.clone(), config).unwrap();
    Cluster {
        sender_qm,
        receiver_qm,
        messenger,
        _channels: channels,
    }
}

fn wait_for<F: Fn() -> bool>(what: &str, timeout: Duration, f: F) {
    let deadline = std::time::Instant::now() + timeout;
    while !f() {
        assert!(std::time::Instant::now() < deadline, "timed out: {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn remote_condition(window: Millis) -> Condition {
    Destination::queue("QM.RECV", "Q.IN")
        .pickup_within(window)
        .into()
}

#[test]
fn remote_destination_and_ack_roundtrip() {
    let c = cluster(Link::ideal(), Link::ideal());
    let _daemon = c.messenger.spawn_daemon(Duration::from_millis(2));
    let id = c
        .messenger
        .send_message("over the wire", &remote_condition(Millis(2_000)))
        .unwrap();

    // Message crosses the channel to QM.RECV.
    wait_for("remote delivery", Duration::from_secs(5), || {
        c.receiver_qm.queue("Q.IN").map(|q| q.depth()).unwrap_or(0) == 1
    });
    let mut receiver =
        ConditionalReceiver::with_identity(c.receiver_qm.clone(), "remote-app").unwrap();
    let got = receiver
        .read_message("Q.IN", Wait::Timeout(Millis(1_000)))
        .unwrap()
        .unwrap();
    assert_eq!(got.kind(), MessageKind::Original);
    assert_eq!(got.payload_str(), Some("over the wire"));

    // The read-ack travels back over the reverse channel and the
    // evaluation manager decides success.
    let outcome = c
        .messenger
        .take_outcome(id, Wait::Timeout(Millis(5_000)))
        .unwrap()
        .expect("outcome decided");
    assert_eq!(outcome.outcome, MessageOutcome::Success);
}

#[test]
fn lossy_links_delay_but_do_not_lose_the_protocol() {
    let lossy = || {
        Link::new(LinkConfig {
            drop_rate: 0.4,
            seed: 1234,
            ..LinkConfig::default()
        })
    };
    let c = cluster(lossy(), lossy());
    let _daemon = c.messenger.spawn_daemon(Duration::from_millis(2));
    let id = c
        .messenger
        .send_message("retry until delivered", &remote_condition(Millis(10_000)))
        .unwrap();

    let mut receiver = ConditionalReceiver::new(c.receiver_qm.clone()).unwrap();
    let got = receiver
        .read_message("Q.IN", Wait::Timeout(Millis(8_000)))
        .unwrap()
        .expect("delivered despite drops");
    assert_eq!(got.kind(), MessageKind::Original);
    let outcome = c
        .messenger
        .take_outcome(id, Wait::Timeout(Millis(8_000)))
        .unwrap()
        .expect("ack survived drops");
    assert_eq!(outcome.outcome, MessageOutcome::Success);
}

#[test]
fn partition_during_ack_fails_only_by_deadline() {
    // Forward link fine; the *ack* path is partitioned long enough that
    // the pick-up happens in time but the sender cannot learn about it
    // before the deadline. With an ack grace configured (the paper's
    // "20 s condition, 21 s timeout" pattern), the verdict depends on the
    // ack's *timestamps*, so the late-arriving ack with a timely read
    // timestamp still satisfies the condition.
    let back = Link::ideal();
    let c = cluster_with(
        Link::ideal(),
        back.clone(),
        CondConfig {
            ack_grace: Millis(10_000),
            ..CondConfig::default()
        },
    );
    let _daemon = c.messenger.spawn_daemon(Duration::from_millis(2));
    back.set_up(false);

    let id = c
        .messenger
        .send_message("partitioned ack", &remote_condition(Millis(400)))
        .unwrap();
    let mut receiver = ConditionalReceiver::new(c.receiver_qm.clone()).unwrap();
    receiver
        .read_message("Q.IN", Wait::Timeout(Millis(1_000)))
        .unwrap()
        .expect("delivered promptly");

    // Heal after the deadline: the ack arrives late but carries a timely
    // read timestamp.
    std::thread::sleep(Duration::from_millis(600));
    back.set_up(true);
    let outcome = c
        .messenger
        .take_outcome(id, Wait::Timeout(Millis(5_000)))
        .unwrap()
        .expect("decided after heal");
    assert_eq!(
        outcome.outcome,
        MessageOutcome::Success,
        "timely read, late ack: still a success ({:?})",
        outcome.reason
    );
}

#[test]
fn evaluation_timeout_bounds_partition_waits() {
    // Same partition, but the sender set an evaluation timeout shorter
    // than the outage: the message fails even though it was read in time —
    // exactly the trade-off the paper's timeout exists for.
    let back = Link::ideal();
    let c = cluster_with(
        Link::ideal(),
        back.clone(),
        CondConfig {
            ack_grace: Millis(10_000),
            ..CondConfig::default()
        },
    );
    let _daemon = c.messenger.spawn_daemon(Duration::from_millis(2));
    back.set_up(false);

    let id = c
        .messenger
        .send_with(
            "bounded wait",
            None,
            &remote_condition(Millis(300)),
            SendOptions {
                evaluation_timeout: Some(Millis(500)),
                ..SendOptions::default()
            },
        )
        .unwrap();
    let mut receiver = ConditionalReceiver::new(c.receiver_qm.clone()).unwrap();
    receiver
        .read_message("Q.IN", Wait::Timeout(Millis(1_000)))
        .unwrap()
        .expect("delivered promptly");

    let outcome = c
        .messenger
        .take_outcome(id, Wait::Timeout(Millis(5_000)))
        .unwrap()
        .expect("timeout decides");
    assert_eq!(outcome.outcome, MessageOutcome::Failure);
    assert!(outcome.reason.as_deref().unwrap().contains("timeout"));
    back.set_up(true);
}

#[test]
fn compensation_crosses_managers_on_failure() {
    let c = cluster(Link::ideal(), Link::ideal());
    let _daemon = c.messenger.spawn_daemon(Duration::from_millis(2));
    let id = c
        .messenger
        .send_message_with_compensation("original", "undo remotely", &remote_condition(Millis(150)))
        .unwrap();
    // Nobody reads in time → failure → compensation crosses the channel.
    let outcome = c
        .messenger
        .take_outcome(id, Wait::Timeout(Millis(5_000)))
        .unwrap()
        .unwrap();
    assert_eq!(outcome.outcome, MessageOutcome::Failure);
    wait_for(
        "compensation delivered remotely",
        Duration::from_secs(5),
        || c.receiver_qm.queue("Q.IN").map(|q| q.depth()).unwrap_or(0) == 2,
    );
    // Receiver-side system annihilates the pair.
    let mut receiver = ConditionalReceiver::new(c.receiver_qm.clone()).unwrap();
    assert!(receiver
        .read_message("Q.IN", Wait::NoWait)
        .unwrap()
        .is_none());
    assert_eq!(c.receiver_qm.queue("Q.IN").unwrap().depth(), 0);
}

#[test]
fn fan_out_across_two_managers() {
    let clock = SystemClock::new();
    let sender_qm = QueueManager::builder("QM.SEND")
        .clock(clock.clone())
        .build()
        .unwrap();
    sender_qm.create_queue("Q.LOCAL").unwrap();
    let remote_qm = QueueManager::builder("QM.RECV")
        .clock(clock)
        .build()
        .unwrap();
    remote_qm.create_queue("Q.FAR").unwrap();
    let _channels =
        Channel::connect_duplex(&sender_qm, &remote_qm, Link::ideal(), Link::ideal()).unwrap();
    let messenger = ConditionalMessenger::new(sender_qm.clone()).unwrap();
    let _daemon = messenger.spawn_daemon(Duration::from_millis(2));

    let condition: Condition = DestinationSet::of(vec![
        Destination::queue("QM.SEND", "Q.LOCAL").into(),
        Destination::queue("QM.RECV", "Q.FAR").into(),
    ])
    .pickup_within(Millis(3_000))
    .into();
    let id = messenger.send_message("mixed fan-out", &condition).unwrap();

    let mut local = ConditionalReceiver::new(sender_qm.clone()).unwrap();
    local
        .read_message("Q.LOCAL", Wait::Timeout(Millis(1_000)))
        .unwrap()
        .expect("local leg");
    let mut remote = ConditionalReceiver::new(remote_qm.clone()).unwrap();
    remote
        .read_message("Q.FAR", Wait::Timeout(Millis(3_000)))
        .unwrap()
        .expect("remote leg");

    let outcome = messenger
        .take_outcome(id, Wait::Timeout(Millis(5_000)))
        .unwrap()
        .unwrap();
    assert_eq!(outcome.outcome, MessageOutcome::Success);
}

#[test]
fn example1_with_recipients_on_three_managers() {
    // The paper's Fig. 1 topology, distributed: the sender runs on QM.HQ;
    // receiver3 has its own manager, the other three share another, all
    // linked by channels. The Fig. 4 condition evaluates exactly as in the
    // local case because acks carry timestamps, not arrival times.
    let clock = SystemClock::new();
    let hq = QueueManager::builder("QM.HQ")
        .clock(clock.clone())
        .build()
        .unwrap();
    let site_a = QueueManager::builder("QM.A")
        .clock(clock.clone())
        .build()
        .unwrap();
    let site_b = QueueManager::builder("QM.B").clock(clock).build().unwrap();
    site_a.create_queue("Q.R3").unwrap();
    for q in ["Q.R1", "Q.R2", "Q.R4"] {
        site_b.create_queue(q).unwrap();
    }
    let _ch_a = Channel::connect_duplex(&hq, &site_a, Link::ideal(), Link::ideal()).unwrap();
    let _ch_b = Channel::connect_duplex(&hq, &site_b, Link::ideal(), Link::ideal()).unwrap();

    let messenger = ConditionalMessenger::with_config(
        hq.clone(),
        CondConfig {
            ack_grace: Millis(2_000),
            ..CondConfig::default()
        },
    )
    .unwrap();
    let _daemon = messenger.spawn_daemon(Duration::from_millis(2));

    // Fig. 4, scaled: one "day" = 500 ms.
    const DAY: u64 = 500;
    let qr3 = Destination::queue("QM.A", "Q.R3")
        .recipient("receiver3")
        .process_within(Millis(7 * DAY));
    let others = DestinationSet::of(vec![
        Destination::queue("QM.B", "Q.R1").into(),
        Destination::queue("QM.B", "Q.R2").into(),
        Destination::queue("QM.B", "Q.R4").into(),
    ])
    .process_within(Millis(11 * DAY))
    .min_process(2);
    let condition: Condition = DestinationSet::of(vec![qr3.into(), others.into()])
        .pickup_within(Millis(2 * DAY))
        .into();
    let id = messenger
        .send_message("distributed meeting", &condition)
        .unwrap();

    // receiver3 processes transactionally on its own manager.
    let r3 = std::thread::spawn(move || {
        let mut receiver = ConditionalReceiver::with_identity(site_a, "receiver3").unwrap();
        receiver.begin_tx().unwrap();
        receiver
            .read_message("Q.R3", Wait::Timeout(Millis(3_000)))
            .unwrap()
            .expect("r3 leg delivered");
        receiver.commit_tx().unwrap();
    });
    // On site B: r1 processes, r2 reads only, r4 processes → 2 of 3.
    let rb = std::thread::spawn(move || {
        let mut receiver = ConditionalReceiver::new(site_b).unwrap();
        for (queue, process) in [("Q.R1", true), ("Q.R2", false), ("Q.R4", true)] {
            if process {
                receiver.begin_tx().unwrap();
            }
            receiver
                .read_message(queue, Wait::Timeout(Millis(3_000)))
                .unwrap()
                .expect("site-b leg delivered");
            if process {
                receiver.commit_tx().unwrap();
            }
        }
    });
    r3.join().unwrap();
    rb.join().unwrap();

    let outcome = messenger
        .take_outcome(id, Wait::Timeout(Millis(10_000)))
        .unwrap()
        .expect("decided");
    assert_eq!(
        outcome.outcome,
        MessageOutcome::Success,
        "distributed Fig. 4 scenario succeeds: {:?}",
        outcome.reason
    );
}

#[test]
fn latency_is_visible_in_read_timestamps() {
    let slow = Link::new(LinkConfig {
        base_latency: Millis(80),
        ..LinkConfig::default()
    });
    let c = cluster(slow, Link::ideal());
    let _daemon = c.messenger.spawn_daemon(Duration::from_millis(2));
    let send_clock = c.sender_qm.clock().clone();
    let before = send_clock.now();
    let id = c
        .messenger
        .send_message("slow wire", &remote_condition(Millis(5_000)))
        .unwrap();
    let mut receiver = ConditionalReceiver::new(c.receiver_qm.clone()).unwrap();
    receiver
        .read_message("Q.IN", Wait::Timeout(Millis(3_000)))
        .unwrap()
        .expect("delivered after latency");
    let outcome = c
        .messenger
        .take_outcome(id, Wait::Timeout(Millis(5_000)))
        .unwrap()
        .unwrap();
    assert_eq!(outcome.outcome, MessageOutcome::Success);
    // Decision strictly after the link latency elapsed.
    assert!(outcome.decided_at >= before + Millis(80));
}
