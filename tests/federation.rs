//! Relay federation: multi-hop routing across queue managers.
//!
//! A federation is a graph of channels where no manager needs a direct
//! channel to every other: an envelope addressed to `QM.C` may cross
//! `QM.A → QM.B → QM.C`, with `QM.B` acting as a relay. These tests prove
//! the three federation guarantees end to end:
//!
//! * envelopes addressed to another manager are *relayed*, never accepted
//!   as local delivery (the misdelivery regression) and never silently
//!   dropped (no viable next hop dead-letters with a reason);
//! * the custody handoff at each relay is journaled, so a relay crash
//!   mid-handoff loses nothing and the upstream retry cannot
//!   double-deliver (journal-reseeded origin+id dedup);
//! * the full Fig. 8 conditional-messaging protocol — originals out,
//!   read-acks back, verdicts, compensations — works across a 3-manager
//!   chain over loopback TCP with the middle relay crashed and rebuilt
//!   mid-flight, every message reaching exactly one of
//!   success / compensation+annihilation.

use std::sync::Arc;
use std::time::Duration;

use condmsg::{
    Condition, ConditionalMessenger, ConditionalReceiver, Destination, MessageKind, MessageOutcome,
};
use mq::channel::Channel;
use mq::journal::MemJournal;
use mq::net::Link;
use mq::transport::tcp::{TcpAcceptor, TcpConfig};
use mq::{
    Message, QueueAddress, QueueManager, SystemClock, Wait, DEAD_LETTER_QUEUE, DLQ_REASON_PROPERTY,
    RELAY_HOPS_PROPERTY, RELAY_ORIGIN_PROPERTY,
};
use simtime::Millis;

fn tcp_config() -> TcpConfig {
    TcpConfig {
        connect_timeout: Duration::from_millis(1000),
        read_timeout: Duration::from_millis(1500),
        heartbeat_interval: Duration::from_millis(200),
        backoff_initial: Duration::from_millis(5),
        backoff_max: Duration::from_millis(100),
        expected_peer: None,
    }
}

fn wait_for<F: Fn() -> bool>(what: &str, timeout: Duration, f: F) {
    let deadline = std::time::Instant::now() + timeout;
    while !f() {
        assert!(std::time::Instant::now() < deadline, "timed out: {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn depth(qm: &Arc<QueueManager>, queue: &str) -> usize {
    qm.queue(queue).map(|q| q.depth()).unwrap_or(0)
}

/// `QM.A → QM.B → QM.C` over loopback TCP: `QM.A` has no channel to
/// `QM.C` at all; its default route sends everything through `QM.B`,
/// which relays. The envelope must *not* be accepted locally at `QM.B`
/// even though `QM.B` owns a queue with the same name.
#[test]
fn chain_relays_across_three_managers_over_tcp() {
    let clock = SystemClock::new();
    let a = QueueManager::builder("QM.A").clock(clock.clone()).build().unwrap();
    let b = QueueManager::builder("QM.B").clock(clock.clone()).build().unwrap();
    let c = QueueManager::builder("QM.C").clock(clock).build().unwrap();
    // Same-named queue on the relay: the misdelivery bug would deliver
    // here instead of forwarding.
    b.create_queue("Q.IN").unwrap();
    c.create_queue("Q.IN").unwrap();

    let acc_b = TcpAcceptor::bind(&b, "127.0.0.1:0").unwrap();
    let acc_c = TcpAcceptor::bind(&c, "127.0.0.1:0").unwrap();
    let _ab = Channel::connect_tcp(&a, "QM.B", acc_b.local_addr(), tcp_config()).unwrap();
    let _bc = Channel::connect_tcp(&b, "QM.C", acc_c.local_addr(), tcp_config()).unwrap();
    // QM.A knows nothing about QM.C except "everything unknown goes via
    // QM.B".
    a.define_default_route(&["SYSTEM.XMIT.QM.B"]).unwrap();

    a.put_to(
        &QueueAddress::new("QM.C", "Q.IN"),
        Message::text("two hops").build(),
    )
    .unwrap();

    wait_for("relayed delivery at QM.C", Duration::from_secs(10), || {
        depth(&c, "Q.IN") == 1
    });
    assert_eq!(depth(&b, "Q.IN"), 0, "relay must not accept locally");
    assert_eq!(depth(&b, DEAD_LETTER_QUEUE), 0);

    let got = c.get("Q.IN", Wait::NoWait).unwrap().unwrap();
    assert_eq!(got.payload_str(), Some("two hops"));
    // Transmission headers are stripped; the relay audit trail survives.
    assert!(got.property(mq::XMIT_DEST_QUEUE_PROPERTY).is_none());
    assert!(got.property(mq::XMIT_DEST_MANAGER_PROPERTY).is_none());
    assert_eq!(got.str_property(RELAY_ORIGIN_PROPERTY), Some("QM.A"));
    assert_eq!(got.i64_property(RELAY_HOPS_PROPERTY), Some(1));

    let b_metrics = b.metrics_snapshot();
    assert_eq!(b_metrics.counter("mq.relay.forwarded"), 1);
    assert_eq!(b_metrics.counter("mq.relay.delivered_local"), 0);

    a.shutdown();
    b.shutdown();
    c.shutdown();
}

/// A four-manager chain (in-process links): each middle manager only has
/// a default next-hop route, and the hop-count header grows by one per
/// relay.
#[test]
fn default_routes_carry_envelopes_down_a_four_manager_chain() {
    let clock = SystemClock::new();
    let managers: Vec<Arc<QueueManager>> = (0..4)
        .map(|i| {
            QueueManager::builder(format!("M{i}"))
                .clock(clock.clone())
                .build()
                .unwrap()
        })
        .collect();
    managers[3].create_queue("Q.END").unwrap();
    let mut channels = Vec::new();
    for i in 0..3 {
        channels.push(Channel::connect(&managers[i], &managers[i + 1], Link::ideal()).unwrap());
        managers[i]
            .define_default_route(&[format!("SYSTEM.XMIT.M{}", i + 1)])
            .unwrap();
    }

    managers[0]
        .put_to(
            &QueueAddress::new("M3", "Q.END"),
            Message::text("end of the line").build(),
        )
        .unwrap();
    wait_for("delivery at the chain end", Duration::from_secs(10), || {
        depth(&managers[3], "Q.END") == 1
    });
    let got = managers[3].get("Q.END", Wait::NoWait).unwrap().unwrap();
    assert_eq!(got.str_property(RELAY_ORIGIN_PROPERTY), Some("M0"));
    assert_eq!(
        got.i64_property(RELAY_HOPS_PROPERTY),
        Some(2),
        "relayed by M1 and M2"
    );
    for m in &managers {
        assert_eq!(depth(m, DEAD_LETTER_QUEUE), 0);
        m.shutdown();
    }
}

/// An envelope addressed to a manager nobody has a route for must be
/// dead-lettered at the relay with a reason naming the failure — not
/// local-accepted, not dropped.
#[test]
fn relay_without_route_dead_letters_with_reason() {
    let clock = SystemClock::new();
    let a = QueueManager::builder("QM.A").clock(clock.clone()).build().unwrap();
    let b = QueueManager::builder("QM.B").clock(clock).build().unwrap();
    let acc_b = TcpAcceptor::bind(&b, "127.0.0.1:0").unwrap();
    let _ab = Channel::connect_tcp(&a, "QM.B", acc_b.local_addr(), tcp_config()).unwrap();
    a.define_default_route(&["SYSTEM.XMIT.QM.B"]).unwrap();

    a.put_to(
        &QueueAddress::new("QM.NOWHERE", "Q.X"),
        Message::text("lost soul").build(),
    )
    .unwrap();
    wait_for("dead-lettered at the relay", Duration::from_secs(10), || {
        depth(&b, DEAD_LETTER_QUEUE) == 1
    });
    let dead = b.get(DEAD_LETTER_QUEUE, Wait::NoWait).unwrap().unwrap();
    let reason = dead.str_property(DLQ_REASON_PROPERTY).unwrap();
    assert!(
        reason.contains("no route to manager QM.NOWHERE"),
        "reason names the relay failure: {reason}"
    );
    // Addressing survives for post-mortem audit.
    assert_eq!(
        dead.str_property(mq::XMIT_DEST_MANAGER_PROPERTY),
        Some("QM.NOWHERE")
    );
    assert_eq!(b.metrics_snapshot().counter("mq.relay.dead_lettered"), 1);
    a.shutdown();
    b.shutdown();
}

/// Binds an acceptor on a specific port, retrying briefly: the port was
/// just freed by the crashed predecessor and the OS may lag a moment.
fn rebind(manager: &Arc<QueueManager>, addr: std::net::SocketAddr) -> Arc<TcpAcceptor> {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match TcpAcceptor::bind(manager, &addr.to_string()) {
            Ok(acceptor) => return acceptor,
            Err(e) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "could not rebind {addr}: {e}"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// The acceptance proof: the paper's Fig. 8 compensation flow across a
/// three-manager chain over loopback TCP, with the middle relay crashed
/// mid-handoff (envelopes accepted into its custody but not yet
/// forwarded) and rebuilt from its journal. Every message must reach
/// exactly one of: success (read in time), or
/// compensation + annihilation — nothing lost, nothing doubled.
#[test]
fn fig8_compensation_flow_survives_middle_relay_crash() {
    let clock = SystemClock::new();
    let a = QueueManager::builder("QM.A").clock(clock.clone()).build().unwrap();
    let journal = MemJournal::new();
    let b = QueueManager::builder("QM.B")
        .clock(clock.clone())
        .journal(journal.clone())
        .build()
        .unwrap();
    let c = QueueManager::builder("QM.C").clock(clock.clone()).build().unwrap();
    c.create_queue("Q.SLOW").unwrap();
    c.create_queue("Q.FAST").unwrap();

    let acc_a = TcpAcceptor::bind(&a, "127.0.0.1:0").unwrap();
    let acc_b = TcpAcceptor::bind(&b, "127.0.0.1:0").unwrap();
    let acc_c = TcpAcceptor::bind(&c, "127.0.0.1:0").unwrap();
    let b_addr = acc_b.local_addr();

    // The outer legs of the chain are live from the start; the B→C leg is
    // *not*: QM.B accepts custody of everything bound for QM.C (route
    // defined, custody journaled onto SYSTEM.XMIT.QM.C) but cannot
    // forward yet — the deterministic "crashed mid-handoff" window.
    let _ab = Channel::connect_tcp(&a, "QM.B", b_addr, tcp_config()).unwrap();
    a.define_default_route(&["SYSTEM.XMIT.QM.B"]).unwrap();
    let _cb = Channel::connect_tcp(&c, "QM.B", b_addr, tcp_config()).unwrap();
    c.define_default_route(&["SYSTEM.XMIT.QM.B"]).unwrap();
    b.define_route("QM.C", "SYSTEM.XMIT.QM.C").unwrap();

    let messenger = ConditionalMessenger::new(a.clone()).unwrap();
    let _daemon = messenger.spawn_daemon(Duration::from_millis(2));

    // Group S: generous pick-up window — must survive the relay crash and
    // succeed. Group F: tiny window — must fail and be compensated.
    const EACH: usize = 3;
    let slow_cond: Condition = Destination::queue("QM.C", "Q.SLOW")
        .pickup_within(Millis(20_000))
        .into();
    let fast_cond: Condition = Destination::queue("QM.C", "Q.FAST")
        .pickup_within(Millis(300))
        .into();
    let mut success_ids = Vec::new();
    let mut failure_ids = Vec::new();
    for i in 0..EACH {
        success_ids.push(
            messenger
                .send_message_with_compensation(
                    format!("keep-{i}"),
                    format!("undo-keep-{i}"),
                    &slow_cond,
                )
                .unwrap(),
        );
        failure_ids.push(
            messenger
                .send_message_with_compensation(
                    format!("drop-{i}"),
                    format!("undo-drop-{i}"),
                    &fast_cond,
                )
                .unwrap(),
        );
    }

    // All six originals in QM.B's custody, none forwarded: the handoff is
    // exactly half-done when the relay dies.
    wait_for("customs at the relay", Duration::from_secs(10), || {
        depth(&b, "SYSTEM.XMIT.QM.C") >= 2 * EACH
    });
    acc_b.shutdown();
    b.crash();

    // Rebuild the relay from its journal on the same address. The custody
    // records restore the undelivered envelopes onto the transmission
    // queue and reseed the dedup window, so upstream retries of anything
    // unacked at crash time are dropped, not doubled.
    let b2 = QueueManager::builder("QM.B")
        .clock(clock)
        .journal(journal)
        .build()
        .unwrap();
    assert!(
        depth(&b2, "SYSTEM.XMIT.QM.C") >= 2 * EACH,
        "custody survived the crash"
    );
    let _acc_b2 = rebind(&b2, b_addr);
    let _bc = Channel::connect_tcp(&b2, "QM.C", acc_c.local_addr(), tcp_config()).unwrap();
    let _ba = Channel::connect_tcp(&b2, "QM.A", acc_a.local_addr(), tcp_config()).unwrap();

    // The receiver picks up the slow-window messages; read-acks relay
    // back QM.C → QM.B → QM.A.
    let c2 = c.clone();
    let reader = std::thread::spawn(move || {
        let mut receiver = ConditionalReceiver::with_identity(c2, "federated-app").unwrap();
        let mut seen = Vec::new();
        for _ in 0..EACH {
            let got = receiver
                .read_message("Q.SLOW", Wait::Timeout(Millis(15_000)))
                .unwrap()
                .expect("slow-window message delivered after relay rebuild");
            assert_eq!(got.kind(), MessageKind::Original);
            seen.push(got.payload_str().unwrap().to_owned());
        }
        seen
    });
    let mut seen = reader.join().unwrap();
    seen.sort();
    seen.dedup();
    assert_eq!(seen.len(), EACH, "each success read exactly once");

    for id in success_ids {
        let outcome = messenger
            .take_outcome(id, Wait::Timeout(Millis(20_000)))
            .unwrap()
            .expect("success verdict");
        assert_eq!(outcome.outcome, MessageOutcome::Success, "{:?}", outcome.reason);
    }
    for id in failure_ids {
        let outcome = messenger
            .take_outcome(id, Wait::Timeout(Millis(20_000)))
            .unwrap()
            .expect("failure verdict");
        assert_eq!(outcome.outcome, MessageOutcome::Failure);
    }

    // Compensations cross the rebuilt relay and annihilate the unread
    // originals on QM.C: repeated reads surface nothing to the
    // application and drain the queue.
    wait_for("compensations arrive", Duration::from_secs(15), || {
        depth(&c, "Q.FAST") >= 2 * EACH
    });
    let mut receiver = ConditionalReceiver::new(c.clone()).unwrap();
    let annihilated = {
        let deadline = std::time::Instant::now() + Duration::from_secs(15);
        loop {
            assert!(
                receiver
                    .read_message("Q.FAST", Wait::NoWait)
                    .unwrap()
                    .is_none(),
                "compensated originals must never reach the application"
            );
            if depth(&c, "Q.FAST") == 0 {
                break true;
            }
            if std::time::Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    };
    assert!(annihilated, "annihilation empties Q.FAST");

    // Exactly-once, federation-wide: nothing dead-lettered anywhere, no
    // stray duplicate originals left behind on either destination queue.
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(depth(&c, "Q.SLOW"), 0, "no duplicate slow originals");
    assert_eq!(depth(&c, "Q.FAST"), 0, "no resurrected fast originals");
    for (name, qm) in [("QM.A", &a), ("QM.B", &b2), ("QM.C", &c)] {
        assert_eq!(depth(qm, DEAD_LETTER_QUEUE), 0, "{name} DLQ clean");
    }
    let relayed = b2.metrics_snapshot();
    assert!(
        relayed.counter("mq.relay.forwarded") >= 1,
        "rebuilt relay forwarded acks/compensations"
    );

    a.shutdown();
    b2.shutdown();
    c.shutdown();
}
