//! Property-based end-to-end tests: random scenarios driven through the
//! full public API under a deterministic clock, checked against a direct
//! oracle implementation of the paper's condition semantics.

use std::sync::Arc;

use condmsg::{
    Condition, ConditionalMessenger, ConditionalReceiver, Destination, DestinationSet,
    MessageOutcome,
};
use mq::{QueueManager, Wait};
use proptest::prelude::*;
use simtime::{Clock, Millis, SimClock};

#[derive(Debug, Clone)]
struct DestPlan {
    /// When (ms after send) the destination reads; `None` = never.
    read_at: Option<u64>,
    /// Whether the read is transactional (commits immediately after).
    transactional: bool,
}

fn arb_dest_plan(max_delay: u64) -> impl Strategy<Value = DestPlan> {
    (proptest::option::weighted(0.8, 1..max_delay), any::<bool>()).prop_map(
        |(read_at, transactional)| DestPlan {
            read_at,
            transactional,
        },
    )
}

struct World {
    clock: Arc<SimClock>,
    qmgr: Arc<QueueManager>,
    messenger: Arc<ConditionalMessenger>,
}

fn world(n: usize) -> World {
    let clock = SimClock::new();
    let qmgr = QueueManager::builder("QM1")
        .clock(clock.clone())
        .build()
        .unwrap();
    for i in 0..n {
        qmgr.create_queue(format!("Q{i}")).unwrap();
    }
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    World {
        clock,
        qmgr,
        messenger,
    }
}

/// Executes the plans: advances the clock step by step, performing each
/// read at its planned moment, then runs past `horizon` and pumps.
fn run_plans(w: &World, plans: &[DestPlan], horizon: u64) -> MessageOutcome {
    let mut events: Vec<(u64, usize)> = plans
        .iter()
        .enumerate()
        .filter_map(|(i, p)| p.read_at.map(|t| (t, i)))
        .collect();
    events.sort();
    for (at, idx) in events {
        let now = w.clock.now().as_millis();
        if at > now {
            w.clock.advance(Millis(at - now));
        }
        let mut receiver = ConditionalReceiver::new(w.qmgr.clone()).unwrap();
        let queue = format!("Q{idx}");
        if plans[idx].transactional {
            receiver.begin_tx().unwrap();
            let got = receiver.read_message(&queue, Wait::NoWait).unwrap();
            assert!(got.is_some(), "planned read found its message");
            receiver.commit_tx().unwrap();
        } else {
            let got = receiver.read_message(&queue, Wait::NoWait).unwrap();
            assert!(got.is_some(), "planned read found its message");
        }
    }
    let now = w.clock.now().as_millis();
    if horizon > now {
        w.clock.advance(Millis(horizon - now));
    }
    let outcomes = w.messenger.pump().unwrap();
    assert_eq!(outcomes.len(), 1, "exactly one decision");
    outcomes[0].outcome
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All-destinations pick-up: success iff every destination reads
    /// within the window.
    #[test]
    fn pickup_all_matches_oracle(
        plans in proptest::collection::vec(arb_dest_plan(200), 1..5),
        window in 50u64..150,
    ) {
        let w = world(plans.len());
        let condition: Condition = DestinationSet::of(
            (0..plans.len())
                .map(|i| Destination::queue("QM1", format!("Q{i}")).into())
                .collect(),
        )
        .pickup_within(Millis(window))
        .into();
        w.messenger.send_message("payload", &condition).unwrap();

        let outcome = run_plans(&w, &plans, 400);
        let oracle = plans.iter().all(|p| matches!(p.read_at, Some(t) if t <= window));
        prop_assert_eq!(
            outcome == MessageOutcome::Success,
            oracle,
            "plans {:?} window {}",
            plans,
            window
        );
    }

    /// Min-k pick-up: success iff at least k destinations read in time.
    #[test]
    fn pickup_min_k_matches_oracle(
        plans in proptest::collection::vec(arb_dest_plan(200), 2..6),
        window in 50u64..150,
        k_seed in any::<u32>(),
    ) {
        let n = plans.len() as u32;
        let k = 1 + k_seed % n;
        let w = world(plans.len());
        let condition: Condition = DestinationSet::of(
            (0..plans.len())
                .map(|i| Destination::queue("QM1", format!("Q{i}")).into())
                .collect(),
        )
        .pickup_within(Millis(window))
        .min_pickup(k)
        .into();
        w.messenger.send_message("payload", &condition).unwrap();

        let outcome = run_plans(&w, &plans, 400);
        let timely = plans
            .iter()
            .filter(|p| matches!(p.read_at, Some(t) if t <= window))
            .count() as u32;
        prop_assert_eq!(
            outcome == MessageOutcome::Success,
            timely >= k,
            "plans {:?} window {} k {}",
            plans,
            window,
            k
        );
    }

    /// Processing windows: success iff every destination *transactionally*
    /// consumes within the window (non-transactional reads never satisfy a
    /// processing condition).
    #[test]
    fn processing_all_matches_oracle(
        plans in proptest::collection::vec(arb_dest_plan(200), 1..4),
        window in 50u64..150,
    ) {
        let w = world(plans.len());
        let condition: Condition = DestinationSet::of(
            (0..plans.len())
                .map(|i| Destination::queue("QM1", format!("Q{i}")).into())
                .collect(),
        )
        .process_within(Millis(window))
        .into();
        w.messenger.send_message("payload", &condition).unwrap();

        let outcome = run_plans(&w, &plans, 400);
        let oracle = plans
            .iter()
            .all(|p| p.transactional && matches!(p.read_at, Some(t) if t <= window));
        prop_assert_eq!(
            outcome == MessageOutcome::Success,
            oracle,
            "plans {:?} window {}",
            plans,
            window
        );
    }

    /// Exactly-one-acknowledgment invariant: however the receivers behave,
    /// the number of acknowledgments on DS.ACK.Q equals the number of
    /// consumed originals, and never exceeds the number of destinations.
    #[test]
    fn one_ack_per_consumption(
        plans in proptest::collection::vec(arb_dest_plan(80), 1..5),
    ) {
        let w = world(plans.len());
        let condition: Condition = DestinationSet::of(
            (0..plans.len())
                .map(|i| Destination::queue("QM1", format!("Q{i}")).into())
                .collect(),
        )
        .pickup_within(Millis(100))
        .into();
        w.messenger.send_message("payload", &condition).unwrap();

        let mut consumed = 0;
        for (i, plan) in plans.iter().enumerate() {
            if plan.read_at.is_none() {
                continue;
            }
            w.clock.advance(Millis(1));
            let mut receiver = ConditionalReceiver::new(w.qmgr.clone()).unwrap();
            let queue = format!("Q{i}");
            if plan.transactional {
                receiver.begin_tx().unwrap();
                receiver.read_message(&queue, Wait::NoWait).unwrap().unwrap();
                receiver.commit_tx().unwrap();
            } else {
                receiver.read_message(&queue, Wait::NoWait).unwrap().unwrap();
            }
            consumed += 1;
        }
        let acks = w.qmgr.queue("DS.ACK.Q").unwrap().depth();
        prop_assert_eq!(acks, consumed);
        prop_assert!(acks <= plans.len());
    }

    /// Event-driven evaluation (ack-arrival evaluation plus armed deadline
    /// timers, no `pump()` anywhere) decides the message with the same
    /// verdict at the same simtime as a reference full-re-evaluation
    /// oracle pumped at every millisecond tick.
    #[test]
    fn event_driven_matches_tick_pumped_oracle(
        plans in proptest::collection::vec(arb_dest_plan(200), 1..4),
        window in 50u64..150,
    ) {
        let condition = |n: usize| -> Condition {
            DestinationSet::of(
                (0..n)
                    .map(|i| Destination::queue("QM1", format!("Q{i}")).into())
                    .collect(),
            )
            .pickup_within(Millis(window))
            .into()
        };
        let mut events: Vec<(u64, usize)> = plans
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.read_at.map(|t| (t, i)))
            .collect();
        events.sort_unstable();
        // Tolerates an empty queue: in the event-driven world a deadline
        // decision can fire *before* a late planned read, and finalization
        // may already have removed the original.
        let read = |w: &World, idx: usize| {
            let mut receiver = ConditionalReceiver::new(w.qmgr.clone()).unwrap();
            let queue = format!("Q{idx}");
            if plans[idx].transactional {
                receiver.begin_tx().unwrap();
                if receiver.read_message(&queue, Wait::NoWait).unwrap().is_some() {
                    receiver.commit_tx().unwrap();
                } else {
                    receiver.rollback_tx().unwrap();
                }
            } else {
                let _ = receiver.read_message(&queue, Wait::NoWait).unwrap();
            }
        };

        // Event-driven world: reads at their planned moments, one final
        // big advance — and not a single pump.
        let ev = world(plans.len());
        ev.messenger.enable_event_driven().unwrap();
        let id = ev.messenger.send_message("payload", &condition(plans.len())).unwrap();
        for (at, idx) in &events {
            let now = ev.clock.now().as_millis();
            if *at > now {
                ev.clock.advance(Millis(at - now));
            }
            read(&ev, *idx);
        }
        let now = ev.clock.now().as_millis();
        ev.clock.advance(Millis(400 - now));
        let got = ev
            .messenger
            .take_outcome(id, Wait::NoWait)
            .unwrap()
            .expect("event-driven path decided without a pump");
        prop_assert_eq!(ev.clock.pending_timers(), 0, "timer torn down with decision");

        // Oracle world: identical schedule in default polled mode, pumped
        // at every tick so the decision instant is exact.
        let or = world(plans.len());
        or.messenger.send_message("payload", &condition(plans.len())).unwrap();
        let mut upcoming = events.clone();
        let mut oracle = None;
        for t in 1..=400u64 {
            or.clock.advance(Millis(1));
            while upcoming.first().is_some_and(|(at, _)| *at == t) {
                let (_, idx) = upcoming.remove(0);
                read(&or, idx);
            }
            let outs = or.messenger.pump().unwrap();
            if let Some(n) = outs.first() {
                oracle = Some((n.outcome, n.decided_at));
                break;
            }
        }
        let (oracle_outcome, oracle_at) = oracle.expect("oracle decided within horizon");
        prop_assert_eq!(got.outcome, oracle_outcome, "same verdict");
        prop_assert_eq!(got.decided_at, oracle_at, "same decision simtime");
    }

    /// Compensation conservation: after a failure, every destination ends
    /// in exactly one of two states — annihilated (nothing deliverable,
    /// empty queue) if it never consumed, or exactly one delivered
    /// compensation if it did.
    #[test]
    fn compensation_conservation(
        reads in proptest::collection::vec(any::<bool>(), 1..5),
    ) {
        // Pickup window 10; readers read at t=20 (too late) or never.
        let n = reads.len();
        let w = world(n);
        let condition: Condition = DestinationSet::of(
            (0..n)
                .map(|i| Destination::queue("QM1", format!("Q{i}")).into())
                .collect(),
        )
        .pickup_within(Millis(10))
        .into();
        w.messenger
            .send_message_with_compensation("orig", "undo", &condition)
            .unwrap();
        w.clock.advance(Millis(20));
        for (i, read) in reads.iter().enumerate() {
            if *read {
                let mut receiver = ConditionalReceiver::new(w.qmgr.clone()).unwrap();
                receiver
                    .read_message(&format!("Q{i}"), Wait::NoWait)
                    .unwrap()
                    .unwrap();
            }
        }
        let outcomes = w.messenger.pump().unwrap();
        prop_assert_eq!(outcomes[0].outcome, MessageOutcome::Failure);

        for (i, read) in reads.iter().enumerate() {
            let queue = format!("Q{i}");
            let mut receiver = ConditionalReceiver::new(w.qmgr.clone()).unwrap();
            let delivered = receiver.read_message(&queue, Wait::NoWait).unwrap();
            if *read {
                // Consumed the (late) original → compensation delivered once.
                let comp = delivered.expect("compensation for consumer");
                prop_assert_eq!(comp.kind(), condmsg::MessageKind::Compensation);
                prop_assert_eq!(comp.payload_str(), Some("undo"));
                prop_assert!(receiver.read_message(&queue, Wait::NoWait).unwrap().is_none());
            } else {
                // Original + compensation annihilate.
                prop_assert!(delivered.is_none(), "annihilation leaves nothing");
                prop_assert_eq!(w.qmgr.queue(&queue).unwrap().depth(), 0);
            }
        }
    }
}
