//! Dependency-Sphere integration across the full stack: conditional
//! messages over real channels, coupled with transactional resources
//! (paper §3, Fig. 10).

use std::sync::Arc;
use std::time::Duration;

use condmsg::{Condition, ConditionalMessenger, ConditionalReceiver, Destination, MessageKind};
use dsphere::{Calendar, DSphereService, KvStore, ProbeResource, RoomReservations, Vote};
use mq::channel::Channel;
use mq::net::Link;
use mq::{QueueManager, SystemClock, Wait};
use simtime::{Millis, SimClock};

fn local_world() -> (Arc<SimClock>, Arc<QueueManager>, Arc<DSphereService>) {
    let clock = SimClock::new();
    let qmgr = QueueManager::builder("QM1")
        .clock(clock.clone())
        .build()
        .unwrap();
    for q in ["Q.A", "Q.B"] {
        qmgr.create_queue(q).unwrap();
    }
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    (clock, qmgr, DSphereService::new(messenger))
}

fn dest(queue: &str, window: Millis) -> Condition {
    Destination::queue("QM1", queue)
        .pickup_within(window)
        .into()
}

fn read_one(qmgr: &Arc<QueueManager>, queue: &str) {
    let mut receiver = ConditionalReceiver::new(qmgr.clone()).unwrap();
    receiver.read_message(queue, Wait::NoWait).unwrap().unwrap();
}

#[test]
fn meeting_workflow_commits_calendar_rooms_and_messages() {
    let (clock, qmgr, service) = local_world();
    let calendar = Calendar::new("calendar");
    let rooms = RoomReservations::new("rooms");

    let mut sphere = service.begin();
    sphere.enlist(calendar.clone()).unwrap();
    sphere.enlist(rooms.clone()).unwrap();
    calendar.schedule(sphere.xid(), "alice", 10, "signing");
    calendar.schedule(sphere.xid(), "bob", 10, "signing");
    rooms.reserve(sphere.xid(), "R1", 10, "signing");
    sphere
        .send_message("meeting invite", &dest("Q.A", Millis(100)))
        .unwrap();
    sphere
        .send_message("room notice", &dest("Q.B", Millis(100)))
        .unwrap();

    clock.advance(Millis(10));
    read_one(&qmgr, "Q.A");
    read_one(&qmgr, "Q.B");
    let outcome = sphere.try_commit().unwrap().unwrap();
    assert!(outcome.is_committed());
    assert_eq!(calendar.event("alice", 10).as_deref(), Some("signing"));
    assert_eq!(calendar.event("bob", 10).as_deref(), Some("signing"));
    assert_eq!(rooms.holder("R1", 10).as_deref(), Some("signing"));
}

#[test]
fn double_booked_calendar_vetoes_and_everything_unwinds() {
    let (clock, qmgr, service) = local_world();
    let calendar = Calendar::new("calendar");

    // Pre-existing commitment for alice at slot 10.
    {
        let mut tx = service.tx_manager().begin();
        tx.enlist(calendar.clone());
        calendar.schedule(tx.xid(), "alice", 10, "existing dentist appt");
        tx.commit().unwrap();
    }

    let mut sphere = service.begin();
    sphere.enlist(calendar.clone()).unwrap();
    calendar.schedule(sphere.xid(), "alice", 10, "signing");
    sphere
        .send_message_with_compensation(
            "meeting invite",
            "meeting cancelled",
            &dest("Q.A", Millis(100)),
        )
        .unwrap();
    clock.advance(Millis(10));
    read_one(&qmgr, "Q.A"); // the message itself succeeds

    let outcome = sphere.try_commit().unwrap().unwrap();
    match &outcome {
        dsphere::SphereOutcome::Aborted { reason } => {
            assert!(reason.contains("already booked"), "{reason}")
        }
        other => panic!("expected veto abort, got {other:?}"),
    }
    assert_eq!(
        calendar.event("alice", 10).as_deref(),
        Some("existing dentist appt"),
        "prior commitment intact"
    );
    // The consumed invite is compensated despite its individual success.
    let mut receiver = ConditionalReceiver::new(qmgr.clone()).unwrap();
    let comp = receiver.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
    assert_eq!(comp.kind(), MessageKind::Compensation);
    assert_eq!(comp.payload_str(), Some("meeting cancelled"));
}

#[test]
fn sphere_over_remote_destinations() {
    let clock = SystemClock::new();
    let qm_a = QueueManager::builder("QMA")
        .clock(clock.clone())
        .build()
        .unwrap();
    let qm_b = QueueManager::builder("QMB").clock(clock).build().unwrap();
    qm_b.create_queue("Q.FAR").unwrap();
    let _channels = Channel::connect_duplex(&qm_a, &qm_b, Link::ideal(), Link::ideal()).unwrap();
    let messenger = ConditionalMessenger::new(qm_a.clone()).unwrap();
    let service = DSphereService::new(messenger);
    let kv = KvStore::new("db");

    let mut sphere = service.begin_with_timeout(Millis(5_000));
    sphere.enlist(kv.clone()).unwrap();
    kv.put(sphere.xid(), "deal", "done");
    sphere
        .send_message(
            "remote notice",
            &Destination::queue("QMB", "Q.FAR")
                .pickup_within(Millis(3_000))
                .into(),
        )
        .unwrap();

    let reader = std::thread::spawn(move || {
        let mut receiver = ConditionalReceiver::new(qm_b).unwrap();
        receiver
            .read_message("Q.FAR", Wait::Timeout(Millis(3_000)))
            .unwrap()
            .expect("remote leg delivered")
    });
    let outcome = sphere.commit_blocking(Duration::from_millis(5)).unwrap();
    assert!(outcome.is_committed(), "{outcome}");
    assert_eq!(kv.get("deal"), Some("done".into()));
    reader.join().unwrap();
}

#[test]
fn resource_vote_flip_is_honoured_at_commit_time() {
    let (clock, qmgr, service) = local_world();
    let probe = ProbeResource::new("flaky");
    let mut sphere = service.begin();
    sphere.enlist(probe.clone()).unwrap();
    sphere.send_message("x", &dest("Q.A", Millis(100))).unwrap();
    clock.advance(Millis(5));
    read_one(&qmgr, "Q.A");
    // The resource turns sour before commit_DS.
    probe.set_vote(Vote::Abort("downstream outage".into()));
    let outcome = sphere.try_commit().unwrap().unwrap();
    assert!(!outcome.is_committed());
    assert_eq!(probe.rolled_back(), 1);
}

#[test]
fn many_messages_one_sphere_all_or_nothing() {
    let (clock, qmgr, service) = local_world();
    for i in 0..8 {
        qmgr.create_queue(format!("Q.N{i}")).unwrap();
    }
    let kv = KvStore::new("db");
    let mut sphere = service.begin();
    sphere.enlist(kv.clone()).unwrap();
    kv.put(sphere.xid(), "batch", "applied");
    for i in 0..8 {
        sphere
            .send_message(
                format!("part {i}"),
                &Destination::queue("QM1", format!("Q.N{i}"))
                    .pickup_within(Millis(100))
                    .into(),
            )
            .unwrap();
    }
    clock.advance(Millis(10));
    // Seven of eight are read; one is missed.
    for i in 0..7 {
        read_one(&qmgr, &format!("Q.N{i}"));
    }
    clock.advance(Millis(200));
    let outcome = sphere.try_commit().unwrap().unwrap();
    assert!(!outcome.is_committed());
    assert_eq!(kv.get("batch"), None);
    // Each of the seven consumed messages is compensated; the eighth
    // annihilates on its queue.
    for i in 0..7 {
        let msgs = qmgr.queue(&format!("Q.N{i}")).unwrap().browse();
        assert_eq!(msgs.len(), 1, "Q.N{i} got its compensation");
    }
    let mut receiver = ConditionalReceiver::new(qmgr.clone()).unwrap();
    assert!(receiver
        .read_message("Q.N7", Wait::NoWait)
        .unwrap()
        .is_none());
    assert_eq!(qmgr.queue("Q.N7").unwrap().depth(), 0);
}

#[test]
fn nested_workloads_sequential_spheres_share_resources() {
    let (clock, qmgr, service) = local_world();
    let kv = KvStore::new("db");
    // Sphere 1 commits a value.
    let mut s1 = service.begin();
    s1.enlist(kv.clone()).unwrap();
    kv.put(s1.xid(), "round", "1");
    s1.send_message("r1", &dest("Q.A", Millis(100))).unwrap();
    clock.advance(Millis(5));
    read_one(&qmgr, "Q.A");
    assert!(s1.try_commit().unwrap().unwrap().is_committed());
    assert_eq!(kv.get("round"), Some("1".into()));
    // Sphere 2 overwrites it, then aborts: value stays from round 1.
    let mut s2 = service.begin();
    s2.enlist(kv.clone()).unwrap();
    kv.put(s2.xid(), "round", "2");
    s2.send_message("r2", &dest("Q.B", Millis(100))).unwrap();
    s2.abort("changed our minds").unwrap();
    assert_eq!(kv.get("round"), Some("1".into()));
}
