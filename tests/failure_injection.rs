//! Failure-injection tests: storage errors at the worst moments.
//!
//! A wrapper journal starts failing appends on command; the stack must
//! fail *cleanly*: a commit whose WAL write failed leaves the transaction
//! open (retryable), a conditional send whose transaction failed leaves no
//! half-registered evaluation state, and after the storage heals everything
//! proceeds normally.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use condmsg::{Condition, ConditionalMessenger, Destination, MessageStatus};
use mq::journal::{Journal, JournalRecord, MemJournal};
use mq::{Message, MqError, MqResult, QueueManager, Wait};
use simtime::{Millis, SimClock};

/// A journal that can be switched into a failing mode.
#[derive(Debug)]
struct FlakyJournal {
    inner: Arc<MemJournal>,
    failing: AtomicBool,
}

impl FlakyJournal {
    fn new() -> Arc<FlakyJournal> {
        Arc::new(FlakyJournal {
            inner: MemJournal::new(),
            failing: AtomicBool::new(false),
        })
    }

    fn set_failing(&self, yes: bool) {
        self.failing.store(yes, Ordering::SeqCst);
    }
}

impl Journal for FlakyJournal {
    fn append(&self, record: &JournalRecord) -> MqResult<()> {
        if self.failing.load(Ordering::SeqCst) {
            return Err(MqError::Io(std::io::Error::other(
                "injected storage failure",
            )));
        }
        self.inner.append(record)
    }

    fn replay(&self, sink: &mut mq::journal::ReplaySink<'_>) -> MqResult<()> {
        self.inner.replay(sink)
    }

    fn reset(&self) -> MqResult<()> {
        self.inner.reset()
    }

    fn len_bytes(&self) -> u64 {
        self.inner.len_bytes()
    }
}

fn world() -> (Arc<FlakyJournal>, Arc<QueueManager>) {
    let journal = FlakyJournal::new();
    let qmgr = QueueManager::builder("QM1")
        .clock(SimClock::new())
        .journal(journal.clone())
        .build()
        .unwrap();
    qmgr.create_queue("Q").unwrap();
    (journal, qmgr)
}

#[test]
fn persistent_put_fails_cleanly_and_message_is_not_enqueued() {
    let (journal, qmgr) = world();
    journal.set_failing(true);
    let err = qmgr
        .put("Q", Message::text("x").persistent(true).build())
        .unwrap_err();
    assert!(matches!(err, MqError::Io(_)));
    assert_eq!(qmgr.queue("Q").unwrap().depth(), 0, "WAL-first: no message");
    // Non-persistent puts bypass the journal and still work.
    qmgr.put("Q", Message::text("volatile").build()).unwrap();
    assert_eq!(qmgr.queue("Q").unwrap().depth(), 1);
    journal.set_failing(false);
    qmgr.put("Q", Message::text("back").persistent(true).build())
        .unwrap();
    assert_eq!(qmgr.queue("Q").unwrap().depth(), 2);
}

#[test]
fn failed_commit_keeps_transaction_open_for_retry() {
    let (journal, qmgr) = world();
    qmgr.put("Q", Message::text("in").persistent(true).build())
        .unwrap();
    let mut session = qmgr.session();
    session.begin().unwrap();
    let got = session.get("Q", Wait::NoWait).unwrap().unwrap();
    assert_eq!(got.payload_str(), Some("in"));
    journal.set_failing(true);
    assert!(session.commit().is_err(), "WAL write failed");
    assert!(session.in_transaction(), "transaction still open");
    assert_eq!(qmgr.queue("Q").unwrap().depth(), 0, "get still provisional");
    // Storage heals; the retry succeeds.
    journal.set_failing(false);
    session.commit().unwrap();
    assert_eq!(qmgr.queue("Q").unwrap().depth(), 0);
    assert_eq!(qmgr.stats().tx_committed.get(), 1);
}

#[test]
fn failed_commit_can_roll_back_instead() {
    let (journal, qmgr) = world();
    qmgr.put("Q", Message::text("in").persistent(true).build())
        .unwrap();
    let mut session = qmgr.session();
    session.begin().unwrap();
    session.get("Q", Wait::NoWait).unwrap().unwrap();
    journal.set_failing(true);
    assert!(session.commit().is_err());
    session.rollback().unwrap();
    assert_eq!(qmgr.queue("Q").unwrap().depth(), 1, "message redelivered");
}

#[test]
fn failed_conditional_send_leaves_no_state_behind() {
    let (journal, qmgr) = world();
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    let condition: Condition = Destination::queue("QM1", "Q")
        .pickup_within(Millis(100))
        .into();
    journal.set_failing(true);
    let err = messenger.send_message("doomed", &condition).unwrap_err();
    assert!(err.to_string().contains("injected storage failure"));
    // Nothing half-sent: no pending evaluation, no originals, no parked
    // compensations, no log entries.
    assert_eq!(messenger.pending_count(), 0);
    assert_eq!(qmgr.queue("Q").unwrap().depth(), 0);
    assert_eq!(qmgr.queue("DS.COMP.Q").unwrap().depth(), 0);
    assert_eq!(qmgr.queue("DS.SLOG.Q").unwrap().depth(), 0);

    // After the storage heals, the same send succeeds end to end.
    journal.set_failing(false);
    let id = messenger.send_message("retry", &condition).unwrap();
    assert_eq!(messenger.status(id), MessageStatus::Pending);
    assert_eq!(qmgr.queue("Q").unwrap().depth(), 1);
    assert_eq!(qmgr.queue("DS.COMP.Q").unwrap().depth(), 1);
}

#[test]
fn pump_propagates_storage_errors_without_losing_acks() {
    let (journal, qmgr) = world();
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    let condition: Condition = Destination::queue("QM1", "Q")
        .pickup_within(Millis(1_000))
        .into();
    let id = messenger.send_message("x", &condition).unwrap();
    // A receiver acks…
    let mut receiver = condmsg::ConditionalReceiver::new(qmgr.clone()).unwrap();
    receiver.read_message("Q", Wait::NoWait).unwrap().unwrap();
    assert_eq!(qmgr.queue("DS.ACK.Q").unwrap().depth(), 1);
    // …but the ack-drain transaction cannot log the AckSeen entry.
    journal.set_failing(true);
    assert!(messenger.pump().is_err());
    assert_eq!(
        qmgr.queue("DS.ACK.Q").unwrap().depth(),
        1,
        "ack rolled back onto the queue, not lost"
    );
    journal.set_failing(false);
    let outcomes = messenger.pump().unwrap();
    assert_eq!(outcomes[0].cond_id, id);
    assert_eq!(outcomes[0].outcome, condmsg::MessageOutcome::Success);
}
