//! Crash-recovery integration tests: the "reliable" in reliable messaging.
//!
//! Every test crashes a queue manager at an inconvenient point, rebuilds it
//! over the same journal, reattaches the conditional messaging service, and
//! asserts that the protocol converges to the same outcome it would have
//! reached without the crash (paper §2.3/§2.6: log entries are stored
//! persistently precisely so this works).

use std::sync::Arc;

use condmsg::{
    CondMessageId, Condition, ConditionalMessenger, ConditionalReceiver, Destination,
    DestinationSet, MessageKind, MessageOutcome, MessageStatus,
};
use mq::journal::{FileJournal, GroupCommitConfig, GroupCommitJournal, MemJournal};
use mq::{QueueManager, Wait};
use simtime::{Millis, SharedClock, SimClock};

fn build_qm(clock: SharedClock, journal: Arc<MemJournal>) -> Arc<QueueManager> {
    QueueManager::builder("QM1")
        .clock(clock)
        .journal(journal)
        .build()
        .unwrap()
}

fn two_dest_condition(window: Millis) -> Condition {
    DestinationSet::of(vec![
        Destination::queue("QM1", "Q.A").into(),
        Destination::queue("QM1", "Q.B").into(),
    ])
    .pickup_within(window)
    .into()
}

#[test]
fn sender_crash_before_any_ack_recovers_and_fails_by_deadline() {
    let clock = SimClock::new();
    let journal = MemJournal::new();
    let qmgr = build_qm(clock.clone(), journal.clone());
    qmgr.create_queue("Q.A").unwrap();
    qmgr.create_queue("Q.B").unwrap();
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    let id = messenger
        .send_message_with_compensation("orig", "undo", &two_dest_condition(Millis(100)))
        .unwrap();
    qmgr.crash();

    // Restart; evaluation state is rebuilt from DS.SLOG.Q.
    let qmgr2 = build_qm(clock.clone(), journal);
    let messenger2 = ConditionalMessenger::new(qmgr2.clone()).unwrap();
    assert_eq!(messenger2.status(id), MessageStatus::Pending);
    clock.advance(Millis(200));
    let outcomes = messenger2.pump().unwrap();
    assert_eq!(outcomes[0].outcome, MessageOutcome::Failure);
    // Compensations (pre-generated before the crash, recovered from the
    // persistent DS.COMP.Q) are delivered to both destinations.
    for q in ["Q.A", "Q.B"] {
        let msgs = qmgr2.queue(q).unwrap().browse();
        assert_eq!(msgs.len(), 2, "{q}: original + compensation survive");
    }
}

#[test]
fn acks_logged_before_crash_are_not_lost() {
    let clock = SimClock::new();
    let journal = MemJournal::new();
    let qmgr = build_qm(clock.clone(), journal.clone());
    qmgr.create_queue("Q.A").unwrap();
    qmgr.create_queue("Q.B").unwrap();
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    let id = messenger
        .send_message("x", &two_dest_condition(Millis(1_000)))
        .unwrap();

    clock.advance(Millis(10));
    let mut r = ConditionalReceiver::new(qmgr.clone()).unwrap();
    r.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
    messenger.pump().unwrap(); // consumes the ack, logs AckSeen
    qmgr.crash();

    let qmgr2 = build_qm(clock.clone(), journal);
    let messenger2 = ConditionalMessenger::new(qmgr2.clone()).unwrap();
    // Only the second ack is needed now.
    let mut r2 = ConditionalReceiver::new(qmgr2.clone()).unwrap();
    r2.read_message("Q.B", Wait::NoWait).unwrap().unwrap();
    let outcomes = messenger2.pump().unwrap();
    assert_eq!(outcomes.len(), 1);
    assert_eq!(outcomes[0].cond_id, id);
    assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
}

#[test]
fn ack_in_queue_but_unprocessed_at_crash_is_replayed() {
    let clock = SimClock::new();
    let journal = MemJournal::new();
    let qmgr = build_qm(clock.clone(), journal.clone());
    qmgr.create_queue("Q.A").unwrap();
    qmgr.create_queue("Q.B").unwrap();
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    let id = messenger
        .send_message("x", &two_dest_condition(Millis(1_000)))
        .unwrap();
    clock.advance(Millis(10));
    let mut r = ConditionalReceiver::new(qmgr.clone()).unwrap();
    r.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
    r.read_message("Q.B", Wait::NoWait).unwrap().unwrap();
    // Crash *before* the evaluation manager ever ran: both acks sit on the
    // persistent DS.ACK.Q.
    qmgr.crash();

    let qmgr2 = build_qm(clock, journal);
    assert_eq!(qmgr2.queue("DS.ACK.Q").unwrap().depth(), 2);
    let messenger2 = ConditionalMessenger::new(qmgr2).unwrap();
    let outcomes = messenger2.pump().unwrap();
    assert_eq!(outcomes[0].cond_id, id);
    assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
}

#[test]
fn receiver_crash_between_tx_read_and_commit_redelivers() {
    let clock = SimClock::new();
    let journal = MemJournal::new();
    let qmgr = build_qm(clock.clone(), journal.clone());
    qmgr.create_queue("Q.A").unwrap();
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    let condition: Condition = Destination::queue("QM1", "Q.A")
        .process_within(Millis(1_000))
        .into();
    let id = messenger.send_message("work", &condition).unwrap();

    clock.advance(Millis(10));
    {
        let mut receiver = ConditionalReceiver::new(qmgr.clone()).unwrap();
        receiver.begin_tx().unwrap();
        receiver.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
        // Receiver's process crashes: the whole manager goes down with the
        // transaction uncommitted.
        qmgr.crash();
    }

    let qmgr2 = build_qm(clock.clone(), journal);
    let messenger2 = ConditionalMessenger::new(qmgr2.clone()).unwrap();
    assert_eq!(
        qmgr2.queue("Q.A").unwrap().depth(),
        1,
        "uncommitted read rolled back by recovery"
    );
    assert_eq!(qmgr2.queue("DS.ACK.Q").unwrap().depth(), 0, "no ack leaked");
    // A second receiver finishes the job.
    let mut receiver = ConditionalReceiver::new(qmgr2.clone()).unwrap();
    receiver.begin_tx().unwrap();
    receiver.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
    clock.advance(Millis(10));
    receiver.commit_tx().unwrap();
    let outcomes = messenger2.pump().unwrap();
    assert_eq!(outcomes[0].cond_id, id);
    assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
}

#[test]
fn guaranteed_compensation_across_receiver_crash() {
    // Paper §2.6: "the process of compensation must be guaranteed for an
    // application even in the presence of system failures". The receiver
    // consumes the original (logged in DS.RLOG.Q), the manager crashes,
    // the compensation arrives after restart — and is still delivered,
    // because the consumption log is persistent.
    let clock = SimClock::new();
    let journal = MemJournal::new();
    let qmgr = build_qm(clock.clone(), journal.clone());
    qmgr.create_queue("Q.A").unwrap();
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    let condition: Condition = Destination::queue("QM1", "Q.A")
        .process_within(Millis(100))
        .into();
    let id = messenger
        .send_message_with_compensation("orig", "undo it", &condition)
        .unwrap();

    clock.advance(Millis(10));
    let mut receiver = ConditionalReceiver::new(qmgr.clone()).unwrap();
    // Non-transactional read: consumption logged, processing never acked →
    // the message will fail.
    receiver.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
    qmgr.crash();

    let qmgr2 = build_qm(clock.clone(), journal);
    let messenger2 = ConditionalMessenger::new(qmgr2.clone()).unwrap();
    assert_eq!(messenger2.status(id), MessageStatus::Pending);
    clock.advance(Millis(200));
    let outcomes = messenger2.pump().unwrap();
    assert_eq!(outcomes[0].outcome, MessageOutcome::Failure);
    // The compensation is deliverable because DS.RLOG.Q shows consumption.
    let mut receiver2 = ConditionalReceiver::new(qmgr2.clone()).unwrap();
    let comp = receiver2
        .read_message("Q.A", Wait::NoWait)
        .unwrap()
        .expect("compensation delivered after crash");
    assert_eq!(comp.kind(), MessageKind::Compensation);
    assert_eq!(comp.payload_str(), Some("undo it"));
}

#[test]
fn double_crash_still_converges() {
    let clock = SimClock::new();
    let journal = MemJournal::new();
    let mut qmgr = build_qm(clock.clone(), journal.clone());
    qmgr.create_queue("Q.A").unwrap();
    qmgr.create_queue("Q.B").unwrap();
    let id: CondMessageId;
    {
        let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
        id = messenger
            .send_message("x", &two_dest_condition(Millis(1_000)))
            .unwrap();
        qmgr.crash();
    }
    // Crash #1 → restart, one ack, crash #2 → restart, second ack.
    qmgr = build_qm(clock.clone(), journal.clone());
    {
        let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
        clock.advance(Millis(10));
        let mut r = ConditionalReceiver::new(qmgr.clone()).unwrap();
        r.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
        messenger.pump().unwrap();
        qmgr.crash();
    }
    qmgr = build_qm(clock.clone(), journal);
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    assert_eq!(messenger.status(id), MessageStatus::Pending);
    let mut r = ConditionalReceiver::new(qmgr.clone()).unwrap();
    r.read_message("Q.B", Wait::NoWait).unwrap().unwrap();
    let outcomes = messenger.pump().unwrap();
    assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
}

#[test]
fn decided_outcome_survives_crash_without_reacting() {
    let clock = SimClock::new();
    let journal = MemJournal::new();
    let qmgr = build_qm(clock.clone(), journal.clone());
    qmgr.create_queue("Q.A").unwrap();
    qmgr.create_queue("Q.B").unwrap();
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    let id = messenger
        .send_message_with_compensation("x", "undo", &two_dest_condition(Millis(50)))
        .unwrap();
    clock.advance(Millis(100));
    messenger.pump().unwrap(); // failure; compensations released
    let comp_depth_before: usize = ["Q.A", "Q.B"]
        .iter()
        .map(|q| qmgr.queue(q).unwrap().depth())
        .sum();
    qmgr.crash();

    let qmgr2 = build_qm(clock, journal);
    let messenger2 = ConditionalMessenger::new(qmgr2.clone()).unwrap();
    assert!(matches!(
        messenger2.status(id),
        MessageStatus::Decided(n) if n.outcome == MessageOutcome::Failure
    ));
    messenger2.pump().unwrap();
    // No duplicate compensations after recovery.
    let comp_depth_after: usize = ["Q.A", "Q.B"]
        .iter()
        .map(|q| qmgr2.queue(q).unwrap().depth())
        .sum();
    assert_eq!(comp_depth_after, comp_depth_before);
    assert_eq!(qmgr2.queue("DS.COMP.Q").unwrap().depth(), 0);
}

#[test]
fn deferred_outcome_actions_survive_crash() {
    // A Dependency-Sphere defers outcome actions; the member message is
    // decided, then the manager crashes before the sphere releases the
    // actions. After restart the recovered messenger still owes (and can
    // perform) the deferred release — the parked compensations and the
    // send record survived.
    use condmsg::SendOptions;
    let clock = SimClock::new();
    let journal = MemJournal::new();
    let qmgr = build_qm(clock.clone(), journal.clone());
    qmgr.create_queue("Q.A").unwrap();
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    let condition: Condition = Destination::queue("QM1", "Q.A")
        .pickup_within(Millis(50))
        .into();
    let id = messenger
        .send_with(
            "sphere member",
            Some("undo member".into()),
            &condition,
            SendOptions {
                defer_outcome_actions: true,
                ..SendOptions::default()
            },
        )
        .unwrap();
    clock.advance(Millis(100));
    let outcomes = messenger.pump().unwrap();
    assert_eq!(outcomes[0].outcome, MessageOutcome::Failure);
    // Actions deferred: compensation still parked, nothing delivered.
    assert_eq!(qmgr.queue("DS.COMP.Q").unwrap().depth(), 1);
    assert_eq!(qmgr.queue("Q.A").unwrap().depth(), 1, "only the original");
    qmgr.crash();

    let qmgr2 = build_qm(clock, journal);
    let messenger2 = ConditionalMessenger::new(qmgr2.clone()).unwrap();
    assert!(matches!(
        messenger2.status(id),
        MessageStatus::Decided(n) if n.outcome == MessageOutcome::Failure
    ));
    // The sphere (re-created by the application) releases with the group
    // outcome; the compensation finally flows.
    messenger2
        .release_outcome_actions(id, MessageOutcome::Failure)
        .unwrap();
    assert_eq!(qmgr2.queue("DS.COMP.Q").unwrap().depth(), 0);
    let mut receiver = ConditionalReceiver::new(qmgr2.clone()).unwrap();
    // Original + compensation annihilate (never consumed).
    assert!(receiver
        .read_message("Q.A", Wait::NoWait)
        .unwrap()
        .is_none());
    assert_eq!(qmgr2.queue("Q.A").unwrap().depth(), 0);
    // Releasing twice is rejected.
    assert!(messenger2
        .release_outcome_actions(id, MessageOutcome::Failure)
        .is_err());
}

#[test]
fn file_journal_full_stack_recovery() {
    // Same protocol over a real file journal, exercising framing and
    // replay from disk.
    let path = std::env::temp_dir().join(format!(
        "condmsg-recovery-{}-{}.log",
        std::process::id(),
        rand::random::<u64>()
    ));
    let clock = SimClock::new();
    let id;
    {
        let journal = FileJournal::open(&path, true).unwrap();
        let qmgr = QueueManager::builder("QM1")
            .clock(clock.clone())
            .journal(journal)
            .build()
            .unwrap();
        qmgr.create_queue("Q.A").unwrap();
        let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
        let condition: Condition = Destination::queue("QM1", "Q.A")
            .pickup_within(Millis(1_000))
            .into();
        id = messenger.send_message("durable", &condition).unwrap();
        qmgr.crash();
    }
    {
        let journal = FileJournal::open(&path, true).unwrap();
        let qmgr = QueueManager::builder("QM1")
            .clock(clock.clone())
            .journal(journal)
            .build()
            .unwrap();
        let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
        assert_eq!(messenger.status(id), MessageStatus::Pending);
        clock.advance(Millis(10));
        let mut r = ConditionalReceiver::new(qmgr.clone()).unwrap();
        r.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
        let outcomes = messenger.pump().unwrap();
        assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn group_commit_journal_full_stack_recovery() {
    // The group-commit journal keeps append's "returns ⇒ durable" contract,
    // so the whole conditional-messaging protocol must survive a crash over
    // it exactly as it does over fsync-per-append — while sharing fsyncs.
    let path = std::env::temp_dir().join(format!(
        "condmsg-recovery-gc-{}-{}.log",
        std::process::id(),
        rand::random::<u64>()
    ));
    let clock = SimClock::new();
    let id;
    {
        let journal = GroupCommitJournal::open_file(&path, GroupCommitConfig::default()).unwrap();
        let qmgr = QueueManager::builder("QM1")
            .clock(clock.clone())
            .journal(journal.clone())
            .build()
            .unwrap();
        qmgr.create_queue("Q.A").unwrap();
        let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
        let condition: Condition = Destination::queue("QM1", "Q.A")
            .pickup_within(Millis(1_000))
            .into();
        id = messenger
            .send_message_with_compensation("durable", "undo", &condition)
            .unwrap();
        assert!(journal.metrics().fsyncs.get() >= 1);
        // The manager's observability hub surfaces the journal's cells.
        let snap = qmgr.metrics_snapshot();
        assert!(snap.counter("mq.journal.fsyncs") >= 1);
        assert!(snap.counter("mq.journal.appends") >= 1);
        qmgr.crash();
    }
    {
        let journal = GroupCommitJournal::open_file(&path, GroupCommitConfig::default()).unwrap();
        let qmgr = QueueManager::builder("QM1")
            .clock(clock.clone())
            .journal(journal)
            .build()
            .unwrap();
        let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
        assert_eq!(messenger.status(id), MessageStatus::Pending);
        clock.advance(Millis(10));
        let mut r = ConditionalReceiver::new(qmgr.clone()).unwrap();
        r.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
        let outcomes = messenger.pump().unwrap();
        assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
    }
    std::fs::remove_file(&path).ok();
}
