//! End-to-end integration tests on a single queue manager, driving the
//! full public API: condition definition → conditional send → implicit
//! acknowledgments → evaluation → outcome actions.
//!
//! These mirror the paper's running examples exactly (Fig. 1/4 and
//! Fig. 2/5) under a deterministic clock.

use std::sync::Arc;

use condmsg::{
    Condition, ConditionalMessenger, ConditionalReceiver, Destination, DestinationSet, MessageKind,
    MessageOutcome, MessageStatus, SendOptions,
};
use mq::{QueueManager, Wait};
use simtime::{Millis, SimClock, Time};

const DAY: u64 = 1_000;

struct World {
    clock: Arc<SimClock>,
    qmgr: Arc<QueueManager>,
    messenger: Arc<ConditionalMessenger>,
}

fn world(queues: &[&str]) -> World {
    let clock = SimClock::new();
    let qmgr = QueueManager::builder("QM1")
        .clock(clock.clone())
        .build()
        .unwrap();
    for q in queues {
        qmgr.create_queue(*q).unwrap();
    }
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    World {
        clock,
        qmgr,
        messenger,
    }
}

/// Paper Fig. 4, with one "day" scaled to one logical second.
fn example1_condition() -> Condition {
    let qr3 = Destination::queue("QM1", "Q.R3")
        .recipient("receiver3")
        .process_within(Millis(7 * DAY));
    let others = DestinationSet::of(vec![
        Destination::queue("QM1", "Q.R1")
            .recipient("receiver1")
            .into(),
        Destination::queue("QM1", "Q.R2")
            .recipient("receiver2")
            .into(),
        Destination::queue("QM1", "Q.R4")
            .recipient("receiver4")
            .into(),
    ])
    .process_within(Millis(11 * DAY))
    .min_process(2);
    DestinationSet::of(vec![qr3.into(), others.into()])
        .pickup_within(Millis(2 * DAY))
        .into()
}

fn read_tx(world: &World, recipient: &str, queue: &str) {
    let mut receiver = ConditionalReceiver::with_identity(world.qmgr.clone(), recipient).unwrap();
    receiver.begin_tx().unwrap();
    let msg = receiver.read_message(queue, Wait::NoWait).unwrap().unwrap();
    assert_eq!(msg.kind(), MessageKind::Original);
    receiver.commit_tx().unwrap();
}

fn read_nontx(world: &World, recipient: &str, queue: &str) {
    let mut receiver = ConditionalReceiver::with_identity(world.qmgr.clone(), recipient).unwrap();
    let msg = receiver.read_message(queue, Wait::NoWait).unwrap().unwrap();
    assert_eq!(msg.kind(), MessageKind::Original);
}

#[test]
fn example1_success_when_all_conditions_met() {
    let w = world(&["Q.R1", "Q.R2", "Q.R3", "Q.R4"]);
    let id = w
        .messenger
        .send_message("meeting notification", &example1_condition())
        .unwrap();

    // Day 1: everyone reads; receiver3 and two others process.
    w.clock.advance(Millis(DAY));
    read_tx(&w, "receiver3", "Q.R3");
    read_tx(&w, "receiver1", "Q.R1");
    read_tx(&w, "receiver2", "Q.R2");
    read_nontx(&w, "receiver4", "Q.R4"); // read-only is fine: min 2 of 3

    let outcomes = w.messenger.pump().unwrap();
    assert_eq!(outcomes.len(), 1);
    assert_eq!(outcomes[0].cond_id, id);
    assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
}

#[test]
fn example1_fails_when_only_one_of_subset_processes() {
    let w = world(&["Q.R1", "Q.R2", "Q.R3", "Q.R4"]);
    let id = w
        .messenger
        .send_message("meeting notification", &example1_condition())
        .unwrap();

    w.clock.advance(Millis(DAY));
    read_tx(&w, "receiver3", "Q.R3");
    read_tx(&w, "receiver1", "Q.R1");
    read_nontx(&w, "receiver2", "Q.R2");
    read_nontx(&w, "receiver4", "Q.R4");
    assert!(
        w.messenger.pump().unwrap().is_empty(),
        "1 of 2 required processings"
    );

    // Past the 11-day subset window the count is unreachable.
    w.clock.advance(Millis(11 * DAY));
    let outcomes = w.messenger.pump().unwrap();
    assert_eq!(outcomes[0].outcome, MessageOutcome::Failure);
    let reason = outcomes[0].reason.as_deref().unwrap();
    assert!(reason.contains("processing"), "{reason}");
    assert_eq!(outcomes[0].cond_id, id);
}

#[test]
fn example1_fails_on_missed_pickup() {
    let w = world(&["Q.R1", "Q.R2", "Q.R3", "Q.R4"]);
    w.messenger
        .send_message("meeting notification", &example1_condition())
        .unwrap();
    // Only three of four read within two days.
    w.clock.advance(Millis(DAY));
    for (r, q) in [
        ("receiver3", "Q.R3"),
        ("receiver1", "Q.R1"),
        ("receiver2", "Q.R2"),
    ] {
        read_tx(&w, r, q);
    }
    w.clock.advance(Millis(DAY + 1));
    let outcomes = w.messenger.pump().unwrap();
    assert_eq!(outcomes[0].outcome, MessageOutcome::Failure);
    assert!(outcomes[0].reason.as_deref().unwrap().contains("pick-up"));
}

#[test]
fn example2_any_controller_within_window() {
    let w = world(&["Q.CENTRAL"]);
    let condition: Condition = Destination::queue("QM1", "Q.CENTRAL")
        .pickup_within(Millis(20_000))
        .into();
    let id = w
        .messenger
        .send_with(
            "incoming flight",
            None,
            &condition,
            SendOptions {
                evaluation_timeout: Some(Millis(21_000)),
                ..SendOptions::default()
            },
        )
        .unwrap();
    w.clock.advance(Millis(15_000));
    read_nontx(&w, "controller-3", "Q.CENTRAL");
    let outcomes = w.messenger.pump().unwrap();
    assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
    assert_eq!(w.messenger.status(id), {
        let n = w.messenger.take_outcome(id, Wait::NoWait).unwrap().unwrap();
        MessageStatus::Decided(n)
    });
}

#[test]
fn example2_times_out_when_nobody_reads() {
    let w = world(&["Q.CENTRAL"]);
    let condition: Condition = Destination::queue("QM1", "Q.CENTRAL")
        .pickup_within(Millis(20_000))
        .into();
    w.messenger
        .send_with(
            "incoming flight",
            None,
            &condition,
            SendOptions {
                evaluation_timeout: Some(Millis(21_000)),
                ..SendOptions::default()
            },
        )
        .unwrap();
    w.clock.advance(Millis(20_000));
    assert!(w.messenger.pump().unwrap().is_empty());
    w.clock.advance(Millis(1));
    let outcomes = w.messenger.pump().unwrap();
    assert_eq!(outcomes[0].outcome, MessageOutcome::Failure);
    // The unread original annihilates with the delivered compensation.
    let mut receiver = ConditionalReceiver::new(w.qmgr.clone()).unwrap();
    assert!(receiver
        .read_message("Q.CENTRAL", Wait::NoWait)
        .unwrap()
        .is_none());
    assert_eq!(w.qmgr.queue("Q.CENTRAL").unwrap().depth(), 0);
}

#[test]
fn conditions_are_reusable_across_messages() {
    let w = world(&["Q.A"]);
    let condition: Condition = Destination::queue("QM1", "Q.A")
        .pickup_within(Millis(100))
        .into();
    let ids: Vec<_> = (0..5)
        .map(|i| {
            w.messenger
                .send_message(format!("msg {i}"), &condition)
                .unwrap()
        })
        .collect();
    w.clock.advance(Millis(10));
    let mut receiver = ConditionalReceiver::new(w.qmgr.clone()).unwrap();
    for _ in 0..5 {
        receiver.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
    }
    let outcomes = w.messenger.pump().unwrap();
    assert_eq!(outcomes.len(), 5);
    let mut decided: Vec<_> = outcomes.iter().map(|o| o.cond_id).collect();
    decided.sort();
    let mut expected = ids.clone();
    expected.sort();
    assert_eq!(decided, expected);
    assert!(outcomes
        .iter()
        .all(|o| o.outcome == MessageOutcome::Success));
}

#[test]
fn mixed_conditional_and_standard_traffic() {
    // Applications can keep using the middleware directly (paper Fig. 6).
    let w = world(&["Q.A"]);
    w.qmgr
        .put("Q.A", mq::Message::text("plain old message").build())
        .unwrap();
    let condition: Condition = Destination::queue("QM1", "Q.A")
        .pickup_within(Millis(100))
        .into();
    w.messenger.send_message("conditional", &condition).unwrap();

    let mut receiver = ConditionalReceiver::new(w.qmgr.clone()).unwrap();
    let first = receiver.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
    assert_eq!(first.kind(), MessageKind::Standard);
    assert_eq!(first.payload_str(), Some("plain old message"));
    let second = receiver.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
    assert_eq!(second.kind(), MessageKind::Original);
    let outcomes = w.messenger.pump().unwrap();
    assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
}

#[test]
fn per_destination_expiry_discards_stale_originals() {
    let w = world(&["Q.A"]);
    let condition: Condition = Destination::queue("QM1", "Q.A")
        .pickup_within(Millis(500))
        .expiry(Millis(50))
        .into();
    w.messenger.send_message("expiring", &condition).unwrap();
    w.clock.advance(Millis(100));
    // The original expired on the queue; the read finds nothing and the
    // condition eventually fails.
    let mut receiver = ConditionalReceiver::new(w.qmgr.clone()).unwrap();
    assert!(receiver
        .read_message("Q.A", Wait::NoWait)
        .unwrap()
        .is_none());
    w.clock.advance(Millis(500));
    let outcomes = w.messenger.pump().unwrap();
    assert_eq!(outcomes[0].outcome, MessageOutcome::Failure);
}

#[test]
fn rollback_then_commit_still_meets_processing_deadline() {
    let w = world(&["Q.A"]);
    let condition: Condition = Destination::queue("QM1", "Q.A")
        .process_within(Millis(1_000))
        .into();
    let id = w.messenger.send_message("retry me", &condition).unwrap();

    let mut receiver = ConditionalReceiver::new(w.qmgr.clone()).unwrap();
    // First attempt fails and rolls back.
    receiver.begin_tx().unwrap();
    receiver.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
    w.clock.advance(Millis(100));
    receiver.rollback_tx().unwrap();
    assert!(w.messenger.pump().unwrap().is_empty(), "no ack yet");
    // Second attempt commits within the window.
    receiver.begin_tx().unwrap();
    let again = receiver.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
    assert_eq!(again.message().redelivery_count(), 1);
    w.clock.advance(Millis(100));
    receiver.commit_tx().unwrap();
    let outcomes = w.messenger.pump().unwrap();
    assert_eq!(outcomes[0].cond_id, id);
    assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
}

#[test]
fn late_processing_after_rollbacks_fails() {
    let w = world(&["Q.A"]);
    let condition: Condition = Destination::queue("QM1", "Q.A")
        .process_within(Millis(100))
        .into();
    w.messenger.send_message("slow worker", &condition).unwrap();
    let mut receiver = ConditionalReceiver::new(w.qmgr.clone()).unwrap();
    receiver.begin_tx().unwrap();
    receiver.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
    w.clock.advance(Millis(200)); // commits too late
    receiver.commit_tx().unwrap();
    let outcomes = w.messenger.pump().unwrap();
    assert_eq!(outcomes[0].outcome, MessageOutcome::Failure);
}

#[test]
fn anonymous_and_named_recipients_reported_in_acks() {
    let w = world(&["Q.A", "Q.B"]);
    let condition: Condition = DestinationSet::of(vec![
        Destination::queue("QM1", "Q.A").recipient("alice").into(),
        Destination::queue("QM1", "Q.B").into(),
    ])
    .pickup_within(Millis(100))
    .into();
    w.messenger.send_message("to both", &condition).unwrap();
    w.clock.advance(Millis(1));
    read_nontx(&w, "alice", "Q.A");
    read_nontx(&w, "walk-in", "Q.B");
    let outcomes = w.messenger.pump().unwrap();
    assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
}

#[test]
fn three_level_nested_condition_end_to_end() {
    // A department set containing two team sets, each with its own
    // (tighter) processing window; the department requires 1-of-2 teams,
    // each team requires both members.
    let w = world(&["Q.T1A", "Q.T1B", "Q.T2A", "Q.T2B"]);
    let team = |a: &str, b: &str, window: u64| -> Condition {
        DestinationSet::of(vec![
            Destination::queue("QM1", a).into(),
            Destination::queue("QM1", b).into(),
        ])
        .process_within(Millis(window))
        .into()
    };
    let condition: Condition = DestinationSet::of(vec![
        team("Q.T1A", "Q.T1B", 2 * DAY),
        team("Q.T2A", "Q.T2B", 4 * DAY),
    ])
    .process_within(Millis(6 * DAY))
    .min_process(2) // over the 4 leaves: any 2 timely processings
    .pickup_within(Millis(DAY))
    .into();
    w.messenger.send_message("nested", &condition).unwrap();

    // Team 1 processes both legs within the day; team 2 never reads —
    // which violates the all-must-pick-up root window.
    w.clock.advance(Millis(DAY / 2));
    read_tx(&w, "t1a", "Q.T1A");
    read_tx(&w, "t1b", "Q.T1B");
    w.clock.advance(Millis(DAY));
    let outcomes = w.messenger.pump().unwrap();
    assert_eq!(outcomes[0].outcome, MessageOutcome::Failure);
    assert!(outcomes[0].reason.as_deref().unwrap().contains("pick-up"));
}

#[test]
fn nested_condition_succeeds_when_all_windows_met() {
    let w = world(&["Q.T1A", "Q.T1B"]);
    let condition: Condition = DestinationSet::of(vec![DestinationSet::of(vec![
        Destination::queue("QM1", "Q.T1A").into(),
        Destination::queue("QM1", "Q.T1B").into(),
    ])
    .process_within(Millis(2 * DAY))
    .into()])
    .pickup_within(Millis(DAY))
    .into();
    w.messenger.send_message("nested-ok", &condition).unwrap();
    w.clock.advance(Millis(DAY / 2));
    read_tx(&w, "t1a", "Q.T1A");
    read_tx(&w, "t1b", "Q.T1B");
    let outcomes = w.messenger.pump().unwrap();
    assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
}

#[test]
fn condition_attribute_overrides_reach_delivered_messages() {
    // MsgPriority / MsgPersistence / MsgExpiry set on the condition shape
    // the generated standard messages (paper §2.2 "common properties of
    // standard messaging middleware").
    let w = world(&["Q.FAST", "Q.LOOSE"]);
    let condition: Condition = DestinationSet::of(vec![
        Destination::queue("QM1", "Q.FAST")
            .priority(mq::Priority::new(9))
            .into(),
        Destination::queue("QM1", "Q.LOOSE")
            .persistent(false)
            .expiry(Millis(250))
            .into(),
    ])
    .pickup_within(Millis(1_000))
    .persistent(true)
    .into();
    w.messenger.send_message("attrs", &condition).unwrap();

    let fast = w.qmgr.queue("Q.FAST").unwrap().browse().remove(0);
    assert_eq!(fast.priority().level(), 9);
    assert!(fast.is_persistent(), "set-level default");
    assert!(fast.ttl().is_none());

    let loose = w.qmgr.queue("Q.LOOSE").unwrap().browse().remove(0);
    assert!(!loose.is_persistent(), "leaf override wins");
    assert_eq!(loose.ttl(), Some(Millis(250)));
}

#[test]
fn send_time_is_the_reference_for_all_windows() {
    // Windows are relative to the *send* timestamp, not queue arrival.
    let w = world(&["Q.A"]);
    w.clock.advance(Millis(5_000));
    let condition: Condition = Destination::queue("QM1", "Q.A")
        .pickup_within(Millis(100))
        .into();
    w.messenger
        .send_message("sent at t+5000", &condition)
        .unwrap();
    w.clock.advance(Millis(90));
    read_nontx(&w, "r", "Q.A");
    let outcomes = w.messenger.pump().unwrap();
    assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
    assert!(outcomes[0].decided_at >= Time(5_090));
}
