//! Concurrency stress tests: many producers, consumers, spheres and the
//! evaluation daemon all running against real threads and a system clock.
//!
//! These check conservation (nothing lost, nothing duplicated) rather than
//! timing specifics.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use condmsg::{
    Condition, ConditionalMessenger, ConditionalReceiver, Destination, MessageKind, MessageOutcome,
};
use dsphere::{DSphereService, KvStore};
use mq::{QueueManager, Wait};
use simtime::Millis;

#[test]
fn many_conditional_messages_under_daemon() {
    const MESSAGES: usize = 60;
    let qmgr = QueueManager::builder("QM1").build().unwrap();
    qmgr.create_queue("Q.WORK").unwrap();
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    let _daemon = messenger.spawn_daemon(Duration::from_millis(1));

    // Three competing consumers.
    let consumed = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicUsize::new(0));
    let consumers: Vec<_> = (0..3)
        .map(|_| {
            let qmgr = qmgr.clone();
            let consumed = consumed.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut receiver = ConditionalReceiver::new(qmgr).unwrap();
                while stop.load(Ordering::SeqCst) == 0 {
                    if let Ok(Some(m)) = receiver.read_message("Q.WORK", Wait::Timeout(Millis(20)))
                    {
                        if m.kind() == MessageKind::Original {
                            consumed.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
            })
        })
        .collect();

    let condition: Condition = Destination::queue("QM1", "Q.WORK")
        .pickup_within(Millis(5_000))
        .into();
    let ids: Vec<_> = (0..MESSAGES)
        .map(|i| {
            messenger
                .send_message(format!("job {i}"), &condition)
                .unwrap()
        })
        .collect();

    let mut successes = 0;
    for id in ids {
        let outcome = messenger
            .take_outcome(id, Wait::Timeout(Millis(10_000)))
            .unwrap()
            .expect("every message decided");
        if outcome.outcome == MessageOutcome::Success {
            successes += 1;
        }
    }
    stop.store(1, Ordering::SeqCst);
    for c in consumers {
        c.join().unwrap();
    }
    assert_eq!(successes, MESSAGES, "all jobs picked up in time");
    assert_eq!(consumed.load(Ordering::SeqCst), MESSAGES, "no duplicates");
    assert_eq!(
        qmgr.queue("DS.ACK.Q").unwrap().depth(),
        0,
        "all acks consumed"
    );
    assert_eq!(
        qmgr.queue("DS.COMP.Q").unwrap().depth(),
        0,
        "all comps cleared"
    );
}

#[test]
fn concurrent_senders_share_one_messenger() {
    const SENDERS: usize = 4;
    const PER_SENDER: usize = 15;
    let qmgr = QueueManager::builder("QM1").build().unwrap();
    qmgr.create_queue("Q.IN").unwrap();
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    let _daemon = messenger.spawn_daemon(Duration::from_millis(1));

    let qmgr_consumer = qmgr.clone();
    let drain = std::thread::spawn(move || {
        let mut receiver = ConditionalReceiver::new(qmgr_consumer).unwrap();
        let mut n = 0;
        while n < SENDERS * PER_SENDER {
            if let Ok(Some(m)) = receiver.read_message("Q.IN", Wait::Timeout(Millis(50))) {
                if m.kind() == MessageKind::Original {
                    n += 1;
                }
            }
        }
    });

    let handles: Vec<_> = (0..SENDERS)
        .map(|s| {
            let messenger = messenger.clone();
            std::thread::spawn(move || {
                let condition: Condition = Destination::queue("QM1", "Q.IN")
                    .pickup_within(Millis(5_000))
                    .into();
                (0..PER_SENDER)
                    .map(|i| {
                        messenger
                            .send_message(format!("s{s}-m{i}"), &condition)
                            .unwrap()
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let all_ids: Vec<_> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    assert_eq!(all_ids.len(), SENDERS * PER_SENDER);
    drain.join().unwrap();

    for id in all_ids {
        let outcome = messenger
            .take_outcome(id, Wait::Timeout(Millis(10_000)))
            .unwrap()
            .expect("decided");
        assert_eq!(outcome.outcome, MessageOutcome::Success);
    }
    assert_eq!(messenger.pending_count(), 0);
}

#[test]
fn parallel_spheres_with_shared_kv() {
    const SPHERES: usize = 6;
    let qmgr = QueueManager::builder("QM1").build().unwrap();
    for i in 0..SPHERES {
        qmgr.create_queue(format!("Q.S{i}")).unwrap();
    }
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    let service = DSphereService::new(messenger);
    let kv = KvStore::new("shared");

    // One consumer drains every sphere queue.
    let qmgr_consumer = qmgr.clone();
    let consumer = std::thread::spawn(move || {
        let mut receiver = ConditionalReceiver::new(qmgr_consumer).unwrap();
        let mut n = 0;
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while n < SPHERES && std::time::Instant::now() < deadline {
            for i in 0..SPHERES {
                if let Ok(Some(m)) = receiver.read_message(&format!("Q.S{i}"), Wait::NoWait) {
                    if m.kind() == MessageKind::Original {
                        n += 1;
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    });

    let handles: Vec<_> = (0..SPHERES)
        .map(|i| {
            let service = service.clone();
            let kv = kv.clone();
            std::thread::spawn(move || {
                let mut sphere = service.begin_with_timeout(Millis(8_000));
                sphere.enlist(kv.clone()).unwrap();
                // Disjoint keys: no write conflicts.
                kv.put(sphere.xid(), format!("sphere-{i}"), "done");
                sphere
                    .send_message(
                        format!("notice {i}"),
                        &Destination::queue("QM1", format!("Q.S{i}"))
                            .pickup_within(Millis(5_000))
                            .into(),
                    )
                    .unwrap();
                sphere.commit_blocking(Duration::from_millis(3)).unwrap()
            })
        })
        .collect();

    let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    consumer.join().unwrap();
    assert!(outcomes.iter().all(|o| o.is_committed()), "{outcomes:?}");
    for i in 0..SPHERES {
        assert_eq!(kv.get(&format!("sphere-{i}")), Some("done".into()));
    }
}

#[test]
fn pump_and_daemon_do_not_double_decide() {
    // Explicit pump calls racing the daemon must not produce duplicate
    // outcome notifications.
    let qmgr = QueueManager::builder("QM1").build().unwrap();
    qmgr.create_queue("Q.A").unwrap();
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    let _daemon = messenger.spawn_daemon(Duration::from_millis(1));
    let condition: Condition = Destination::queue("QM1", "Q.A")
        .pickup_within(Millis(30))
        .into();
    let mut ids = Vec::new();
    for i in 0..20 {
        ids.push(messenger.send_message(format!("m{i}"), &condition).unwrap());
        // Race explicit pumps against the daemon.
        let _ = messenger.pump();
    }
    std::thread::sleep(Duration::from_millis(100));
    let _ = messenger.pump();
    for id in ids {
        let first = messenger
            .take_outcome(id, Wait::Timeout(Millis(5_000)))
            .unwrap();
        assert!(first.is_some(), "exactly one notification exists");
        let second = messenger.take_outcome(id, Wait::NoWait).unwrap();
        assert!(second.is_none(), "no duplicate notification");
    }
}

#[test]
fn concurrent_persistent_puts_share_group_commit_fsyncs() {
    // 8 producer threads push persistent messages through a manager whose
    // journal is a file-backed GroupCommitJournal. Every put that returned
    // must survive a crash (the durability contract), and concurrent
    // appenders must have shared fsyncs rather than paying one each.
    use mq::journal::{GroupCommitConfig, GroupCommitJournal};
    use mq::Message;

    const THREADS: u64 = 8;
    const PUTS: u64 = 100;
    let path = std::env::temp_dir().join(format!(
        "condmsg-gc-concurrency-{}-{}.log",
        std::process::id(),
        rand::random::<u64>()
    ));
    let journal = GroupCommitJournal::open_file(&path, GroupCommitConfig::default()).unwrap();
    let qmgr = QueueManager::builder("QM1")
        .journal(journal.clone())
        .build()
        .unwrap();
    qmgr.create_queue("Q.LOAD").unwrap();

    let producers: Vec<_> = (0..THREADS)
        .map(|t| {
            let qmgr = qmgr.clone();
            std::thread::spawn(move || {
                for i in 0..PUTS {
                    qmgr.put(
                        "Q.LOAD",
                        Message::text(format!("p{t}-{i}")).persistent(true).build(),
                    )
                    .unwrap();
                }
            })
        })
        .collect();
    for p in producers {
        p.join().unwrap();
    }

    let appends = journal.metrics().appends.get();
    let fsyncs = journal.metrics().fsyncs.get();
    assert!(appends >= THREADS * PUTS);
    assert!(
        fsyncs < appends,
        "concurrent appenders should share fsyncs: {fsyncs} fsyncs for {appends} appends"
    );
    // The manager's metrics hub sees the same cells.
    assert_eq!(qmgr.metrics_snapshot().counter("mq.journal.fsyncs"), fsyncs);

    // Crash and rebuild over the same file: all acked puts are there.
    qmgr.crash();
    drop(journal);
    let journal2 = GroupCommitJournal::open_file(&path, GroupCommitConfig::default()).unwrap();
    let qmgr2 = QueueManager::builder("QM1").journal(journal2).build().unwrap();
    assert_eq!(qmgr2.queue("Q.LOAD").unwrap().depth(), (THREADS * PUTS) as usize);
    std::fs::remove_file(&path).ok();
}
