//! Integration coverage for the observability layer: the shared metrics
//! registry exposed through every service facade, and the message-lifecycle
//! trace (send → fan-out → acknowledgments → verdict → outcome actions)
//! recorded against simulated time.
//!
//! The compensation-path test mirrors the paper's Fig. 8 flow: a consumed
//! original whose condition fails is followed by its compensation message;
//! an unread original annihilates with the compensation instead.

use std::sync::Arc;

use condmsg::{
    Condition, ConditionalMessenger, ConditionalReceiver, Destination, DestinationSet, MessageKind,
    MessageOutcome, SendOptions,
};
use dsphere::DSphereService;
use mq::{QueueManager, TraceStage, Wait};
use simtime::{Millis, SimClock};

struct World {
    clock: Arc<SimClock>,
    qmgr: Arc<QueueManager>,
    messenger: Arc<ConditionalMessenger>,
}

fn world(queues: &[&str]) -> World {
    let clock = SimClock::new();
    let qmgr = QueueManager::builder("QM1")
        .clock(clock.clone())
        .build()
        .unwrap();
    for q in queues {
        qmgr.create_queue(*q).unwrap();
    }
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    World {
        clock,
        qmgr,
        messenger,
    }
}

/// Asserts that `expected` appears as a subsequence of `stages` (other
/// events may be interleaved, but the expected ones keep their order).
fn assert_stage_order(stages: &[TraceStage], expected: &[TraceStage]) {
    let mut rest = stages.iter();
    for want in expected {
        assert!(
            rest.any(|s| s == want),
            "stage {want:?} missing or out of order; expected subsequence {expected:?}, \
             full trace {stages:?}"
        );
    }
}

#[test]
fn success_path_lifecycle_trace() {
    let w = world(&["Q.A", "Q.B"]);
    // Bob only has to pick the message up; Alice must process it — so the
    // trace shows both ack kinds, like the paper's readAck / processAck.
    let condition: Condition = DestinationSet::of(vec![
        Destination::queue("QM1", "Q.A")
            .recipient("alice")
            .process_within(Millis(1_000))
            .into(),
        Destination::queue("QM1", "Q.B").recipient("bob").into(),
    ])
    .pickup_within(Millis(1_000))
    .into();
    let id = w
        .messenger
        .send_with(
            "signed contract",
            Some("withdraw contract".into()),
            &condition,
            SendOptions {
                success_notifications: Some(true),
                ..SendOptions::default()
            },
        )
        .unwrap();

    w.clock.advance(Millis(10));
    let mut bob = ConditionalReceiver::with_identity(w.qmgr.clone(), "bob").unwrap();
    bob.read_message("Q.B", Wait::NoWait).unwrap().unwrap();
    let mut alice = ConditionalReceiver::with_identity(w.qmgr.clone(), "alice").unwrap();
    alice.begin_tx().unwrap();
    alice.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
    alice.commit_tx().unwrap();
    let outcomes = w.messenger.pump().unwrap();
    assert_eq!(outcomes[0].outcome, MessageOutcome::Success);

    let stages = w.messenger.trace().stages_for(id.as_u128());
    assert_stage_order(
        &stages,
        &[
            TraceStage::Send,
            TraceStage::FanOut,
            TraceStage::FanOut,
            TraceStage::ReadAck,
            TraceStage::ProcessAck,
            TraceStage::Verdict,
            TraceStage::SuccessNotify,
            TraceStage::CompensationConsumed,
        ],
    );
    // Both parked compensations are consumed, never released.
    assert!(!stages.contains(&TraceStage::CompensationReleased));
    let events = w.messenger.trace().events_for(id.as_u128());
    let verdict = events
        .iter()
        .find(|e| e.stage == TraceStage::Verdict)
        .unwrap();
    assert_eq!(verdict.detail, "success");
}

#[test]
fn compensation_path_lifecycle_trace() {
    // Fig. 8: the original is consumed, the condition later fails, so the
    // compensation is released to the destination and delivered to the
    // consumer on its next read.
    let w = world(&["Q.A"]);
    let condition: Condition = Destination::queue("QM1", "Q.A")
        .recipient("alice")
        .process_within(Millis(100))
        .into();
    let id = w
        .messenger
        .send_message_with_compensation("book flight", "cancel flight", &condition)
        .unwrap();

    w.clock.advance(Millis(10));
    let mut receiver = ConditionalReceiver::with_identity(w.qmgr.clone(), "alice").unwrap();
    let original = receiver.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
    assert_eq!(original.kind(), MessageKind::Original);

    // Nobody commits a processing ack within the window: failure.
    w.clock.advance(Millis(200));
    let outcomes = w.messenger.pump().unwrap();
    assert_eq!(outcomes[0].outcome, MessageOutcome::Failure);

    // The released compensation reaches the consumer.
    let comp = receiver.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
    assert_eq!(comp.kind(), MessageKind::Compensation);
    assert_eq!(comp.payload_str(), Some("cancel flight"));

    let stages = w.messenger.trace().stages_for(id.as_u128());
    assert_stage_order(
        &stages,
        &[
            TraceStage::Send,
            TraceStage::FanOut,
            TraceStage::ReadAck,
            TraceStage::Verdict,
            TraceStage::CompensationReleased,
            TraceStage::CompensationDelivered,
        ],
    );
    let events = w.messenger.trace().events_for(id.as_u128());
    let verdict = events
        .iter()
        .find(|e| e.stage == TraceStage::Verdict)
        .unwrap();
    assert!(verdict.detail.starts_with("failure"), "{}", verdict.detail);
}

#[test]
fn annihilation_path_lifecycle_trace() {
    // Fig. 8's other leg: the original is never read, so the released
    // compensation annihilates with it instead of being delivered.
    let w = world(&["Q.A"]);
    let condition: Condition = Destination::queue("QM1", "Q.A")
        .pickup_within(Millis(100))
        .into();
    let id = w
        .messenger
        .send_message_with_compensation("offer", "rescind offer", &condition)
        .unwrap();
    w.clock.advance(Millis(200));
    let outcomes = w.messenger.pump().unwrap();
    assert_eq!(outcomes[0].outcome, MessageOutcome::Failure);

    let mut receiver = ConditionalReceiver::new(w.qmgr.clone()).unwrap();
    assert!(receiver
        .read_message("Q.A", Wait::NoWait)
        .unwrap()
        .is_none());
    assert_eq!(w.qmgr.queue("Q.A").unwrap().depth(), 0);

    let stages = w.messenger.trace().stages_for(id.as_u128());
    assert_stage_order(
        &stages,
        &[
            TraceStage::Send,
            TraceStage::FanOut,
            TraceStage::Verdict,
            TraceStage::CompensationReleased,
            TraceStage::Annihilated,
        ],
    );
    assert!(!stages.contains(&TraceStage::CompensationDelivered));
}

#[test]
fn end_to_end_run_populates_registry_across_layers() {
    // One success, one compensated failure, and one D-Sphere commit on a
    // single shared hub; the snapshot then shows every layer reporting.
    let w = world(&["Q.A", "Q.B"]);
    let ok: Condition = DestinationSet::of(vec![
        Destination::queue("QM1", "Q.A").recipient("alice").into(),
        Destination::queue("QM1", "Q.B").recipient("bob").into(),
    ])
    .process_within(Millis(1_000))
    .into();
    w.messenger.send_message("all good", &ok).unwrap();
    w.clock.advance(Millis(5));
    for (who, q) in [("alice", "Q.A"), ("bob", "Q.B")] {
        let mut receiver = ConditionalReceiver::with_identity(w.qmgr.clone(), who).unwrap();
        receiver.begin_tx().unwrap();
        receiver.read_message(q, Wait::NoWait).unwrap().unwrap();
        receiver.commit_tx().unwrap();
    }
    assert_eq!(
        w.messenger.pump().unwrap()[0].outcome,
        MessageOutcome::Success
    );

    let failing: Condition = Destination::queue("QM1", "Q.A")
        .recipient("alice")
        .process_within(Millis(50))
        .into();
    w.messenger
        .send_message_with_compensation("doomed", "undo", &failing)
        .unwrap();
    let mut alice = ConditionalReceiver::with_identity(w.qmgr.clone(), "alice").unwrap();
    alice.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
    w.clock.advance(Millis(100));
    assert_eq!(
        w.messenger.pump().unwrap()[0].outcome,
        MessageOutcome::Failure
    );
    alice.read_message("Q.A", Wait::NoWait).unwrap().unwrap();

    let spheres = DSphereService::new(w.messenger.clone());
    let mut sphere = spheres.begin();
    sphere.try_commit().unwrap();

    // All three facades expose the same shared registry.
    let from_messenger = w.messenger.metrics_snapshot();
    let from_qmgr = w.qmgr.metrics_snapshot();
    let from_spheres = spheres.metrics_snapshot();
    assert_eq!(from_messenger.render(), from_qmgr.render());
    assert_eq!(from_messenger.render(), from_spheres.render());

    let snapshot = from_messenger;
    assert!(
        snapshot.populated() >= 15,
        "expected at least 15 populated metrics, got {}:\n{}",
        snapshot.populated(),
        snapshot.render()
    );
    // Spot-check one counter per layer and component.
    assert_eq!(snapshot.counter("cond.sent"), 2);
    assert_eq!(snapshot.counter("cond.fanout"), 3);
    assert_eq!(snapshot.counter("cond.verdict.success"), 1);
    assert_eq!(snapshot.counter("cond.verdict.failure"), 1);
    assert_eq!(snapshot.counter("cond.comp.released"), 1);
    assert_eq!(snapshot.counter("cond.recv.originals"), 3);
    assert_eq!(snapshot.counter("cond.recv.comp_delivered"), 1);
    assert_eq!(snapshot.counter("dsphere.begun"), 1);
    assert_eq!(snapshot.counter("dsphere.committed"), 1);
    assert!(snapshot.counter("mq.queue.Q.A.enqueued") >= 2);
    assert!(snapshot.counter("mq.tx.committed") >= 2);
    let lag = snapshot.histograms.get("cond.ack.lag_ms").unwrap();
    assert!(lag.count >= 2, "ack lag histogram saw {} samples", lag.count);
    // Even the polled pump evaluates through the incremental core.
    assert!(
        snapshot.counter("cond.eval.incremental_updates") > 0,
        "pump-driven evaluation still counts incremental updates"
    );
    let batch = snapshot.histograms.get("cond.ack.batch_size").unwrap();
    assert!(
        batch.count >= 1,
        "ack draining records batch sizes, saw {} samples",
        batch.count
    );
}

#[test]
fn event_driven_core_reports_metrics() {
    // The event-driven path populates its own instruments: incremental
    // leaf updates on ack arrival, deadline-timer fires, and the size of
    // each drained ack batch.
    let w = world(&["Q.A"]);
    w.messenger.enable_event_driven().unwrap();
    let condition: Condition = Destination::queue("QM1", "Q.A")
        .pickup_within(Millis(100))
        .into();

    // Ack-driven decision: the read's acknowledgment is drained and
    // applied incrementally, no pump involved.
    let id = w.messenger.send_message("picked up", &condition).unwrap();
    w.clock.advance(Millis(5));
    let mut receiver = ConditionalReceiver::new(w.qmgr.clone()).unwrap();
    receiver.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
    let success = w
        .messenger
        .take_outcome(id, Wait::NoWait)
        .unwrap()
        .expect("decided on ack arrival");
    assert_eq!(success.outcome, MessageOutcome::Success);

    // Deadline-driven decision: the armed timer fires during the advance.
    let id = w.messenger.send_message("never read", &condition).unwrap();
    w.clock.advance(Millis(500));
    let failure = w
        .messenger
        .take_outcome(id, Wait::NoWait)
        .unwrap()
        .expect("decided by the deadline timer");
    assert_eq!(failure.outcome, MessageOutcome::Failure);

    let snapshot = w.messenger.metrics_snapshot();
    assert!(
        snapshot.counter("cond.eval.incremental_updates") > 0,
        "ack arrival applied incremental updates"
    );
    assert!(
        snapshot.counter("cond.eval.timer_fires") >= 1,
        "deadline decision came from a timer fire"
    );
    let batch = snapshot.histograms.get("cond.ack.batch_size").unwrap();
    assert!(
        batch.count >= 1,
        "ack draining recorded a batch, saw {} samples",
        batch.count
    );
}
