//! Property-based round-trip fuzzing for the wire codec: arbitrary
//! condition trees, sender-log entries, and control headers must survive
//! encode→decode→encode **byte-identically** (the binary format has a
//! single canonical encoding), and the message-property encodings
//! (`to_message`/`from_message`) must round-trip value-identically.

use bytes::Bytes;
use condmsg::wire::{
    AckKind, Acknowledgment, MessageOutcome, OutcomeNotification, SendOptions, SendRecord,
    SlogEntry,
};
use condmsg::{CondMessageId, Condition, Destination, DestinationSet};
use mq::codec::{WireDecode, WireEncode};
use mq::{Priority, QueueAddress};
use proptest::prelude::*;
use proptest::strategy::Union;
use simtime::{Millis, Time};

// ------------------------------------------------------------ strategies --

/// Millisecond values spanning zero, small, and huge (but `as i64`-safe,
/// since the message-property encodings store timestamps as `i64`).
fn arb_millis() -> impl Strategy<Value = Millis> {
    prop_oneof![
        5 => (0u64..10_000).prop_map(Millis),
        1 => Just(Millis(0)),
        1 => Just(Millis(i64::MAX as u64)),
    ]
}

fn arb_opt_millis() -> impl Strategy<Value = Option<Millis>> {
    proptest::option::weighted(0.5, arb_millis())
}

fn arb_time() -> impl Strategy<Value = Time> {
    (0u64..=i64::MAX as u64).prop_map(Time)
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_.]{1,12}".to_owned()
}

fn arb_cond_id() -> impl Strategy<Value = CondMessageId> {
    any::<u128>().prop_map(CondMessageId::from_u128)
}

fn arb_priority() -> impl Strategy<Value = Priority> {
    (0u8..=9).prop_map(Priority::new)
}

fn arb_payload() -> impl Strategy<Value = Bytes> {
    proptest::collection::vec(any::<u8>(), 0..48).prop_map(Bytes::from)
}

fn arb_destination() -> impl Strategy<Value = Destination> {
    (
        ((arb_name(), arb_name()), proptest::option::weighted(0.4, arb_name())),
        (arb_opt_millis(), arb_opt_millis(), arb_opt_millis()),
        (
            proptest::option::weighted(0.3, any::<bool>()),
            proptest::option::weighted(0.3, arb_priority()),
        ),
    )
        .prop_map(
            |(((mgr, queue), recipient), (pickup, process, expiry), (persistent, priority))| {
                let mut d = Destination::addressed(QueueAddress::new(mgr, queue));
                if let Some(r) = recipient {
                    d = d.recipient(r);
                }
                if let Some(w) = pickup {
                    d = d.pickup_within(w);
                }
                if let Some(w) = process {
                    d = d.process_within(w);
                }
                if let Some(ttl) = expiry {
                    d = d.expiry(ttl);
                }
                if let Some(p) = persistent {
                    d = d.persistent(p);
                }
                if let Some(p) = priority {
                    d = d.priority(p);
                }
                d
            },
        )
}

fn arb_opt_count() -> impl Strategy<Value = Option<u32>> {
    proptest::option::weighted(0.4, 0u32..6)
}

/// The codec imposes no semantic validity, so the strategy deliberately
/// produces trees `validate()` would reject (empty sets, zero counts,
/// counts without windows): the wire format must round-trip them all.
fn arb_condition(depth: u32) -> proptest::strategy::BoxedStrategy<Condition> {
    let leaf = arb_destination().prop_map(Condition::from).boxed();
    if depth == 0 {
        return leaf;
    }
    let set = (
        proptest::collection::vec(arb_condition(depth - 1), 0..4),
        (arb_opt_millis(), arb_opt_millis()),
        (arb_opt_count(), arb_opt_count(), arb_opt_count(), arb_opt_count()),
        (
            arb_opt_millis(),
            proptest::option::weighted(0.3, any::<bool>()),
            proptest::option::weighted(0.3, arb_priority()),
        ),
    )
        .prop_map(
            |(
                members,
                (pickup, process),
                (min_p, max_p, min_x, max_x),
                (expiry, persistent, priority),
            )| {
                let mut s = DestinationSet::of(members);
                if let Some(w) = pickup {
                    s = s.pickup_within(w);
                }
                if let Some(w) = process {
                    s = s.process_within(w);
                }
                if let Some(n) = min_p {
                    s = s.min_pickup(n);
                }
                if let Some(n) = max_p {
                    s = s.max_pickup(n);
                }
                if let Some(n) = min_x {
                    s = s.min_process(n);
                }
                if let Some(n) = max_x {
                    s = s.max_process(n);
                }
                if let Some(ttl) = expiry {
                    s = s.expiry(ttl);
                }
                if let Some(p) = persistent {
                    s = s.persistent(p);
                }
                if let Some(p) = priority {
                    s = s.priority(p);
                }
                Condition::from(s)
            },
        )
        .boxed();
    Union::new_weighted(vec![(2, leaf), (3, set)]).boxed()
}

fn arb_send_options() -> impl Strategy<Value = SendOptions> {
    (
        arb_opt_millis(),
        proptest::option::weighted(0.4, any::<bool>()),
        any::<bool>(),
    )
        .prop_map(
            |(evaluation_timeout, success_notifications, defer_outcome_actions)| SendOptions {
                evaluation_timeout,
                success_notifications,
                defer_outcome_actions,
            },
        )
}

/// Respects the decoder invariant that a `Processed` ack carries a
/// processing timestamp (`from_message` rejects it otherwise).
fn arb_ack() -> impl Strategy<Value = Acknowledgment> {
    (
        (arb_cond_id(), 0u32..8, any::<bool>()),
        (arb_time(), arb_time(), any::<bool>()),
        proptest::option::weighted(0.4, arb_name()),
    )
        .prop_map(
            |((cond_id, leaf, processed), (read_at, t_proc, have_proc_ts), recipient)| {
                let kind = if processed {
                    AckKind::Processed
                } else {
                    AckKind::Read
                };
                Acknowledgment {
                    cond_id,
                    leaf,
                    kind,
                    read_at,
                    processed_at: (processed || have_proc_ts).then_some(t_proc),
                    recipient,
                }
            },
        )
}

fn arb_outcome() -> impl Strategy<Value = OutcomeNotification> {
    (
        arb_cond_id(),
        any::<bool>(),
        proptest::option::weighted(0.4, arb_name()),
        arb_time(),
    )
        .prop_map(|(cond_id, success, reason, decided_at)| OutcomeNotification {
            cond_id,
            outcome: if success {
                MessageOutcome::Success
            } else {
                MessageOutcome::Failure
            },
            reason,
            decided_at,
        })
}

fn arb_send_record() -> impl Strategy<Value = SendRecord> {
    (
        (arb_cond_id(), arb_time(), arb_condition(2)),
        (
            arb_payload(),
            proptest::option::weighted(0.4, arb_payload()),
            arb_send_options(),
        ),
    )
        .prop_map(
            |((cond_id, send_time, condition), (payload, compensation, options))| SendRecord {
                cond_id,
                send_time,
                condition,
                payload,
                compensation,
                options,
            },
        )
}

fn arb_slog_entry() -> impl Strategy<Value = SlogEntry> {
    prop_oneof![
        2 => arb_send_record().prop_map(SlogEntry::Send),
        2 => arb_ack().prop_map(SlogEntry::AckSeen),
        1 => (arb_cond_id(), any::<bool>(), arb_time()).prop_map(
            |(cond_id, success, decided_at)| SlogEntry::Outcome {
                cond_id,
                outcome: if success {
                    MessageOutcome::Success
                } else {
                    MessageOutcome::Failure
                },
                decided_at,
            }
        ),
    ]
}

/// Asserts the canonical-encoding round trip for a [`WireEncode`] value:
/// decode recovers the value, and re-encoding reproduces the exact bytes.
fn assert_bytes_roundtrip<T>(value: &T) -> Result<(), proptest::test_runner::TestCaseError>
where
    T: WireEncode + WireDecode + PartialEq + std::fmt::Debug,
{
    let bytes = value.to_bytes();
    let decoded = match T::from_bytes(bytes.clone()) {
        Ok(v) => v,
        Err(e) => {
            return Err(proptest::test_runner::TestCaseError::fail(format!(
                "decode failed: {e:?} for {value:?}"
            )))
        }
    };
    prop_assert_eq!(&decoded, value, "decode must recover the value");
    prop_assert_eq!(
        decoded.to_bytes(),
        bytes,
        "re-encode must be byte-identical"
    );
    Ok(())
}

// ------------------------------------------------------------ properties --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Condition trees (the paper's Fig. 3 composite) have one canonical
    /// byte encoding: encode→decode→encode is the identity on bytes.
    #[test]
    fn condition_roundtrip_byte_identical(cond in arb_condition(3)) {
        assert_bytes_roundtrip(&cond)?;
    }

    /// Per-send options survive the codec byte-identically.
    #[test]
    fn send_options_roundtrip_byte_identical(opts in arb_send_options()) {
        assert_bytes_roundtrip(&opts)?;
    }

    /// Durable sender-log send records (condition + payload + options)
    /// survive the codec byte-identically.
    #[test]
    fn send_record_roundtrip_byte_identical(record in arb_send_record()) {
        assert_bytes_roundtrip(&record)?;
    }

    /// All three sender-log entry variants survive the codec
    /// byte-identically.
    #[test]
    fn slog_entry_roundtrip_byte_identical(entry in arb_slog_entry()) {
        assert_bytes_roundtrip(&entry)?;
    }

    /// Sender-log entries carried as queue messages round-trip through the
    /// message-property encoding (`to_message`/`from_message`).
    #[test]
    fn slog_entry_message_roundtrip(entry in arb_slog_entry()) {
        let msg = entry.to_message();
        let back = SlogEntry::from_message(&msg).expect("slog decodes");
        prop_assert_eq!(back, entry);
    }

    /// Acknowledgment headers round-trip through the message-property
    /// encoding, including the `Processed ⇒ processing timestamp`
    /// invariant.
    #[test]
    fn ack_message_roundtrip(ack in arb_ack()) {
        let msg = ack.to_message();
        let back = Acknowledgment::from_message(&msg).expect("ack decodes");
        prop_assert_eq!(back, ack);
    }

    /// Outcome notifications round-trip through the message-property
    /// encoding.
    #[test]
    fn outcome_message_roundtrip(outcome in arb_outcome()) {
        let msg = outcome.to_message();
        let back = OutcomeNotification::from_message(&msg).expect("outcome decodes");
        prop_assert_eq!(back, outcome);
    }
}
