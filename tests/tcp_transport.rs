//! Conditional messaging over real sockets.
//!
//! These tests run two queue managers in one process whose only message
//! path is loopback TCP: each side hosts a `TcpAcceptor` and reaches the
//! other through a `Channel::connect_tcp` mover. The full Fig. 8 protocol
//! — original message out, read-acks back, verdict, compensation — crosses
//! actual sockets with CRC-framed batches, and a fault test kills the
//! sockets mid-stream to show reconnect with exactly-one delivery.

use std::sync::Arc;
use std::time::Duration;

use condmsg::{
    ConditionalMessenger, ConditionalReceiver, Condition, Destination, MessageKind, MessageOutcome,
};
use mq::channel::Channel;
use mq::transport::tcp::{TcpAcceptor, TcpConfig, TcpTransport};
use mq::{Message, QueueAddress, QueueManager, SystemClock, Wait};
use simtime::Millis;

/// Two managers connected in both directions by loopback TCP only.
struct TcpCluster {
    sender_qm: Arc<QueueManager>,
    receiver_qm: Arc<QueueManager>,
    messenger: Arc<ConditionalMessenger>,
    send_acceptor: Arc<TcpAcceptor>,
    recv_acceptor: Arc<TcpAcceptor>,
    _channels: (Channel, Channel),
}

fn tcp_config() -> TcpConfig {
    TcpConfig {
        connect_timeout: Duration::from_millis(1000),
        read_timeout: Duration::from_millis(1500),
        heartbeat_interval: Duration::from_millis(200),
        backoff_initial: Duration::from_millis(5),
        backoff_max: Duration::from_millis(100),
        expected_peer: None, // filled in by connect_tcp from the route
    }
}

fn tcp_cluster() -> TcpCluster {
    let clock = SystemClock::new();
    let sender_qm = QueueManager::builder("QM.SEND")
        .clock(clock.clone())
        .build()
        .unwrap();
    let receiver_qm = QueueManager::builder("QM.RECV")
        .clock(clock)
        .build()
        .unwrap();
    receiver_qm.create_queue("Q.IN").unwrap();
    // Each manager listens on an ephemeral loopback port…
    let send_acceptor = TcpAcceptor::bind(&sender_qm, "127.0.0.1:0").unwrap();
    let recv_acceptor = TcpAcceptor::bind(&receiver_qm, "127.0.0.1:0").unwrap();
    // …and dials the other: no in-process Link anywhere.
    let ch_out = Channel::connect_tcp(
        &sender_qm,
        "QM.RECV",
        recv_acceptor.local_addr(),
        tcp_config(),
    )
    .unwrap();
    let ch_back = Channel::connect_tcp(
        &receiver_qm,
        "QM.SEND",
        send_acceptor.local_addr(),
        tcp_config(),
    )
    .unwrap();
    let messenger = ConditionalMessenger::new(sender_qm.clone()).unwrap();
    TcpCluster {
        sender_qm,
        receiver_qm,
        messenger,
        send_acceptor,
        recv_acceptor,
        _channels: (ch_out, ch_back),
    }
}

fn wait_for<F: Fn() -> bool>(what: &str, timeout: Duration, f: F) {
    let deadline = std::time::Instant::now() + timeout;
    while !f() {
        assert!(std::time::Instant::now() < deadline, "timed out: {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn remote_condition(window: Millis) -> Condition {
    Destination::queue("QM.RECV", "Q.IN")
        .pickup_within(window)
        .into()
}

#[test]
fn fig8_success_flow_over_loopback_tcp() {
    let c = tcp_cluster();
    let _daemon = c.messenger.spawn_daemon(Duration::from_millis(2));
    let id = c
        .messenger
        .send_message("over a real wire", &remote_condition(Millis(5_000)))
        .unwrap();

    // The receiver side runs in its own thread, as a remote process
    // would: it sees the message arrive over the socket, reads it through
    // the conditional-receiver system layer (which sends the read-ack
    // back over the reverse socket).
    let receiver_qm = c.receiver_qm.clone();
    let reader = std::thread::spawn(move || {
        let mut receiver =
            ConditionalReceiver::with_identity(receiver_qm, "remote-app").unwrap();
        let got = receiver
            .read_message("Q.IN", Wait::Timeout(Millis(5_000)))
            .unwrap()
            .expect("delivered over TCP");
        assert_eq!(got.kind(), MessageKind::Original);
        assert_eq!(got.payload_str(), Some("over a real wire"));
    });
    reader.join().unwrap();

    // Ack crossed back over the wire; the evaluation decides success.
    let outcome = c
        .messenger
        .take_outcome(id, Wait::Timeout(Millis(10_000)))
        .unwrap()
        .expect("outcome decided");
    assert_eq!(outcome.outcome, MessageOutcome::Success);

    // The traffic genuinely crossed sockets: both sides moved frames.
    // Transport bookkeeping is eventually consistent with delivery — the
    // sender's batches_sent only increments once the ack frame crosses
    // back, which races the outcome pipeline — so poll briefly.
    let settle = Duration::from_secs(5);
    wait_for("sender counted its batch", settle, || {
        c.sender_qm.metrics_snapshot().counter("mq.transport.batches_sent") >= 1
    });
    wait_for("ack path counted its batch", settle, || {
        c.receiver_qm.metrics_snapshot().counter("mq.transport.batches_sent") >= 1
    });
    let sent = c.sender_qm.metrics_snapshot();
    assert!(sent.counter("mq.transport.bytes_sent") > 0);
    let recv = c.receiver_qm.metrics_snapshot();
    assert!(recv.counter("mq.transport.messages_received") >= 1);

    c.sender_qm.shutdown();
    c.receiver_qm.shutdown();
}

#[test]
fn fig8_compensation_flow_over_loopback_tcp() {
    let c = tcp_cluster();
    let _daemon = c.messenger.spawn_daemon(Duration::from_millis(2));
    let id = c
        .messenger
        .send_message_with_compensation(
            "original",
            "undo remotely",
            &remote_condition(Millis(200)),
        )
        .unwrap();

    // Nobody reads in time → failure verdict → the compensation crosses
    // the socket to annihilate the unread original.
    let outcome = c
        .messenger
        .take_outcome(id, Wait::Timeout(Millis(10_000)))
        .unwrap()
        .expect("verdict");
    assert_eq!(outcome.outcome, MessageOutcome::Failure);
    wait_for(
        "compensation delivered over TCP",
        Duration::from_secs(5),
        || c.receiver_qm.queue("Q.IN").map(|q| q.depth()).unwrap_or(0) == 2,
    );
    // Receiver-side system annihilates the original/compensation pair.
    let mut receiver = ConditionalReceiver::new(c.receiver_qm.clone()).unwrap();
    assert!(receiver
        .read_message("Q.IN", Wait::NoWait)
        .unwrap()
        .is_none());
    assert_eq!(c.receiver_qm.queue("Q.IN").unwrap().depth(), 0);

    c.sender_qm.shutdown();
    c.receiver_qm.shutdown();
}

#[test]
fn socket_kill_reconnects_with_exactly_one_delivery() {
    let clock = SystemClock::new();
    let sender_qm = QueueManager::builder("QM.SEND")
        .clock(clock.clone())
        .build()
        .unwrap();
    let receiver_qm = QueueManager::builder("QM.RECV")
        .clock(clock)
        .build()
        .unwrap();
    receiver_qm.create_queue("Q.IN").unwrap();
    let acceptor = TcpAcceptor::bind(&receiver_qm, "127.0.0.1:0").unwrap();
    // Deterministic fault: the first batch is delivered on the receiver
    // but the connection dies before the ack, forcing the sender to
    // resend it after reconnect — the receiver's dedup must swallow the
    // duplicates.
    acceptor.inject_drop_before_ack(1);
    let _channel = Channel::connect_tcp(
        &sender_qm,
        "QM.RECV",
        acceptor.local_addr(),
        tcp_config(),
    )
    .unwrap();

    const N: usize = 50;
    for i in 0..N {
        sender_qm
            .put_to(
                &QueueAddress::new("QM.RECV", "Q.IN"),
                Message::text(format!("unique-{i}")).build(),
            )
            .unwrap();
        if i == N / 2 {
            // And an unannounced mid-stream cut on top.
            acceptor.kick_all();
        }
    }

    wait_for("all messages across the faults", Duration::from_secs(20), || {
        receiver_qm.queue("Q.IN").map(|q| q.depth()).unwrap_or(0) >= N
    });
    // Settle, then assert *exactly* N — no duplicate survived dedup…
    std::thread::sleep(Duration::from_millis(200));
    let q = receiver_qm.queue("Q.IN").unwrap();
    assert_eq!(q.depth(), N, "exactly one copy of each message");
    // …and no message was lost or replaced: every unique payload arrived.
    let mut payloads: Vec<String> = q
        .browse()
        .iter()
        .map(|m| m.payload_str().unwrap().to_owned())
        .collect();
    payloads.sort();
    payloads.dedup();
    assert_eq!(payloads.len(), N, "all payloads distinct");
    for i in 0..N {
        assert!(
            payloads.contains(&format!("unique-{i}")),
            "payload unique-{i} missing"
        );
    }

    // The faults actually happened and were survived the intended way.
    let sent = sender_qm.metrics_snapshot();
    assert!(
        sent.counter("mq.transport.reconnects") >= 1,
        "sender reconnected after the kills"
    );
    let recv = receiver_qm.metrics_snapshot();
    assert!(
        recv.counter("mq.transport.dedup_dropped") >= 1,
        "receiver deduplicated the unacked batch's resend"
    );

    sender_qm.shutdown();
    receiver_qm.shutdown();
}

#[test]
fn manager_shutdown_stops_tcp_machinery_idempotently() {
    let c = tcp_cluster();
    // First shutdown joins movers and acceptors; the second must be a
    // no-op rather than a hang or panic.
    c.sender_qm.shutdown();
    c.sender_qm.shutdown();
    c.receiver_qm.shutdown();
    c.receiver_qm.shutdown();
    // Direct acceptor shutdown after the manager already stopped it is
    // also harmless (idempotent at both layers).
    c.send_acceptor.shutdown();
    c.recv_acceptor.shutdown();
    // The managers themselves still serve local traffic.
    assert!(c.sender_qm.is_running());
    c.sender_qm.create_queue("Q.LOCAL").unwrap();
    c.sender_qm
        .put("Q.LOCAL", Message::text("still alive").build())
        .unwrap();
    assert_eq!(c.sender_qm.queue("Q.LOCAL").unwrap().depth(), 1);
}

#[test]
fn heartbeats_keep_idle_connections_verified() {
    let clock = SystemClock::new();
    let receiver_qm = QueueManager::builder("QM.RECV").clock(clock).build().unwrap();
    let acceptor = TcpAcceptor::bind(&receiver_qm, "127.0.0.1:0").unwrap();
    let registry = mq::MetricsRegistry::new();
    let transport = TcpTransport::connect(
        "QM.SEND",
        acceptor.local_addr(),
        TcpConfig {
            heartbeat_interval: Duration::from_millis(30),
            ..tcp_config()
        },
        &registry,
    )
    .unwrap();
    wait_for("heartbeats on an idle connection", Duration::from_secs(5), || {
        registry.snapshot().counter("mq.transport.heartbeats") >= 3
    });
    assert_eq!(registry.snapshot().counter("mq.transport.heartbeat_misses"), 0);
    mq::Transport::shutdown(&*transport);
    receiver_qm.shutdown();
}
