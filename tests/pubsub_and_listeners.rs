//! Integration of the extension surfaces: durable topics, conditional
//! publish, and push listeners — including across queue managers.

use std::sync::Arc;
use std::time::Duration;

use condmsg::{
    ConditionalListener, ConditionalMessenger, GroupCondition, MessageKind, MessageOutcome,
    Processing, SendOptions,
};
use mq::channel::Channel;
use mq::net::Link;
use mq::topic::Topic;
use mq::{Message, QueueManager, SystemClock, Wait};
use simtime::Millis;

fn wait_for<F: Fn() -> bool>(what: &str, f: F) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !f() {
        assert!(std::time::Instant::now() < deadline, "timed out: {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn conditional_publish_processed_by_listeners() {
    let qmgr = QueueManager::builder("QM1").build().unwrap();
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    let _daemon = messenger.spawn_daemon(Duration::from_millis(2));
    let topic = Topic::open(qmgr.clone(), "jobs").unwrap();

    // Three subscriber desks, each served by a push listener that
    // processes transactionally (→ processed-acks).
    let mut listeners = Vec::new();
    for name in ["d1", "d2", "d3"] {
        let queue = topic.subscribe(name).unwrap();
        listeners.push(
            ConditionalListener::spawn(
                qmgr.clone(),
                queue,
                Some(name.to_string()),
                Box::new(|_msg| Processing::Commit),
            )
            .unwrap(),
        );
    }

    // Require processing by at least 2 of the 3 subscribers.
    let template = GroupCondition {
        process_within: Some(Millis(5_000)),
        min_process: Some(2),
        ..GroupCondition::default()
    };
    let (id, n) = messenger
        .publish_conditional(&topic, "batch job 7", &template, SendOptions::default())
        .unwrap();
    assert_eq!(n, 3);
    let outcome = messenger
        .take_outcome(id, Wait::Timeout(Millis(5_000)))
        .unwrap()
        .expect("decided");
    assert_eq!(outcome.outcome, MessageOutcome::Success);
    // The outcome is decided at min_process = 2; the third listener may
    // still be mid-commit, so poll rather than assert instantly.
    wait_for("every subscriber processed its copy", || {
        listeners.iter().map(|l| l.stats().processed.get()).sum::<u64>() == 3
    });
}

#[test]
fn topic_fanout_to_remote_subscriber_queue() {
    // The topic lives on QM.HUB; one subscriber drains its subscription
    // queue from a remote manager via a channel (subscription queues are
    // plain queues, so standard store-and-forward applies to relays).
    let clock = SystemClock::new();
    let hub = QueueManager::builder("QM.HUB")
        .clock(clock.clone())
        .build()
        .unwrap();
    let edge = QueueManager::builder("QM.EDGE")
        .clock(clock)
        .build()
        .unwrap();
    edge.create_queue("EDGE.IN").unwrap();
    let _channels = Channel::connect_duplex(&hub, &edge, Link::ideal(), Link::ideal()).unwrap();

    let topic = Topic::open(hub.clone(), "relay").unwrap();
    let local_q = topic.subscribe("local").unwrap();
    let relay_q = topic.subscribe("relay-to-edge").unwrap();
    // A relay listener forwards the subscription's messages to the edge
    // manager, atomically with their consumption.
    let _relay = mq::listener::Listener::spawn(
        hub.clone(),
        relay_q,
        Box::new(|msg, session| {
            let addr = mq::QueueAddress::new("QM.EDGE", "EDGE.IN");
            session
                .put_to(
                    &addr,
                    Message::text(msg.payload_str().unwrap_or("")).build(),
                )
                .expect("stage relay");
            mq::listener::Disposition::Commit
        }),
    )
    .unwrap();

    topic
        .publish(Message::text("tick").persistent(true).build())
        .unwrap();
    wait_for("local copy", || hub.queue(&local_q).unwrap().depth() == 1);
    wait_for("edge relay", || edge.queue("EDGE.IN").unwrap().depth() == 1);
    let got = edge.get("EDGE.IN", Wait::NoWait).unwrap().unwrap();
    assert_eq!(got.payload_str(), Some("tick"));
}

#[test]
fn quorum_failure_withdraws_from_all_subscribers() {
    let qmgr = QueueManager::builder("QM1").build().unwrap();
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    let _daemon = messenger.spawn_daemon(Duration::from_millis(2));
    let topic = Topic::open(qmgr.clone(), "votes").unwrap();
    let q_active = topic.subscribe("active").unwrap();
    topic.subscribe("idle-1").unwrap();
    topic.subscribe("idle-2").unwrap();

    // Only one desk is listening; quorum of 2 fails.
    let listener = ConditionalListener::spawn(
        qmgr.clone(),
        q_active.clone(),
        None,
        Box::new(|_msg| Processing::Commit),
    )
    .unwrap();
    let (id, _) = messenger
        .publish_conditional_with_compensation(
            &topic,
            "proposal #9",
            "proposal withdrawn",
            &GroupCondition::min_pickup_within(2, Millis(150)),
            SendOptions {
                evaluation_timeout: Some(Millis(200)),
                ..SendOptions::default()
            },
        )
        .unwrap();
    let outcome = messenger
        .take_outcome(id, Wait::Timeout(Millis(5_000)))
        .unwrap()
        .expect("decided");
    assert_eq!(outcome.outcome, MessageOutcome::Failure);
    // The active subscriber consumed its copy, so its compensation is
    // *delivered* (through the same listener); the idle subscribers'
    // copies annihilate.
    wait_for("compensation via listener", || {
        listener.stats().processed.get() >= 2
    });
    for idle in ["TOPIC.votes.idle-1", "TOPIC.votes.idle-2"] {
        let mut receiver = condmsg::ConditionalReceiver::new(qmgr.clone()).unwrap();
        assert!(receiver.read_message(idle, Wait::NoWait).unwrap().is_none());
        assert_eq!(qmgr.queue(idle).unwrap().depth(), 0, "{idle} annihilated");
    }
}

#[test]
fn listener_delivers_compensation_with_kind_visible() {
    // A listener sees original and compensation as distinct kinds.
    let qmgr = QueueManager::builder("QM1").build().unwrap();
    qmgr.create_queue("Q").unwrap();
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    let _daemon = messenger.spawn_daemon(Duration::from_millis(2));
    let kinds = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let kinds2 = kinds.clone();
    let _listener = ConditionalListener::spawn(
        qmgr.clone(),
        "Q",
        None,
        Box::new(move |msg| {
            kinds2.lock().push(msg.kind());
            Processing::Commit
        }),
    )
    .unwrap();
    let condition: condmsg::Condition = condmsg::Destination::queue("QM1", "Q")
        .process_within(Millis(60))
        .pickup_within(Millis(60))
        .into();
    // Success path: the listener processes in time and the only delivery
    // it sees is the original (compensation delivery through a listener is
    // covered by quorum_failure_withdraws_from_all_subscribers).
    let id = messenger.send_message("work", &condition).unwrap();
    let outcome = messenger
        .take_outcome(id, Wait::Timeout(Millis(5_000)))
        .unwrap()
        .expect("decided");
    assert_eq!(outcome.outcome, MessageOutcome::Success);
    wait_for("one delivery", || !kinds.lock().is_empty());
    assert_eq!(kinds.lock()[0], MessageKind::Original);
}
