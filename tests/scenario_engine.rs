//! Scenario-engine ports of the hand-coded integration flows.
//!
//! The originals stay in place as goldens (`tests/end_to_end.rs`,
//! `tests/failure_injection.rs`); these tests re-declare the same flows
//! as scenario specs — builder API and TOML — and assert the engine's
//! oracle reproduces the original assertions: every message reaches
//! exactly one of success / compensation / annihilation, and the counts
//! match the declarations.

use cond_scenario::{
    exec, AckerSpec, ActorSpec, DelaySpec, DestSpec, Expect, FaultActionSpec, FaultSpec,
    ManagerSpec, QueueSpec, ScenarioSpec, SetSpec,
};

/// One paper "day", scaled as in `tests/end_to_end.rs`.
const DAY: u64 = 1_000;

/// Paper Fig. 4 / end_to_end `example1_success_when_all_conditions_met`:
/// receiver3 must process within 7 days, two of the other three must
/// process within 11 days, and everyone must pick up within 2 days.
/// Process-mode ackers on all four queues satisfy every clause; the
/// oracle must see nothing but success.
#[test]
fn example1_success_when_all_conditions_met() {
    let condition = SetSpec::new()
        .member(
            DestSpec::new("QM1", "Q.R3")
                .recipient("receiver3")
                .process_within_ms(7 * DAY),
        )
        .member(
            SetSpec::new()
                .member(DestSpec::new("QM1", "Q.R1").recipient("receiver1"))
                .member(DestSpec::new("QM1", "Q.R2").recipient("receiver2"))
                .member(DestSpec::new("QM1", "Q.R4").recipient("receiver4"))
                .process_within_ms(11 * DAY)
                .min_process(2),
        )
        .pickup_within_ms(2 * DAY);
    let mut spec = ScenarioSpec::new("example1-success")
        .seed(5)
        .manager(ManagerSpec::new("QM1"))
        .actor(ActorSpec::new("meeting", "QM1", 3, condition).payload("meeting notification {i}"));
    for (q, r) in [
        ("Q.R1", "receiver1"),
        ("Q.R2", "receiver2"),
        ("Q.R3", "receiver3"),
        ("Q.R4", "receiver4"),
    ] {
        spec = spec
            .queue(QueueSpec::new("QM1", q))
            .acker(
                AckerSpec::new("QM1", q)
                    .recipient(r)
                    .process()
                    .delay(DelaySpec::Fixed { ms: 50 }),
            );
    }
    let report = exec::run(&spec, false).unwrap();
    assert_eq!(report.sent, 3);
    assert_eq!(report.success, 3, "{}", report.oracle);
    assert_eq!(report.failure, 0);
    assert!(report.oracle.passed(), "{}", report.oracle);
}

/// end_to_end `example1_fails_on_missed_pickup`: the same shape, but one
/// destination queue has no receiver at all, so the all-must-pick-up
/// root window expires and the verdict must be failure — for every
/// message, with no stragglers and no duplicated outcomes.
#[test]
fn example1_fails_on_missed_pickup() {
    let condition = SetSpec::new()
        .member(DestSpec::new("QM1", "Q.R1").recipient("receiver1"))
        .member(DestSpec::new("QM1", "Q.R2").recipient("receiver2"))
        .member(DestSpec::new("QM1", "Q.R3").recipient("receiver3"))
        .member(DestSpec::new("QM1", "Q.R4"))
        .pickup_within_ms(2 * DAY);
    let mut spec = ScenarioSpec::new("example1-missed-pickup")
        .seed(6)
        .manager(ManagerSpec::new("QM1"))
        .queue(QueueSpec::new("QM1", "Q.R4"))
        .actor(
            ActorSpec::new("meeting", "QM1", 2, condition)
                .payload("meeting notification {i}")
                .expect(Expect::Failure),
        );
    // Three of four read promptly; Q.R4 is never served.
    for (q, r) in [
        ("Q.R1", "receiver1"),
        ("Q.R2", "receiver2"),
        ("Q.R3", "receiver3"),
    ] {
        spec = spec.queue(QueueSpec::new("QM1", q)).acker(
            AckerSpec::new("QM1", q)
                .recipient(r)
                .delay(DelaySpec::Fixed { ms: DAY }),
        );
    }
    let report = exec::run(&spec, false).unwrap();
    assert_eq!(report.sent, 2);
    assert_eq!(report.failure, 2, "{}", report.oracle);
    assert_eq!(report.success, 0);
    assert!(report.oracle.passed(), "{}", report.oracle);
}

/// end_to_end `example2_times_out_when_nobody_reads`, declared in TOML:
/// a compensated send to a queue nobody reads must fail by deadline,
/// release its compensation, and annihilate against the unread original
/// — leaving the destination queue empty, which the oracle's
/// `destinations_drained` + stage checks prove.
#[test]
fn example2_timeout_annihilates_via_toml() {
    let src = r#"
name = "example2-timeout"
seed = 9
clock = "sim"

[[managers]]
name = "QM1"

[[queues]]
manager = "QM1"
name = "Q.CENTRAL"

[[actors]]
name = "flights"
manager = "QM1"
count = 4
payload = "incoming flight {i}"
compensation = "cancel flight {i}"
expect = "failure"
evaluation_timeout_ms = 21000

[actors.condition]
manager = "QM1"
queue = "Q.CENTRAL"
pickup_within_ms = 20000

[oracle]

[[oracle.metrics]]
metric = "cond.verdict.failure"
min = 4

[[oracle.metrics]]
metric = "cond.comp.released"
min = 4

[[oracle.stages]]
stage = "comp-released"

[[oracle.stages]]
stage = "annihilated"
"#;
    let spec = ScenarioSpec::from_toml_str(src).unwrap();
    let report = exec::run(&spec, false).unwrap();
    assert_eq!(report.sent, 4);
    assert_eq!(report.failure, 4, "{}", report.oracle);
    assert_eq!(report.success, 0);
    assert!(report.oracle.passed(), "{}", report.oracle);
}

/// failure_injection `failed_conditional_send_leaves_no_state_behind` +
/// the heal path, declared in TOML: with the manager on a faultable
/// journal, storage fails before the first send (every send must be
/// rejected cleanly, leaving no pending state), heals before the second
/// actor (whose sends must then succeed end to end). The oracle's
/// conservation checks prove nothing was half-sent either way.
#[test]
fn storage_faults_reject_sends_cleanly_then_heal() {
    let src = r#"
name = "storage-faults"
seed = 13
clock = "sim"

[[managers]]
name = "QM1"
journal = "faultable"

[[queues]]
manager = "QM1"
name = "Q.APP"

[[actors]]
name = "doomed"
manager = "QM1"
count = 3
payload = "doomed-{i}"
expect = "send_error"

[actors.condition]
manager = "QM1"
queue = "Q.APP"
pickup_within_ms = 1000

[[actors]]
name = "retry"
manager = "QM1"
count = 3
payload = "retry-{i}"

[actors.condition]
manager = "QM1"
queue = "Q.APP"
pickup_within_ms = 1000

[[ackers]]
manager = "QM1"
queue = "Q.APP"

[[faults]]
point = "journal:QM1"
action = "fail_storage"
after_fraction = 0.0

[[faults]]
point = "journal:QM1"
action = "heal_storage"
after_fraction = 0.5

[oracle]

[[oracle.metrics]]
metric = "cond.verdict.success"
min = 3
"#;
    let spec = ScenarioSpec::from_toml_str(src).unwrap();
    let report = exec::run(&spec, false).unwrap();
    assert_eq!(report.send_errors, 3, "{}", report.oracle);
    assert_eq!(report.sent, 3);
    assert_eq!(report.success, 3, "{}", report.oracle);
    assert!(report.oracle.passed(), "{}", report.oracle);
}

/// The spec layer rejects malformed declarations rather than letting a
/// wrong scenario run: unknown fault actions and sampled actors without
/// a pickup window are spec errors, not runtime surprises.
#[test]
fn malformed_scenarios_are_rejected_before_running() {
    let bad_action = r#"
name = "bad"
[[managers]]
name = "QM1"
[[faults]]
point = "journal:QM1"
action = "melt"
"#;
    assert!(ScenarioSpec::from_toml_str(bad_action).is_err());

    let sampled_without_window = ScenarioSpec::new("bad")
        .manager(ManagerSpec::new("QM1"))
        .actor(ActorSpec::new("a", "QM1", 1, DestSpec::new("QM1", "Q")).expect(Expect::Sampled));
    assert!(sampled_without_window.validate().is_err());

    let fraction_fault = ScenarioSpec::new("bad-point")
        .manager(ManagerSpec::new("QM1"))
        .queue(QueueSpec::new("QM1", "Q"))
        .actor(ActorSpec::new("a", "QM1", 1, DestSpec::new("QM1", "Q")))
        .fault(FaultSpec::at_fraction(
            "journal:QM1",
            FaultActionSpec::FailStorage,
            0.0,
        ));
    // The fault names a journal point but the manager has no faultable
    // journal — compilation must refuse it.
    assert!(exec::run(&fraction_fault, false).is_err());
}
