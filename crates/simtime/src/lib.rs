//! Virtual and system clocks for deterministic distributed-systems code.
//!
//! The conditional-messaging stack expresses every deadline in *milliseconds
//! relative to the sender's clock* (paper §2.2). To make those deadlines both
//! testable (deterministically, without real sleeps) and benchable, all
//! time-dependent components take a [`SharedClock`] instead of reading the OS
//! clock directly.
//!
//! Two implementations are provided, both driving the same
//! [`DeadlineScheduler`]:
//!
//! * [`SystemClock`] — real time, backed by [`std::time::Instant`], with a
//!   lazily spawned parked waiter thread that sleeps until the earliest
//!   pending deadline.
//! * [`SimClock`] — logical time that only moves when a test calls
//!   [`SimClock::advance`]; due timers run synchronously on the advancing
//!   thread, in timestamp order, which makes timeout-driven behaviour fully
//!   reproducible.
//!
//! # Examples
//!
//! ```
//! use simtime::{Clock, Millis, SimClock};
//!
//! let clock = SimClock::new();
//! let fired = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
//! let f = fired.clone();
//! clock.schedule_at(clock.now() + Millis(50), Box::new(move || {
//!     f.store(true, std::sync::atomic::Ordering::SeqCst);
//! }));
//! clock.advance(Millis(49));
//! assert!(!fired.load(std::sync::atomic::Ordering::SeqCst));
//! clock.advance(Millis(1));
//! assert!(fired.load(std::sync::atomic::Ordering::SeqCst));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// A duration in milliseconds.
///
/// The paper specifies all condition attributes (`MsgPickUpTime`,
/// `MsgProcessingTime`, evaluation timeouts) in milliseconds; this newtype
/// keeps those values distinct from absolute [`Time`] stamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Millis(pub u64);

impl Millis {
    /// Zero duration.
    pub const ZERO: Millis = Millis(0);

    /// One second, for readability in tests and examples.
    pub const SECOND: Millis = Millis(1_000);

    /// Returns the raw millisecond count.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Converts to a [`std::time::Duration`].
    pub fn to_duration(self) -> Duration {
        Duration::from_millis(self.0)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Millis) -> Millis {
        Millis(self.0.saturating_sub(rhs.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, rhs: Millis) -> Millis {
        Millis(self.0.min(rhs.0))
    }
}

impl fmt::Display for Millis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl From<u64> for Millis {
    fn from(v: u64) -> Self {
        Millis(v)
    }
}

impl Add for Millis {
    type Output = Millis;
    fn add(self, rhs: Millis) -> Millis {
        Millis(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Millis {
    fn add_assign(&mut self, rhs: Millis) {
        *self = *self + rhs;
    }
}

impl std::ops::Mul<u64> for Millis {
    type Output = Millis;
    fn mul(self, rhs: u64) -> Millis {
        Millis(self.0.saturating_mul(rhs))
    }
}

/// An absolute timestamp in milliseconds since the owning clock's epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The clock epoch.
    pub const ZERO: Time = Time(0);

    /// A timestamp far in the future, usable as "no deadline".
    pub const MAX: Time = Time(u64::MAX);

    /// Returns the raw millisecond count since the epoch.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Elapsed duration since `earlier` (saturating at zero).
    pub fn since(self, earlier: Time) -> Millis {
        Millis(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: Millis) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

impl Add<Millis> for Time {
    type Output = Time;
    fn add(self, rhs: Millis) -> Time {
        self.saturating_add(rhs)
    }
}

impl Sub<Time> for Time {
    type Output = Millis;
    fn sub(self, rhs: Time) -> Millis {
        self.since(rhs)
    }
}

/// Identifier of a timer registered with [`Clock::schedule_at`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(u64);

/// Callback type run when a timer fires.
pub type TimerCallback = Box<dyn FnOnce() + Send + 'static>;

/// A source of time plus one-shot timers.
///
/// All blocking operations in the `mq`/`condmsg` stack compute deadlines via
/// `clock.now()` so that a [`SimClock`] can drive them deterministically.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Returns the current time on this clock.
    fn now(&self) -> Time;

    /// Blocks the calling thread for (at least) `d` of *this clock's* time.
    ///
    /// On a [`SimClock`] this parks the thread until another thread advances
    /// logical time past the deadline.
    fn sleep(&self, d: Millis);

    /// Schedules `f` to run once the clock reaches `at`.
    ///
    /// Timers scheduled in the past fire as soon as possible. Callbacks run
    /// on the timer thread ([`SystemClock`]) or on the thread calling
    /// [`SimClock::advance`]; they must not block for long.
    fn schedule_at(&self, at: Time, f: TimerCallback) -> TimerId;

    /// Cancels a pending timer. Returns `true` if the timer had not yet fired.
    fn cancel(&self, id: TimerId) -> bool;

    /// Replaces a pending timer: cancels `id` (if still pending) and arms
    /// `f` at `at`, returning the replacement timer's id.
    ///
    /// Cancel-then-schedule is not atomic with respect to a concurrently
    /// firing `id`; callers following the "move my deadline" pattern must
    /// re-check their own state inside the callback.
    fn reschedule(&self, id: TimerId, at: Time, f: TimerCallback) -> TimerId {
        self.cancel(id);
        self.schedule_at(at, f)
    }

    /// Whether this clock's time is decoupled from real time.
    ///
    /// Blocking primitives use this to decide between waiting out the exact
    /// real-time remainder (system clock) and polling in short slices while
    /// another thread advances logical time (sim clock).
    fn is_virtual(&self) -> bool {
        false
    }
}

/// A shared, dynamically dispatched clock handle.
pub type SharedClock = Arc<dyn Clock>;

struct TimerEntry {
    at: Time,
    seq: u64,
    id: TimerId,
    callback: Option<TimerCallback>,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

#[derive(Default)]
struct SchedulerState {
    heap: BinaryHeap<Reverse<TimerEntry>>,
    cancelled: std::collections::HashSet<TimerId>,
}

/// The shared deadline facility behind both clock implementations.
///
/// A min-heap of entries ordered by `(deadline, registration)` with lazy
/// cancellation: [`DeadlineScheduler::cancel`] tombstones the id and the
/// entry is discarded when it surfaces. [`SimClock`] drains due entries
/// synchronously during `advance`; [`SystemClock`]'s parked waiter thread
/// drains them as real time passes. The scheduler's lock is never held
/// while a callback runs, so callbacks may freely schedule, cancel, or
/// reschedule further timers.
#[derive(Default)]
pub struct DeadlineScheduler {
    state: Mutex<SchedulerState>,
    next_seq: AtomicU64,
}

impl fmt::Debug for DeadlineScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeadlineScheduler")
            .field("next_deadline", &self.next_deadline())
            .finish()
    }
}

impl DeadlineScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> DeadlineScheduler {
        DeadlineScheduler::default()
    }

    /// Registers `f` to run once the driving clock reaches `at`.
    pub fn schedule(&self, at: Time, f: TimerCallback) -> TimerId {
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        let id = TimerId(seq);
        self.state.lock().heap.push(Reverse(TimerEntry {
            at,
            seq,
            id,
            callback: Some(f),
        }));
        id
    }

    /// Cancels a pending entry. Returns `true` if it had not yet fired.
    pub fn cancel(&self, id: TimerId) -> bool {
        let mut state = self.state.lock();
        let pending = state
            .heap
            .iter()
            .any(|Reverse(e)| e.id == id && !state.cancelled.contains(&id));
        if pending {
            state.cancelled.insert(id);
        }
        pending
    }

    /// Removes and returns the earliest live entry due at or before `now`
    /// as `(deadline, callback)`. The caller runs the callback with no
    /// scheduler lock held.
    pub fn pop_due(&self, now: Time) -> Option<(Time, TimerCallback)> {
        let mut state = self.state.lock();
        while let Some(Reverse(top)) = state.heap.peek() {
            if top.at > now {
                return None;
            }
            let mut entry = state.heap.pop().expect("peeked entry present").0;
            if state.cancelled.remove(&entry.id) {
                continue;
            }
            let cb = entry.callback.take().expect("unfired entry has callback");
            return Some((entry.at, cb));
        }
        None
    }

    /// The earliest live deadline, if any entries are pending.
    pub fn next_deadline(&self) -> Option<Time> {
        let mut state = self.state.lock();
        while let Some(Reverse(top)) = state.heap.peek() {
            if state.cancelled.contains(&top.id) {
                let id = top.id;
                state.heap.pop();
                state.cancelled.remove(&id);
                continue;
            }
            return Some(top.at);
        }
        None
    }

    /// Number of live (uncancelled, unfired) entries; compacts tombstones
    /// so the count is exact.
    pub fn live_count(&self) -> usize {
        let mut state = self.state.lock();
        let mut live = 0;
        let entries: Vec<_> = std::mem::take(&mut state.heap).into_vec();
        let mut heap = BinaryHeap::new();
        for e in entries {
            if state.cancelled.contains(&e.0.id) {
                continue;
            }
            live += 1;
            heap.push(e);
        }
        state.cancelled.clear();
        state.heap = heap;
        live
    }
}

/// Deterministic logical clock for tests and reproducible experiments.
///
/// Time starts at [`Time::ZERO`] and only moves when [`SimClock::advance`]
/// (or [`SimClock::advance_to`]) is called. Due timers run synchronously, in
/// `(deadline, registration)` order, on the advancing thread, *before*
/// `advance` returns — so after `clock.advance(d)` every timeout up to
/// `now + d` has fully taken effect.
#[derive(Default)]
pub struct SimClock {
    now_ms: AtomicU64,
    scheduler: DeadlineScheduler,
    /// Notified whenever logical time moves, to wake `sleep`ers.
    tick: Condvar,
    tick_lock: Mutex<()>,
}

impl fmt::Debug for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimClock")
            .field("now", &self.now())
            .finish()
    }
}

impl SimClock {
    /// Creates a clock at logical time zero.
    pub fn new() -> Arc<SimClock> {
        Arc::new(SimClock::default())
    }

    /// Advances logical time by `d`, firing all timers due on the way.
    pub fn advance(&self, d: Millis) {
        self.advance_to(self.now() + d);
    }

    /// Advances logical time to `target`, firing all timers due on the way.
    ///
    /// Advancing to a time in the past is a no-op. Callbacks may schedule
    /// further timers; any that fall within the advanced range fire during
    /// the same call.
    pub fn advance_to(&self, target: Time) {
        while let Some((at, cb)) = self.scheduler.pop_due(target) {
            // Move time to the timer's deadline so callbacks observe a
            // monotone clock.
            self.bump_now(at);
            cb();
        }
        self.bump_now(target);
    }

    fn bump_now(&self, t: Time) {
        let mut cur = self.now_ms.load(Ordering::SeqCst);
        while t.0 > cur {
            match self
                .now_ms
                .compare_exchange(cur, t.0, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        let _guard = self.tick_lock.lock();
        self.tick.notify_all();
    }

    /// Number of timers currently pending (for test assertions).
    pub fn pending_timers(&self) -> usize {
        self.scheduler.live_count()
    }
}

impl Clock for SimClock {
    fn now(&self) -> Time {
        Time(self.now_ms.load(Ordering::SeqCst))
    }

    fn sleep(&self, d: Millis) {
        let deadline = self.now() + d;
        let mut guard = self.tick_lock.lock();
        while self.now() < deadline {
            // Bounded wait so a forgotten `advance` surfaces as slow tests
            // rather than a hard deadlock.
            self.tick.wait_for(&mut guard, Duration::from_millis(50));
        }
    }

    fn schedule_at(&self, at: Time, f: TimerCallback) -> TimerId {
        self.scheduler.schedule(at, f)
    }

    fn cancel(&self, id: TimerId) -> bool {
        self.scheduler.cancel(id)
    }

    fn is_virtual(&self) -> bool {
        true
    }
}

struct SystemTimerShared {
    scheduler: DeadlineScheduler,
    wake: Condvar,
    wake_lock: Mutex<()>,
    shutdown: AtomicBool,
}

/// Real-time clock backed by [`std::time::Instant`].
///
/// `now()` reports milliseconds elapsed since the clock was created, so
/// timestamps from different `SystemClock` instances are not comparable —
/// share one clock per process (as one would share a queue manager).
pub struct SystemClock {
    origin: std::time::Instant,
    shared: Arc<SystemTimerShared>,
    timer_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl fmt::Debug for SystemClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SystemClock")
            .field("now", &self.now())
            .finish()
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock {
            origin: std::time::Instant::now(),
            shared: Arc::new(SystemTimerShared {
                scheduler: DeadlineScheduler::new(),
                wake: Condvar::new(),
                wake_lock: Mutex::new(()),
                shutdown: AtomicBool::new(false),
            }),
            timer_thread: Mutex::new(None),
        }
    }
}

impl SystemClock {
    /// Creates a clock whose epoch is "now".
    pub fn new() -> Arc<SystemClock> {
        Arc::new(SystemClock::default())
    }

    /// Number of timers currently pending (for test assertions).
    pub fn pending_timers(&self) -> usize {
        self.shared.scheduler.live_count()
    }

    fn ensure_timer_thread(&self) {
        let mut guard = self.timer_thread.lock();
        if guard.is_some() {
            return;
        }
        let shared = self.shared.clone();
        let origin = self.origin;
        let handle = std::thread::Builder::new()
            .name("simtime-timer".into())
            .spawn(move || loop {
                // Hold the wake lock from the due-check through the wait so
                // a schedule_at between them cannot lose its notification
                // (the notifier serializes on the same lock).
                let mut guard = shared.wake_lock.lock();
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let now = Time(origin.elapsed().as_millis() as u64);
                if let Some((_, cb)) = shared.scheduler.pop_due(now) {
                    drop(guard);
                    cb();
                    continue;
                }
                let wait = match shared.scheduler.next_deadline() {
                    Some(deadline) => deadline.since(now).to_duration(),
                    None => Duration::from_millis(200),
                };
                shared.wake.wait_for(&mut guard, wait);
            })
            .expect("failed to spawn timer thread");
        *guard = Some(handle);
    }
}

impl Drop for SystemClock {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.wake_lock.lock();
            self.shared.wake.notify_all();
        }
        if let Some(handle) = self.timer_thread.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Time {
        Time(self.origin.elapsed().as_millis() as u64)
    }

    fn sleep(&self, d: Millis) {
        std::thread::sleep(d.to_duration());
    }

    fn schedule_at(&self, at: Time, f: TimerCallback) -> TimerId {
        self.ensure_timer_thread();
        let id = self.shared.scheduler.schedule(at, f);
        let _guard = self.shared.wake_lock.lock();
        self.shared.wake.notify_all();
        id
    }

    fn cancel(&self, id: TimerId) -> bool {
        self.shared.scheduler.cancel(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn counter() -> (Arc<AtomicUsize>, impl Fn() -> TimerCallback) {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = c.clone();
        (c, move || {
            let c = c2.clone();
            Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }) as TimerCallback
        })
    }

    #[test]
    fn sim_clock_starts_at_zero_and_advances() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), Time::ZERO);
        clock.advance(Millis(100));
        assert_eq!(clock.now(), Time(100));
        clock.advance_to(Time(50)); // past: no-op
        assert_eq!(clock.now(), Time(100));
    }

    #[test]
    fn sim_timers_fire_in_order_during_advance() {
        let clock = SimClock::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for (at, label) in [(30u64, "c"), (10, "a"), (20, "b")] {
            let order = order.clone();
            clock.schedule_at(Time(at), Box::new(move || order.lock().push(label)));
        }
        clock.advance(Millis(25));
        assert_eq!(*order.lock(), vec!["a", "b"]);
        clock.advance(Millis(25));
        assert_eq!(*order.lock(), vec!["a", "b", "c"]);
    }

    #[test]
    fn sim_timer_sees_monotone_now() {
        let clock = SimClock::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let c2 = clock.clone();
        let s2 = seen.clone();
        clock.schedule_at(Time(40), Box::new(move || s2.lock().push(c2.now())));
        clock.advance(Millis(100));
        assert_eq!(*seen.lock(), vec![Time(40)]);
        assert_eq!(clock.now(), Time(100));
    }

    #[test]
    fn sim_timer_callbacks_can_reschedule() {
        let clock = SimClock::new();
        let (count, mk) = counter();
        let c2 = clock.clone();
        let cb = mk();
        clock.schedule_at(
            Time(10),
            Box::new(move || {
                cb();
                c2.schedule_at(Time(20), mk());
            }),
        );
        clock.advance(Millis(30));
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn sim_cancel_prevents_firing() {
        let clock = SimClock::new();
        let (count, mk) = counter();
        let id = clock.schedule_at(Time(10), mk());
        assert!(clock.cancel(id));
        assert!(!clock.cancel(id), "double-cancel reports not pending");
        clock.advance(Millis(100));
        assert_eq!(count.load(Ordering::SeqCst), 0);
        assert_eq!(clock.pending_timers(), 0);
    }

    #[test]
    fn sim_reschedule_moves_deadline() {
        let clock = SimClock::new();
        let (count, mk) = counter();
        let id = clock.schedule_at(Time(10), mk());
        let id2 = clock.reschedule(id, Time(50), mk());
        assert_ne!(id, id2);
        assert_eq!(clock.pending_timers(), 1, "old timer replaced, not added");
        clock.advance(Millis(20));
        assert_eq!(count.load(Ordering::SeqCst), 0, "old deadline cancelled");
        clock.advance(Millis(40));
        assert_eq!(count.load(Ordering::SeqCst), 1);
        assert_eq!(clock.pending_timers(), 0);
    }

    #[test]
    fn sim_past_timer_fires_on_next_advance() {
        let clock = SimClock::new();
        clock.advance(Millis(100));
        let (count, mk) = counter();
        clock.schedule_at(Time(10), mk());
        clock.advance(Millis(0));
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn sim_sleep_wakes_when_advanced() {
        let clock = SimClock::new();
        let c2 = clock.clone();
        let t = std::thread::spawn(move || {
            c2.sleep(Millis(500));
            c2.now()
        });
        std::thread::sleep(Duration::from_millis(20));
        clock.advance(Millis(500));
        let woke_at = t.join().unwrap();
        assert!(woke_at >= Time(500));
    }

    #[test]
    fn scheduler_orders_cancels_and_counts() {
        let sched = DeadlineScheduler::new();
        let a = sched.schedule(Time(30), Box::new(|| {}));
        let _b = sched.schedule(Time(10), Box::new(|| {}));
        assert_eq!(sched.next_deadline(), Some(Time(10)));
        assert_eq!(sched.live_count(), 2);
        assert!(sched.cancel(a));
        assert!(!sched.cancel(a), "tombstoned entry no longer pending");
        assert_eq!(sched.live_count(), 1);
        assert!(sched.pop_due(Time(5)).is_none(), "nothing due yet");
        let (at, _cb) = sched.pop_due(Time(100)).expect("b is due");
        assert_eq!(at, Time(10));
        assert!(sched.pop_due(Time(100)).is_none(), "a was cancelled");
        assert_eq!(sched.next_deadline(), None);
        assert_eq!(sched.live_count(), 0);
    }

    #[test]
    fn system_clock_now_is_monotone() {
        let clock = SystemClock::new();
        let a = clock.now();
        std::thread::sleep(Duration::from_millis(5));
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn system_timer_fires() {
        let clock = SystemClock::new();
        let (count, mk) = counter();
        clock.schedule_at(clock.now() + Millis(10), mk());
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while count.load(Ordering::SeqCst) == 0 {
            assert!(std::time::Instant::now() < deadline, "timer never fired");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn system_timer_cancel() {
        let clock = SystemClock::new();
        let (count, mk) = counter();
        let id = clock.schedule_at(clock.now() + Millis(100), mk());
        assert!(clock.cancel(id));
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(count.load(Ordering::SeqCst), 0);
        assert_eq!(clock.pending_timers(), 0);
    }

    #[test]
    fn millis_and_time_arithmetic() {
        assert_eq!(Time(100) + Millis(50), Time(150));
        assert_eq!(Time(100) - Time(40), Millis(60));
        assert_eq!(Time(40) - Time(100), Millis(0), "saturating");
        assert_eq!(Millis(10) + Millis(5), Millis(15));
        assert_eq!(Millis(10).saturating_sub(Millis(15)), Millis::ZERO);
        assert_eq!(Millis(10) * 3, Millis(30));
        assert_eq!(Time::MAX.saturating_add(Millis(1)), Time::MAX);
        assert_eq!(format!("{}", Millis(5)), "5ms");
        assert_eq!(format!("{}", Time(5)), "t+5ms");
    }

    #[test]
    fn clock_trait_objects_are_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimClock>();
        assert_send_sync::<SystemClock>();
        assert_send_sync::<DeadlineScheduler>();
        let _clock: SharedClock = SimClock::new();
    }

    /// Property: however timers are registered, SimClock::advance fires
    /// them in (deadline, registration) order, and never before their time.
    #[test]
    fn timers_fire_in_deadline_order_property() {
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let clock = SimClock::new();
            let fired: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
            let mut deadlines: Vec<u64> = (0..12).map(|_| rng.gen_range(0..200)).collect();
            let mut order: Vec<usize> = (0..deadlines.len()).collect();
            order.shuffle(&mut rng);
            for &i in &order {
                let fired = fired.clone();
                let at = deadlines[i];
                let c = clock.clone();
                clock.schedule_at(
                    Time(at),
                    Box::new(move || {
                        assert!(c.now() >= Time(at), "fired early");
                        fired.lock().push((at, i));
                    }),
                );
            }
            // Advance in random increments to past every deadline.
            while clock.now() < Time(250) {
                clock.advance(Millis(rng.gen_range(1..60)));
            }
            let observed = fired.lock().clone();
            assert_eq!(observed.len(), deadlines.len(), "all fired");
            let mut sorted_deadlines: Vec<u64> = observed.iter().map(|(at, _)| *at).collect();
            deadlines.sort_unstable();
            sorted_deadlines.sort_unstable();
            assert_eq!(sorted_deadlines, deadlines);
            // Firing order is sorted by deadline (ties in any registration
            // order are acceptable for distinct seq — we assert non-
            // decreasing deadlines).
            assert!(
                observed.windows(2).all(|w| w[0].0 <= w[1].0),
                "non-decreasing deadlines: {observed:?}"
            );
        }
    }
}
