//! EJ — journal throughput: fsync-per-append vs. group commit.
//!
//! N writer threads append persistent `Put` records to the same on-disk
//! journal. The baseline (`FileJournal` with `sync_each = true`) pays one
//! `fdatasync` per append, so concurrent writers serialize on the disk
//! flush. The group-commit journal batches whatever accumulated while the
//! previous flush was in flight into a single write + fsync and parks the
//! waiting appenders on a condvar, so N writers amortize one fsync.
//!
//! Both paths keep the same contract: `append` returning means the record
//! is durable. The experiment measures appends/sec and per-append latency
//! (p50/p95) at 1, 8 and 64 writers, writes `BENCH_journal.json`, and —
//! as the regression gate wired into `check.sh --quick` — asserts that
//! group commit is at least 5x the sync-every baseline at 8 writers.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use cond_bench::{emit_metrics, header, percentile, row};
use mq::journal::{FileJournal, GroupCommitConfig, GroupCommitJournal, Journal, JournalRecord};
use mq::Message;

const WRITER_COUNTS: [usize; 3] = [1, 8, 64];

struct RunStats {
    appends_per_sec: f64,
    p50_us: u64,
    p95_us: u64,
    /// Number of fsyncs issued (group mode only; the baseline by
    /// construction issues exactly one per append).
    fsyncs: Option<u64>,
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("condmsg-journal-{}-{name}.log", std::process::id()))
}

/// Drive `writers` threads through `per_writer` durable appends each and
/// return throughput + latency percentiles. The clock starts when every
/// writer has reached the barrier, so spawn overhead is excluded.
fn run(journal: Arc<dyn Journal>, writers: usize, per_writer: usize) -> (f64, Vec<u64>) {
    let barrier = Arc::new(Barrier::new(writers + 1));
    let handles: Vec<_> = (0..writers)
        .map(|w| {
            let journal = Arc::clone(&journal);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut lats = Vec::with_capacity(per_writer);
                barrier.wait();
                for i in 0..per_writer {
                    let record = JournalRecord::Put {
                        queue: "Q.BENCH".to_owned(),
                        message: Message::text(format!("w{w}-m{i}")).persistent(true).build(),
                    };
                    let t = Instant::now();
                    journal.append(&record).unwrap();
                    lats.push(t.elapsed().as_micros() as u64);
                }
                lats
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    let mut lats = Vec::with_capacity(writers * per_writer);
    for handle in handles {
        lats.extend(handle.join().unwrap());
    }
    let wall = start.elapsed().as_secs_f64();
    ((writers * per_writer) as f64 / wall, lats)
}

fn run_sync_every(writers: usize, per_writer: usize) -> RunStats {
    let path = tmp(&format!("sync-{writers}"));
    let journal = FileJournal::open(&path, true).unwrap();
    let (appends_per_sec, lats) = run(journal, writers, per_writer);
    verify_and_remove(&path, writers * per_writer);
    RunStats {
        appends_per_sec,
        p50_us: percentile(&lats, 0.50),
        p95_us: percentile(&lats, 0.95),
        fsyncs: None,
    }
}

fn run_group_commit(writers: usize, per_writer: usize) -> RunStats {
    let path = tmp(&format!("group-{writers}"));
    let journal = GroupCommitJournal::open_file(&path, GroupCommitConfig::default()).unwrap();
    let metrics = journal.metrics().clone();
    let (appends_per_sec, lats) = run(journal, writers, per_writer);
    let appends = (writers * per_writer) as u64;
    let fsyncs = metrics.fsyncs.get();
    assert_eq!(metrics.appends.get(), appends, "every append must be counted");
    assert!(fsyncs <= appends, "group commit never syncs more than once per append");
    verify_and_remove(&path, writers * per_writer);
    RunStats {
        appends_per_sec,
        p50_us: percentile(&lats, 0.50),
        p95_us: percentile(&lats, 0.95),
        fsyncs: Some(fsyncs),
    }
}

/// Reopen the journal cold and check that every acked append survived.
fn verify_and_remove(path: &std::path::Path, expected: usize) {
    let reopened = FileJournal::open(path, false).unwrap();
    let replayed = reopened.replay_collect().unwrap();
    assert_eq!(replayed.len(), expected, "durable journal must hold every acked append");
    drop(reopened);
    let _ = std::fs::remove_file(path);
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let per_writer = if quick { 48 } else { 192 };

    println!(
        "# EJ — journal group commit ({} appends/writer{})\n",
        per_writer,
        if quick { ", --quick" } else { "" }
    );
    header(&["writers", "mode", "appends/s", "p50 us", "p95 us", "fsyncs"]);

    let mut results: Vec<(usize, RunStats, RunStats)> = Vec::new();
    for &writers in &WRITER_COUNTS {
        let sync = run_sync_every(writers, per_writer);
        let group = run_group_commit(writers, per_writer);
        for (mode, stats) in [("fsync-per-append", &sync), ("group-commit", &group)] {
            row(&[
                writers.to_string(),
                mode.to_owned(),
                format!("{:.0}", stats.appends_per_sec),
                stats.p50_us.to_string(),
                stats.p95_us.to_string(),
                stats.fsyncs.map_or_else(|| "per append".to_owned(), |f| f.to_string()),
            ]);
        }
        results.push((writers, sync, group));
    }

    println!();
    header(&["writers", "speedup"]);
    let mut speedup_at_8 = 0.0;
    for (writers, sync, group) in &results {
        let speedup = group.appends_per_sec / sync.appends_per_sec;
        if *writers == 8 {
            speedup_at_8 = speedup;
        }
        row(&[writers.to_string(), format!("{speedup:.1}x")]);
    }

    let runs_json: Vec<String> = results
        .iter()
        .map(|(writers, sync, group)| {
            format!(
                concat!(
                    "    {{\"writers\": {}, ",
                    "\"sync_every\": {{\"appends_per_sec\": {:.1}, \"p50_us\": {}, \"p95_us\": {}}}, ",
                    "\"group_commit\": {{\"appends_per_sec\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \"fsyncs\": {}}}, ",
                    "\"speedup\": {:.2}}}"
                ),
                writers,
                sync.appends_per_sec,
                sync.p50_us,
                sync.p95_us,
                group.appends_per_sec,
                group.p50_us,
                group.p95_us,
                group.fsyncs.unwrap_or(0),
                group.appends_per_sec / sync.appends_per_sec,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"EJ journal group commit\",\n  \"quick\": {},\n  \"per_writer_appends\": {},\n  \"runs\": [\n{}\n  ],\n  \"gate\": {{\"writers\": 8, \"min_speedup\": 5.0, \"measured_speedup\": {:.2}}}\n}}\n",
        quick,
        per_writer,
        runs_json.join(",\n"),
        speedup_at_8,
    );
    std::fs::write("BENCH_journal.json", json).unwrap();
    println!("\nwrote BENCH_journal.json");

    // Regression gate: group commit must amortize fsyncs well enough to beat
    // the sync-every baseline by 5x once 8 writers contend for the disk.
    assert!(
        speedup_at_8 >= 5.0,
        "group commit speedup at 8 writers regressed: {speedup_at_8:.2}x < 5.0x"
    );

    emit_metrics();
}
