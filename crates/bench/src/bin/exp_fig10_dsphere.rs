//! E8 — paper Fig. 10: Dependency-Sphere behaviour and cost.
//!
//! Part 1 (correctness matrix, deterministic): the sphere's coupling rules
//! from §3.1/§3.2 — message failure fails the sphere and rolls back
//! resources; a resource veto fails the sphere and compensates *all*
//! messages; a timeout fails pending members; success commits everything.
//!
//! Part 2 (cost): commit_DS latency as a function of the number of member
//! messages, and abort_DS for comparison.

use std::time::Instant;

use cond_bench::{emit_metrics, header, queue_names, row, sim_world, system_world, workload};
use condmsg::ConditionalReceiver;
use dsphere::{DSphereService, KvStore, ProbeResource, SphereOutcome};
use mq::Wait;
use simtime::{Millis, SimClock};

fn correctness() -> Vec<(String, bool)> {
    let mut results = Vec::new();
    let mut check = |name: &str, ok: bool| results.push((name.to_owned(), ok));

    // Success path.
    {
        let clock = SimClock::new();
        let world = sim_world(clock.clone(), &queue_names(2));
        let service = DSphereService::new(world.messenger.clone());
        let kv = KvStore::new("db");
        let mut sphere = service.begin();
        sphere.enlist(kv.clone()).unwrap();
        kv.put(sphere.xid(), "k", "v");
        sphere
            .send_message("a", &workload::fan_out(1, Millis(100)))
            .unwrap();
        clock.advance(Millis(5));
        let mut r = ConditionalReceiver::new(world.qmgr.clone()).unwrap();
        r.read_message("Q.D0", Wait::NoWait).unwrap().unwrap();
        let outcome = sphere.try_commit().unwrap().unwrap();
        check("success: sphere commits", outcome.is_committed());
        check(
            "success: resource committed",
            kv.get("k").as_deref() == Some("v"),
        );
    }

    // Message failure → rollback + compensation.
    {
        let clock = SimClock::new();
        let world = sim_world(clock.clone(), &queue_names(2));
        let service = DSphereService::new(world.messenger.clone());
        let kv = KvStore::new("db");
        let mut sphere = service.begin();
        sphere.enlist(kv.clone()).unwrap();
        kv.put(sphere.xid(), "k", "v");
        sphere
            .send_message("a", &workload::fan_out(2, Millis(50)))
            .unwrap();
        clock.advance(Millis(5));
        let mut r = ConditionalReceiver::new(world.qmgr.clone()).unwrap();
        r.read_message("Q.D0", Wait::NoWait).unwrap().unwrap(); // Q.D1 missed
        clock.advance(Millis(100));
        let outcome = sphere.try_commit().unwrap().unwrap();
        check("msg failure: sphere aborts", !outcome.is_committed());
        check("msg failure: resource rolled back", kv.get("k").is_none());
        let comp = r.read_message("Q.D0", Wait::NoWait).unwrap();
        check(
            "msg failure: consumed destination compensated",
            comp.map(|m| m.kind()) == Some(condmsg::MessageKind::Compensation),
        );
    }

    // Resource veto → messages compensated despite individual success.
    {
        let clock = SimClock::new();
        let world = sim_world(clock.clone(), &queue_names(1));
        let service = DSphereService::new(world.messenger.clone());
        let veto = ProbeResource::vetoing("veto", "no");
        let mut sphere = service.begin();
        sphere.enlist(veto.clone()).unwrap();
        sphere
            .send_message("a", &workload::fan_out(1, Millis(100)))
            .unwrap();
        clock.advance(Millis(5));
        let mut r = ConditionalReceiver::new(world.qmgr.clone()).unwrap();
        r.read_message("Q.D0", Wait::NoWait).unwrap().unwrap();
        let outcome = sphere.try_commit().unwrap().unwrap();
        check("veto: sphere aborts", !outcome.is_committed());
        check("veto: resource rolled back", veto.rolled_back() == 1);
        let comp = r.read_message("Q.D0", Wait::NoWait).unwrap();
        check(
            "veto: successful message still compensated (backward dependency)",
            comp.map(|m| m.kind()) == Some(condmsg::MessageKind::Compensation),
        );
    }

    // Sphere timeout.
    {
        let clock = SimClock::new();
        let world = sim_world(clock.clone(), &queue_names(1));
        let service = DSphereService::new(world.messenger.clone());
        let mut sphere = service.begin_with_timeout(Millis(200));
        sphere
            .send_message("a", &workload::fan_out(1, Millis(10_000)))
            .unwrap();
        let undecided = sphere.try_commit().unwrap();
        clock.advance(Millis(300));
        let outcome = sphere.try_commit().unwrap().unwrap();
        check("timeout: undecided before deadline", undecided.is_none());
        check(
            "timeout: sphere aborts at deadline",
            matches!(outcome, SphereOutcome::Aborted { ref reason } if reason.contains("timeout")),
        );
    }

    results
}

fn cost(k: usize, commit: bool) -> f64 {
    const ITERS: usize = 300;
    let world = system_world(&queue_names(1));
    let service = DSphereService::new(world.messenger.clone());
    let kv = KvStore::new("db");
    let condition = workload::fan_out(1, Millis(600_000));
    let mut receiver = ConditionalReceiver::new(world.qmgr.clone()).unwrap();
    let start = Instant::now();
    for _ in 0..ITERS {
        let mut sphere = service.begin();
        sphere.enlist(kv.clone()).unwrap();
        kv.put(sphere.xid(), "k", "v");
        for _ in 0..k {
            sphere.send_message("member", &condition).unwrap();
        }
        if commit {
            for _ in 0..k {
                receiver
                    .read_message("Q.D0", Wait::NoWait)
                    .unwrap()
                    .unwrap();
            }
            assert!(sphere.try_commit().unwrap().unwrap().is_committed());
        } else {
            sphere.abort("bench").unwrap();
            while receiver
                .read_message("Q.D0", Wait::NoWait)
                .unwrap()
                .is_some()
            {}
        }
    }
    start.elapsed().as_secs_f64() * 1e6 / ITERS as f64
}

fn main() {
    println!("# E8 — Fig. 10: Dependency-Spheres\n");
    println!("## Coupling-rule matrix\n");
    let results = correctness();
    header(&["check", "result"]);
    let mut all = true;
    for (name, ok) in &results {
        all &= ok;
        row(&[name.clone(), if *ok { "PASS" } else { "FAIL" }.into()]);
    }
    assert!(all);

    println!("\n## commit_DS / abort_DS cost vs member count\n");
    header(&["member messages", "commit_DS (µs)", "abort_DS (µs)"]);
    for k in [1usize, 2, 4, 8] {
        let commit = cost(k, true);
        let abort = cost(k, false);
        row(&[k.to_string(), format!("{commit:.0}"), format!("{abort:.0}")]);
    }
    println!();
    println!(
        "expected shape: both grow linearly in the member count (per-member evaluation, \
         deferred-action release and compensation traffic dominate)."
    );
    emit_metrics();
}
