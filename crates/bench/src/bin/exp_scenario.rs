//! E10 — declarative scenario engine: runs every `.toml` scenario under
//! `scenarios/` through `cond-scenario`, reporting sends/s, verdict
//! latency percentiles (scenario-clock ms), and the oracle verdict per
//! scenario. Every oracle must pass. Results land in
//! `BENCH_scenario.json`.
//!
//! `--quick` selects each scenario's reduced actor populations
//! (`quick_count`) so the binary can run inside the repository gate
//! (`check.sh`); the full run drives the IoT fleet scenario at a million
//! pending conditional messages.

use std::path::PathBuf;
use std::time::Instant;

use cond_bench::{header, percentile, row};
use cond_scenario::{exec, RunReport, ScenarioSpec};

/// The flagship scenarios, in run order (cheapest first).
const SCENARIOS: &[&str] = &[
    "fig8_relay_crash.toml",
    "msmq_branches.toml",
    "iot_fleet.toml",
];

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!(
        "# E10 — declarative scenarios ({} mode)\n",
        if quick { "quick" } else { "full" }
    );
    header(&[
        "scenario",
        "clock",
        "sent",
        "success",
        "failure",
        "spheres c/a",
        "wall (s)",
        "sends/s",
        "verdict p50 (ms)",
        "verdict p95 (ms)",
        "oracle",
    ]);

    let mut reports: Vec<(String, f64, RunReport)> = Vec::new();
    for file in SCENARIOS {
        let path = scenarios_dir().join(file);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let spec = ScenarioSpec::from_toml_str(&text)
            .unwrap_or_else(|e| panic!("parse {file}: {e}"));
        let clock = spec.clock;
        let start = Instant::now();
        let report =
            exec::run(&spec, quick).unwrap_or_else(|e| panic!("run {file}: {e}"));
        let wall = start.elapsed().as_secs_f64();
        let rate = report.sent as f64 / wall.max(1e-9);
        row(&[
            report.name.clone(),
            format!("{clock:?}").to_lowercase(),
            report.sent.to_string(),
            report.success.to_string(),
            report.failure.to_string(),
            format!("{}/{}", report.spheres_committed, report.spheres_aborted),
            format!("{wall:.2}"),
            format!("{rate:.0}"),
            percentile(&report.verdict_latency_ms, 0.50).to_string(),
            percentile(&report.verdict_latency_ms, 0.95).to_string(),
            if report.oracle.passed() {
                "pass".to_owned()
            } else {
                format!("FAIL ({} checks)", report.oracle.failed_count())
            },
        ]);
        if !report.oracle.passed() {
            eprintln!("\noracle report for {file}:\n{}", report.oracle);
        }
        reports.push(((*file).to_owned(), wall, report));
    }

    let mut json = String::from("{\n  \"experiment\": \"scenario\",\n  \"scenarios\": [\n");
    for (k, (file, wall, r)) in reports.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"file\": \"{file}\", \"name\": \"{}\", \"quick\": {}, \
             \"sent\": {}, \"send_errors\": {}, \"success\": {}, \"failure\": {}, \
             \"spheres_committed\": {}, \"spheres_aborted\": {}, \"comps_swept\": {}, \
             \"wall_s\": {wall:.3}, \"sends_per_s\": {:.1}, \
             \"verdict_p50_ms\": {}, \"verdict_p95_ms\": {}, \
             \"oracle_checks\": {}, \"oracle_failed\": {}, \"oracle_passed\": {}}}{}\n",
            r.name,
            r.quick,
            r.sent,
            r.send_errors,
            r.success,
            r.failure,
            r.spheres_committed,
            r.spheres_aborted,
            r.comps_swept,
            r.sent as f64 / wall.max(1e-9),
            percentile(&r.verdict_latency_ms, 0.50),
            percentile(&r.verdict_latency_ms, 0.95),
            r.oracle.checks.len(),
            r.oracle.failed_count(),
            r.oracle.passed(),
            if k + 1 < reports.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_scenario.json", &json).expect("write BENCH_scenario.json");
    println!("\nwrote BENCH_scenario.json");

    let failed: Vec<&str> = reports
        .iter()
        .filter(|(_, _, r)| !r.oracle.passed())
        .map(|(f, _, _)| f.as_str())
        .collect();
    assert!(
        failed.is_empty(),
        "scenario oracles failed: {failed:?} — every declared message must \
         reach exactly one outcome"
    );
}
