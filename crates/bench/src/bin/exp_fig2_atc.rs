//! E2 — paper Fig. 2/Fig. 5 (Example 2): the shared-queue air-traffic
//! scenario.
//!
//! Sweeps the number of competing controllers and the flight arrival rate,
//! measuring pick-up latency (send → read timestamp, from the
//! acknowledgments) and the rate of conditional-message timeouts. Runs in
//! real time with a system clock (the pick-up window is the paper's 20 s
//! scaled 200× down to 100 ms).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cond_bench::{emit_metrics, header, mean, percentile, row, system_world};
use condmsg::{Condition, Destination};
use condmsg::{ConditionalReceiver, MessageKind, MessageOutcome, SendOptions};
use mq::Wait;
use parking_lot::Mutex;
use simtime::Millis;

const PICKUP_WINDOW: Millis = Millis(100);
const FLIGHTS: usize = 40;

struct RunResult {
    timeouts: usize,
    mean_pickup_ms: f64,
    p95_pickup_ms: u64,
}

fn run(controllers: usize, interarrival_ms: u64, service_ms: u64) -> RunResult {
    let world = system_world(&["Q.CENTRAL".to_string()]);
    let _daemon = world.messenger.spawn_daemon(Duration::from_millis(1)).expect("spawn daemon");
    let stop = Arc::new(AtomicBool::new(false));
    let pickup_delays = Arc::new(Mutex::new(Vec::<u64>::new()));

    let threads: Vec<_> = (0..controllers)
        .map(|_| {
            let qmgr = world.qmgr.clone();
            let stop = stop.clone();
            let delays = pickup_delays.clone();
            std::thread::spawn(move || {
                let mut receiver = ConditionalReceiver::new(qmgr.clone()).unwrap();
                while !stop.load(Ordering::SeqCst) {
                    if let Ok(Some(m)) =
                        receiver.read_message("Q.CENTRAL", Wait::Timeout(Millis(10)))
                    {
                        if m.kind() == MessageKind::Original {
                            if let Some(sent) = m.message().put_time() {
                                let now = qmgr.clock().now();
                                delays.lock().push((now - sent).as_u64());
                            }
                            // Controller "handles" the flight.
                            std::thread::sleep(Duration::from_millis(service_ms));
                        }
                    }
                }
            })
        })
        .collect();

    let condition: Condition = Destination::queue("QM1", "Q.CENTRAL")
        .pickup_within(PICKUP_WINDOW)
        .into();
    let mut ids = Vec::new();
    for i in 0..FLIGHTS {
        let id = world
            .messenger
            .send_with(
                format!("flight {i}"),
                None,
                &condition,
                SendOptions {
                    evaluation_timeout: Some(PICKUP_WINDOW + Millis(10)),
                    ..SendOptions::default()
                },
            )
            .unwrap();
        ids.push(id);
        std::thread::sleep(Duration::from_millis(interarrival_ms));
    }

    let mut timeouts = 0;
    for id in ids {
        let outcome = world
            .messenger
            .take_outcome(id, Wait::Timeout(Millis(5_000)))
            .unwrap()
            .expect("decided");
        if outcome.outcome == MessageOutcome::Failure {
            timeouts += 1;
        }
    }
    stop.store(true, Ordering::SeqCst);
    for t in threads {
        let _ = t.join();
    }

    let delays = pickup_delays.lock().clone();
    RunResult {
        timeouts,
        mean_pickup_ms: mean(&delays),
        p95_pickup_ms: percentile(&delays, 0.95),
    }
}

fn main() {
    println!("# E2 — Example 2 (Fig. 2/5): shared-queue pick-up under load\n");
    println!(
        "{FLIGHTS} flights per run; pick-up window {PICKUP_WINDOW}; controller service time 20 ms\n"
    );
    header(&[
        "controllers",
        "interarrival (ms)",
        "mean pick-up (ms)",
        "p95 pick-up (ms)",
        "timeouts",
        "timeout %",
    ]);
    for controllers in [1usize, 2, 4, 8] {
        for interarrival in [5u64, 15] {
            let result = run(controllers, interarrival, 20);
            row(&[
                controllers.to_string(),
                interarrival.to_string(),
                format!("{:.1}", result.mean_pickup_ms),
                result.p95_pickup_ms.to_string(),
                result.timeouts.to_string(),
                format!("{:.0}%", 100.0 * result.timeouts as f64 / FLIGHTS as f64),
            ]);
        }
    }
    println!();
    println!(
        "expected shape: more controllers (or slower arrivals) → lower pick-up latency and \
         fewer timeouts; a single overloaded controller saturates and flights start missing \
         the window."
    );
    emit_metrics();
}
