//! E4 — paper Fig. 6: the two message levels and the cost of the
//! conditional-messaging indirection.
//!
//! For N destinations, measures wall-clock per operation for raw puts vs a
//! conditional send, and counts the standard messages the middleware
//! generates per conditional message (originals + parked compensations +
//! the send-log record — the paper's point that "if no conditional
//! messaging system were available, the application would have to create
//! similar messages").

use std::time::Instant;

use cond_bench::{emit_metrics, header, queue_names, row, system_world, workload};
use mq::Message;
use simtime::Millis;

const ITERS: usize = 2_000;
const PAYLOAD: &str = "group meeting notification payload";

fn main() {
    println!("# E4 — Fig. 6: send-path overhead (conditional vs raw JMS-style put)\n");
    header(&[
        "destinations",
        "raw put (µs/send)",
        "conditional (µs/send)",
        "factor",
        "standard msgs per conditional msg",
    ]);
    for n in [1usize, 2, 4, 8, 16] {
        // Raw path.
        let world = system_world(&queue_names(n));
        let start = Instant::now();
        for _ in 0..ITERS {
            for i in 0..n {
                world
                    .qmgr
                    .put(
                        &format!("Q.D{i}"),
                        Message::text(PAYLOAD).persistent(true).build(),
                    )
                    .unwrap();
            }
        }
        let raw = start.elapsed().as_secs_f64() * 1e6 / ITERS as f64;

        // Conditional path.
        let world = system_world(&queue_names(n));
        let condition = workload::fan_out(n, Millis(600_000));
        let slog_before = world
            .qmgr
            .queue("DS.SLOG.Q")
            .unwrap()
            .stats()
            .enqueued
            .get();
        let comp_before = world
            .qmgr
            .queue("DS.COMP.Q")
            .unwrap()
            .stats()
            .enqueued
            .get();
        let start = Instant::now();
        for _ in 0..ITERS {
            world.messenger.send_message(PAYLOAD, &condition).unwrap();
        }
        let cond = start.elapsed().as_secs_f64() * 1e6 / ITERS as f64;
        let slog = world
            .qmgr
            .queue("DS.SLOG.Q")
            .unwrap()
            .stats()
            .enqueued
            .get()
            - slog_before;
        let comp = world
            .qmgr
            .queue("DS.COMP.Q")
            .unwrap()
            .stats()
            .enqueued
            .get()
            - comp_before;
        let generated = n as f64 + (slog as f64 + comp as f64) / ITERS as f64;

        row(&[
            n.to_string(),
            format!("{raw:.1}"),
            format!("{cond:.1}"),
            format!("{:.2}x", cond / raw),
            format!(
                "{generated:.0} ({n} originals + {} comp + {} log)",
                comp / ITERS as u64,
                slog / ITERS as u64
            ),
        ]);
    }
    println!();
    println!(
        "expected shape: the conditional send costs a small constant factor over raw puts \
         (≈2 extra internal messages per destination-set: one compensation per destination \
         plus one send-log record), and the factor shrinks as N grows because the log \
         record amortizes."
    );
    emit_metrics();
}
