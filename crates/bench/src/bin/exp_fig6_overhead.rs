//! E4 — paper Fig. 6: the two message levels and the cost of the
//! conditional-messaging indirection.
//!
//! Part A (the paper's figure): for N destinations, wall-clock per
//! operation for raw puts vs a conditional send, and the standard messages
//! the middleware generates per conditional message (originals + parked
//! compensations + the send-log record — the paper's point that "if no
//! conditional messaging system were available, the application would have
//! to create similar messages").
//!
//! Part B (evaluation-core comparison): the polled single-ack pump
//! ("before") against the event-driven batched core ("after") — p50/p95
//! verdict latency, acknowledgment throughput, and the number of ack-drain
//! transactions (one journal `TxCommit` each) for a fixed ack backlog.
//! Results are written to `BENCH_fig6.json`.
//!
//! `--quick` shrinks the iteration counts so the binary can run inside the
//! repository gate (`check.sh`).

use std::time::{Duration, Instant};

use cond_bench::{
    emit_metrics, header, percentile, queue_names, row, shared_obs, sim_world_cfg,
    system_world, system_world_cfg, workload,
};
use condmsg::{CondConfig, ConditionalReceiver};
use mq::{Message, Wait};
use simtime::{Millis, SimClock};

const PAYLOAD: &str = "group meeting notification payload";
/// Poll interval of the "before" evaluation daemon.
const POLL: Duration = Duration::from_millis(2);

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters: usize = if quick { 200 } else { 2_000 };
    let latency_msgs: usize = if quick { 64 } else { 512 };
    let drain_msgs: usize = if quick { 128 } else { 512 };

    println!("# E4 — Fig. 6: send-path overhead (conditional vs raw JMS-style put)\n");
    header(&[
        "destinations",
        "raw put (µs/send)",
        "conditional (µs/send)",
        "factor",
        "standard msgs per conditional msg",
    ]);
    for n in [1usize, 2, 4, 8, 16] {
        // Raw path.
        let world = system_world(&queue_names(n));
        let start = Instant::now();
        for _ in 0..iters {
            for i in 0..n {
                world
                    .qmgr
                    .put(
                        &format!("Q.D{i}"),
                        Message::text(PAYLOAD).persistent(true).build(),
                    )
                    .unwrap();
            }
        }
        let raw = start.elapsed().as_secs_f64() * 1e6 / iters as f64;

        // Conditional path.
        let world = system_world(&queue_names(n));
        let condition = workload::fan_out(n, Millis(600_000));
        let slog_before = world
            .qmgr
            .queue("DS.SLOG.Q")
            .unwrap()
            .stats()
            .enqueued
            .get();
        let comp_before = world
            .qmgr
            .queue("DS.COMP.Q")
            .unwrap()
            .stats()
            .enqueued
            .get();
        let start = Instant::now();
        for _ in 0..iters {
            world.messenger.send_message(PAYLOAD, &condition).unwrap();
        }
        let cond = start.elapsed().as_secs_f64() * 1e6 / iters as f64;
        let slog = world
            .qmgr
            .queue("DS.SLOG.Q")
            .unwrap()
            .stats()
            .enqueued
            .get()
            - slog_before;
        let comp = world
            .qmgr
            .queue("DS.COMP.Q")
            .unwrap()
            .stats()
            .enqueued
            .get()
            - comp_before;
        let generated = n as f64 + (slog as f64 + comp as f64) / iters as f64;

        row(&[
            n.to_string(),
            format!("{raw:.1}"),
            format!("{cond:.1}"),
            format!("{:.2}x", cond / raw),
            format!(
                "{generated:.0} ({n} originals + {} comp + {} log)",
                comp / iters as u64,
                slog / iters as u64
            ),
        ]);
    }
    println!();
    println!(
        "expected shape: the conditional send costs a small constant factor over raw puts \
         (≈2 extra internal messages per destination-set: one compensation per destination \
         plus one send-log record), and the factor shrinks as N grows because the log \
         record amortizes."
    );

    // ── Part B: polled pump vs event-driven core ─────────────────────────
    println!();
    println!("## evaluation core: polled pump (before) vs event-driven (after)\n");
    let (before_lat, before_rate) = verdict_latency_run(false, latency_msgs);
    let (after_lat, after_rate) = verdict_latency_run(true, latency_msgs);
    let batch = CondConfig::default().ack_batch;
    let (before_txs, acks) = drain_tx_run(1, drain_msgs);
    let (after_txs, _) = drain_tx_run(batch, drain_msgs);
    let reduction = before_txs as f64 / after_txs as f64;

    header(&[
        "core",
        "verdict p50 (µs)",
        "verdict p95 (µs)",
        "acks/sec",
        &format!("drain txs for {acks} acks"),
    ]);
    row(&[
        format!("polled ({}ms pump)", POLL.as_millis()),
        percentile(&before_lat, 0.50).to_string(),
        percentile(&before_lat, 0.95).to_string(),
        format!("{before_rate:.0}"),
        before_txs.to_string(),
    ]);
    row(&[
        format!("event-driven (batch {batch})"),
        percentile(&after_lat, 0.50).to_string(),
        percentile(&after_lat, 0.95).to_string(),
        format!("{after_rate:.0}"),
        after_txs.to_string(),
    ]);
    println!();
    println!(
        "ack-drain transactions reduced {reduction:.1}x (batch factor {batch}); each drain \
         transaction is one grouped journal TxCommit instead of one per acknowledgment."
    );

    let json = format!(
        "{{\n  \"experiment\": \"fig6_overhead\",\n  \"quick\": {quick},\n  \
         \"verdict_latency_us\": {{\n    \
         \"polled\": {{ \"p50\": {}, \"p95\": {} }},\n    \
         \"event_driven\": {{ \"p50\": {}, \"p95\": {} }}\n  }},\n  \
         \"acks_per_sec\": {{ \"polled\": {before_rate:.1}, \"event_driven\": {after_rate:.1} }},\n  \
         \"ack_drain_txs\": {{ \"acks\": {acks}, \"before_batch_1\": {before_txs}, \
         \"after_batch_{batch}\": {after_txs}, \"reduction_factor\": {reduction:.1} }}\n}}\n",
        percentile(&before_lat, 0.50),
        percentile(&before_lat, 0.95),
        percentile(&after_lat, 0.50),
        percentile(&after_lat, 0.95),
    );
    std::fs::write("BENCH_fig6.json", &json).expect("write BENCH_fig6.json");
    println!("\nwrote BENCH_fig6.json");

    assert!(
        reduction >= batch as f64,
        "ack-drain transactions must shrink by at least the batch factor \
         ({before_txs} -> {after_txs}, batch {batch})"
    );

    emit_metrics();
}

/// Sends `msgs` single-destination conditional messages one at a time; a
/// consumer picks each up immediately and the run measures the wall-clock
/// from condition satisfaction (the read) to the outcome notification.
/// "Before" runs the polled daemon; "after" runs the event-driven core
/// with no daemon at all.
fn verdict_latency_run(event_driven: bool, msgs: usize) -> (Vec<u64>, f64) {
    let config = CondConfig {
        event_driven,
        ..CondConfig::default()
    };
    let world = system_world_cfg(&queue_names(1), config);
    let _daemon = (!event_driven).then(|| world.messenger.spawn_daemon(POLL).unwrap());
    let condition = workload::fan_out(1, Millis(600_000));
    let mut receiver = ConditionalReceiver::new(world.qmgr.clone()).unwrap();
    let mut latencies = Vec::with_capacity(msgs);
    let phase = Instant::now();
    for _ in 0..msgs {
        let id = world.messenger.send_message(PAYLOAD, &condition).unwrap();
        receiver
            .read_message("Q.D0", Wait::NoWait)
            .unwrap()
            .expect("original delivered");
        let satisfied = Instant::now();
        world
            .messenger
            .take_outcome(id, Wait::Timeout(Millis(10_000)))
            .unwrap()
            .expect("verdict reached");
        latencies.push(satisfied.elapsed().as_micros() as u64);
    }
    let rate = msgs as f64 / phase.elapsed().as_secs_f64();
    (latencies, rate)
}

/// Builds an ack backlog of `msgs` acknowledgments (two-destination
/// condition, only one destination reads, so draining decides nothing and
/// the transaction delta is purely ack draining), then counts the
/// committed transactions one pump needs to drain it.
fn drain_tx_run(ack_batch: usize, msgs: usize) -> (u64, u64) {
    let config = CondConfig {
        ack_batch,
        ..CondConfig::default()
    };
    let clock = SimClock::new();
    let world = sim_world_cfg(clock, &queue_names(2), config);
    let condition = workload::fan_out(2, Millis(600_000));
    for _ in 0..msgs {
        world.messenger.send_message(PAYLOAD, &condition).unwrap();
    }
    let mut receiver = ConditionalReceiver::new(world.qmgr.clone()).unwrap();
    for _ in 0..msgs {
        receiver
            .read_message("Q.D0", Wait::NoWait)
            .unwrap()
            .expect("original delivered");
    }
    let acks = world.qmgr.queue("DS.ACK.Q").unwrap().depth() as u64;
    let before = shared_obs().snapshot().counter("mq.tx.committed");
    world.messenger.pump().unwrap();
    let txs = shared_obs().snapshot().counter("mq.tx.committed") - before;
    (txs, acks)
}
