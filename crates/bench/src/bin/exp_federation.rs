//! EF — relay federation: multi-hop chains over loopback TCP.
//!
//! Two measurements per chain length (1, 2 and 4 channel hops between
//! the sending and the destination manager, i.e. 0, 1 and 3 relays):
//!
//! * **Store-and-forward throughput** — N plain messages put at the head
//!   of the chain, wall clock until all land on the tail's queue;
//!   reported as msgs/sec. Each extra hop adds a custody handoff (relay
//!   decision, journalable record, another socket round trip), so the
//!   table prices what federation costs over a direct channel.
//! * **End-to-end verdict latency** — the full Fig. 8 conditional
//!   protocol across the chain: original out over `hops` sockets, the
//!   pick-up read at the tail, the read-ack relayed all the way back and
//!   the condition evaluated at the head. Reported as p50/p95 of
//!   send→verdict wall time.
//!
//! The run finishes with the **Fig. 8 crash proof**: a 3-manager chain
//! whose middle relay is crashed while holding custody of every
//! in-flight message, then rebuilt from its journal. The binary asserts
//! every message reaches exactly one of success or
//! compensation+annihilation — nothing lost, nothing doubled, nothing
//! dead-lettered.
//!
//! Writes `BENCH_federation.json`; `--quick` shrinks the counts for the
//! `check.sh` smoke run.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cond_bench::{emit_metrics, header, percentile_f64, row};
use condmsg::{
    Condition, ConditionalMessenger, ConditionalReceiver, Destination, MessageOutcome,
};
use mq::channel::Channel;
use mq::journal::MemJournal;
use mq::transport::tcp::{TcpAcceptor, TcpConfig};
use mq::{Message, Obs, QueueAddress, QueueManager, SystemClock, Wait, DEAD_LETTER_QUEUE};
use simtime::Millis;

const HOP_COUNTS: [usize; 3] = [1, 2, 4];

struct RunStats {
    msgs_per_sec: f64,
    verdict_p50_ms: f64,
    verdict_p95_ms: f64,
    relay_forwarded: u64,
}

/// A chain of `hops + 1` managers connected by duplex loopback-TCP
/// channel pairs, with explicit head/tail routes at every intermediate
/// so envelopes (and read-acks) relay in both directions.
struct FedChain {
    managers: Vec<Arc<QueueManager>>,
    _acceptors: Vec<Arc<TcpAcceptor>>,
    _channels: Vec<Channel>,
}

fn chain_name(i: usize) -> String {
    format!("QM.F{i}")
}

fn build_chain(hops: usize, obs: &Arc<Obs>) -> FedChain {
    let n = hops + 1;
    let clock = SystemClock::new();
    let managers: Vec<Arc<QueueManager>> = (0..n)
        .map(|i| {
            QueueManager::builder(chain_name(i))
                .clock(clock.clone())
                .obs(obs.clone())
                .build()
                .unwrap()
        })
        .collect();
    let acceptors: Vec<Arc<TcpAcceptor>> = managers
        .iter()
        .map(|m| TcpAcceptor::bind(m, "127.0.0.1:0").unwrap())
        .collect();
    let mut channels = Vec::new();
    for i in 0..n - 1 {
        channels.push(
            Channel::connect_tcp(
                &managers[i],
                &chain_name(i + 1),
                acceptors[i + 1].local_addr(),
                TcpConfig::default(),
            )
            .unwrap(),
        );
        channels.push(
            Channel::connect_tcp(
                &managers[i + 1],
                &chain_name(i),
                acceptors[i].local_addr(),
                TcpConfig::default(),
            )
            .unwrap(),
        );
    }
    // Intermediates route the endpoints through their direct neighbours.
    let head = chain_name(0);
    let tail = chain_name(n - 1);
    for (i, m) in managers.iter().enumerate() {
        if i + 1 < n - 1 {
            m.define_route(&tail, &format!("SYSTEM.XMIT.{}", chain_name(i + 1)))
                .unwrap();
        }
        if i > 1 {
            m.define_route(&head, &format!("SYSTEM.XMIT.{}", chain_name(i - 1)))
                .unwrap();
        }
    }
    FedChain {
        managers,
        _acceptors: acceptors,
        _channels: channels,
    }
}

fn run(hops: usize, msgs: usize, verdict_rounds: usize) -> RunStats {
    let obs = Obs::new();
    let chain = build_chain(hops, &obs);
    let head = chain.managers.first().unwrap().clone();
    let tail = chain.managers.last().unwrap().clone();
    tail.create_queue("Q.IN").unwrap();
    tail.create_queue("Q.COND").unwrap();

    // Throughput: flood the chain, wall-clock first put → last arrival.
    let dest = QueueAddress::new(tail.name(), "Q.IN");
    let start = Instant::now();
    for i in 0..msgs {
        head.put_to(&dest, Message::text(format!("m{i}")).build())
            .unwrap();
    }
    let q = tail.queue("Q.IN").unwrap();
    let deadline = Instant::now() + Duration::from_secs(120);
    while q.depth() < msgs {
        assert!(
            Instant::now() < deadline,
            "hops={hops}: delivery stalled at {}/{msgs}",
            q.depth()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let msgs_per_sec = msgs as f64 / start.elapsed().as_secs_f64();

    // Verdict latency: the conditional protocol end to end, one message
    // outstanding at a time so the number is a round trip, not queueing.
    let messenger = ConditionalMessenger::new(head.clone()).unwrap();
    let _daemon = messenger.spawn_daemon(Duration::from_millis(1));
    let tail2 = tail.clone();
    let stop_reader = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop2 = stop_reader.clone();
    let reader = std::thread::spawn(move || {
        let mut receiver = ConditionalReceiver::with_identity(tail2, "fed-bench").unwrap();
        while !stop2.load(std::sync::atomic::Ordering::SeqCst) {
            let _ = receiver.read_message("Q.COND", Wait::Timeout(Millis(20)));
        }
    });
    let condition: Condition = Destination::queue(tail.name(), "Q.COND")
        .pickup_within(Millis(30_000))
        .into();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(verdict_rounds);
    for i in 0..verdict_rounds {
        let t0 = Instant::now();
        let id = messenger
            .send_message(format!("v{i}"), &condition)
            .unwrap();
        let outcome = messenger
            .take_outcome(id, Wait::Timeout(Millis(30_000)))
            .unwrap()
            .expect("verdict decided");
        assert_eq!(outcome.outcome, MessageOutcome::Success, "{:?}", outcome.reason);
        latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    stop_reader.store(true, std::sync::atomic::Ordering::SeqCst);
    reader.join().unwrap();

    let snap = obs.metrics().snapshot();
    let stats = RunStats {
        msgs_per_sec,
        verdict_p50_ms: percentile_f64(&latencies_ms, 0.50),
        verdict_p95_ms: percentile_f64(&latencies_ms, 0.95),
        relay_forwarded: snap.counter("mq.relay.forwarded"),
    };
    for m in chain.managers {
        assert_eq!(
            m.queue(DEAD_LETTER_QUEUE).unwrap().depth(),
            0,
            "nothing dead-lettered on {}",
            m.name()
        );
        m.shutdown();
    }
    stats
}

struct Fig8Proof {
    successes: usize,
    compensated: usize,
}

/// The acceptance proof, inline: Fig. 8 compensation flow across
/// QM.A → QM.B → QM.C over loopback TCP with QM.B crashed while holding
/// custody of every in-flight original, then rebuilt from its journal.
/// Panics unless every message reaches exactly one of success or
/// compensation+annihilation.
fn fig8_crash_proof(each: usize) -> Fig8Proof {
    let clock = SystemClock::new();
    let a = QueueManager::builder("QM.A").clock(clock.clone()).build().unwrap();
    let journal = MemJournal::new();
    let b = QueueManager::builder("QM.B")
        .clock(clock.clone())
        .journal(journal.clone())
        .build()
        .unwrap();
    let c = QueueManager::builder("QM.C").clock(clock.clone()).build().unwrap();
    c.create_queue("Q.SLOW").unwrap();
    c.create_queue("Q.FAST").unwrap();

    let acc_a = TcpAcceptor::bind(&a, "127.0.0.1:0").unwrap();
    let acc_b = TcpAcceptor::bind(&b, "127.0.0.1:0").unwrap();
    let acc_c = TcpAcceptor::bind(&c, "127.0.0.1:0").unwrap();
    let b_addr = acc_b.local_addr();

    // B→C stays unconnected: QM.B accepts (and journals) custody of
    // everything bound for QM.C but cannot forward — the deterministic
    // "crashed mid-handoff" window.
    let _ab = Channel::connect_tcp(&a, "QM.B", b_addr, TcpConfig::default()).unwrap();
    a.define_default_route(&["SYSTEM.XMIT.QM.B"]).unwrap();
    let _cb = Channel::connect_tcp(&c, "QM.B", b_addr, TcpConfig::default()).unwrap();
    c.define_default_route(&["SYSTEM.XMIT.QM.B"]).unwrap();
    b.define_route("QM.C", "SYSTEM.XMIT.QM.C").unwrap();

    let messenger = ConditionalMessenger::new(a.clone()).unwrap();
    let _daemon = messenger.spawn_daemon(Duration::from_millis(2));
    let slow: Condition = Destination::queue("QM.C", "Q.SLOW")
        .pickup_within(Millis(30_000))
        .into();
    let fast: Condition = Destination::queue("QM.C", "Q.FAST")
        .pickup_within(Millis(300))
        .into();
    let mut success_ids = Vec::new();
    let mut failure_ids = Vec::new();
    for i in 0..each {
        success_ids.push(
            messenger
                .send_message_with_compensation(format!("keep-{i}"), format!("undo-{i}"), &slow)
                .unwrap(),
        );
        failure_ids.push(
            messenger
                .send_message_with_compensation(format!("drop-{i}"), format!("undo-{i}"), &fast)
                .unwrap(),
        );
    }
    let custody = |qm: &Arc<QueueManager>| {
        qm.queue("SYSTEM.XMIT.QM.C").map(|q| q.depth()).unwrap_or(0)
    };
    let deadline = Instant::now() + Duration::from_secs(15);
    while custody(&b) < 2 * each {
        assert!(Instant::now() < deadline, "originals never reached custody");
        std::thread::sleep(Duration::from_millis(2));
    }
    acc_b.shutdown();
    b.crash();

    let b2 = QueueManager::builder("QM.B")
        .clock(clock)
        .journal(journal)
        .build()
        .unwrap();
    assert!(custody(&b2) >= 2 * each, "custody survived the crash");
    // Rebind the crashed relay's address so upstream transports reconnect.
    let acc_b2 = loop {
        match TcpAcceptor::bind(&b2, &b_addr.to_string()) {
            Ok(acc) => break acc,
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    };
    let _acc_b2 = acc_b2;
    let _bc = Channel::connect_tcp(&b2, "QM.C", acc_c.local_addr(), TcpConfig::default()).unwrap();
    let _ba = Channel::connect_tcp(&b2, "QM.A", acc_a.local_addr(), TcpConfig::default()).unwrap();

    let c2 = c.clone();
    let reader = std::thread::spawn(move || {
        let mut receiver = ConditionalReceiver::with_identity(c2, "fed-proof").unwrap();
        let mut seen = Vec::new();
        for _ in 0..each {
            let got = receiver
                .read_message("Q.SLOW", Wait::Timeout(Millis(20_000)))
                .unwrap()
                .expect("slow original delivered after rebuild");
            seen.push(got.payload_str().unwrap().to_owned());
        }
        seen
    });
    let mut seen = reader.join().unwrap();
    seen.sort();
    seen.dedup();
    assert_eq!(seen.len(), each, "each success read exactly once");
    for id in success_ids {
        let outcome = messenger
            .take_outcome(id, Wait::Timeout(Millis(30_000)))
            .unwrap()
            .expect("success verdict");
        assert_eq!(outcome.outcome, MessageOutcome::Success, "{:?}", outcome.reason);
    }
    for id in &failure_ids {
        let outcome = messenger
            .take_outcome(*id, Wait::Timeout(Millis(30_000)))
            .unwrap()
            .expect("failure verdict");
        assert_eq!(outcome.outcome, MessageOutcome::Failure);
    }
    // Wait until every compensation joined its original on Q.FAST
    // (2*each slow+fast originals and each compensations delivered at
    // QM.C in total), *then* read: annihilation must drain the queue
    // without ever surfacing a message to the application.
    let deadline = Instant::now() + Duration::from_secs(20);
    while c.obs().metrics().snapshot().counter("mq.relay.delivered_local") < (3 * each) as u64 {
        assert!(Instant::now() < deadline, "compensations never arrived");
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut receiver = ConditionalReceiver::new(c.clone()).unwrap();
    loop {
        assert!(
            receiver
                .read_message("Q.FAST", Wait::NoWait)
                .unwrap()
                .is_none(),
            "compensated original must never reach the application"
        );
        if c.queue("Q.FAST").unwrap().depth() == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "annihilation never completed");
        std::thread::sleep(Duration::from_millis(5));
    }
    for qm in [&a, &b2, &c] {
        assert_eq!(
            qm.queue(DEAD_LETTER_QUEUE).unwrap().depth(),
            0,
            "{} DLQ clean",
            qm.name()
        );
    }
    a.shutdown();
    b2.shutdown();
    c.shutdown();
    Fig8Proof {
        successes: each,
        compensated: failure_ids.len(),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let msgs = if quick { 400 } else { 4_000 };
    let verdict_rounds = if quick { 15 } else { 100 };
    let proof_each = if quick { 3 } else { 8 };

    println!(
        "# EF — relay federation: multi-hop chains over loopback TCP ({msgs} msgs, {verdict_rounds} verdicts{})\n",
        if quick { ", --quick" } else { "" }
    );
    header(&[
        "hops", "managers", "msgs/s", "verdict p50 ms", "verdict p95 ms", "relayed",
    ]);
    let mut results: Vec<(usize, RunStats)> = Vec::new();
    for &hops in &HOP_COUNTS {
        let stats = run(hops, msgs, verdict_rounds);
        row(&[
            hops.to_string(),
            (hops + 1).to_string(),
            format!("{:.0}", stats.msgs_per_sec),
            format!("{:.2}", stats.verdict_p50_ms),
            format!("{:.2}", stats.verdict_p95_ms),
            stats.relay_forwarded.to_string(),
        ]);
        results.push((hops, stats));
    }

    println!("\n# Fig. 8 proof: compensation flow across a crashed+rebuilt relay");
    let proof = fig8_crash_proof(proof_each);
    println!(
        "  {} successes, {} compensated+annihilated, 0 dead-lettered — exactly-once held",
        proof.successes, proof.compensated
    );

    let runs_json: Vec<String> = results
        .iter()
        .map(|(hops, s)| {
            format!(
                concat!(
                    "    {{\"hops\": {}, \"managers\": {}, \"msgs_per_sec\": {:.1}, ",
                    "\"verdict_p50_ms\": {:.2}, \"verdict_p95_ms\": {:.2}, ",
                    "\"relay_forwarded\": {}}}"
                ),
                hops,
                hops + 1,
                s.msgs_per_sec,
                s.verdict_p50_ms,
                s.verdict_p95_ms,
                s.relay_forwarded,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n  \"experiment\": \"EF relay federation\",\n  \"quick\": {},\n",
            "  \"msgs\": {},\n  \"verdict_rounds\": {},\n  \"runs\": [\n{}\n  ],\n",
            "  \"fig8_proof\": {{\"passed\": true, \"successes\": {}, \"compensated\": {}}}\n}}\n"
        ),
        quick,
        msgs,
        verdict_rounds,
        runs_json.join(",\n"),
        proof.successes,
        proof.compensated,
    );
    std::fs::write("BENCH_federation.json", json).unwrap();
    println!("\nwrote BENCH_federation.json");

    emit_metrics();
}
