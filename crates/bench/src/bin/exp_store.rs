//! ES — the journal as primary store: indexes and O(live) recovery.
//!
//! Two phases, matching the two storage claims:
//!
//! **Index vs scan.** Park a corpus of messages with mixed properties
//! (an i64 `shard`, a string `kind`, a unique correlation id) on two
//! queues — one with property indexing on, one with it forced off — and
//! measure selector gets and correlation-id gets against both. The
//! indexed queue resolves both through point reads (property value bands,
//! exact correlation map); the unindexed queue walks its priority bands
//! evaluating the selector per message.
//!
//! **Restart-to-ready.** Build the same logical state twice: once as a
//! flat full-history journal (every put and get since the beginning of
//! time), once as a segmented store that checkpointed — snapshotted its
//! live messages and unlinked all history segments. Restart-to-ready is
//! the wall-clock from opening the journal to a ready queue manager.
//! Recovery over the checkpointed store is O(live messages); over the
//! flat history it is O(everything that ever happened).
//!
//! Writes `BENCH_store.json`. Gates (asserted, wired into `check.sh
//! --quick`): indexed selector and correlation p95 beat the scan path,
//! and checkpointed restart is ≥10x faster than full-history replay.

use std::sync::Arc;
use std::time::Instant;

use cond_bench::{emit_metrics, header, percentile, row};
use mq::journal::{FileJournal, Journal, NullJournal, SegmentConfig, SegmentedJournal};
use mq::selector::Selector;
use mq::{ManagerConfig, Message, QueueConfig, QueueManager, Wait};

const KINDS: [&str; 8] = [
    "flight", "train", "hotel", "meeting", "alert", "report", "invoice", "ticket",
];
const SHARDS: i64 = 64;

/// A corpus message: shard/kind spread deterministically, correlation id
/// unique per index.
fn corpus_message(i: usize, persistent: bool) -> Message {
    Message::text(format!("payload {i}"))
        .property("shard", i as i64 % SHARDS)
        .property("kind", KINDS[i % KINDS.len()])
        .property("seq", i as i64)
        .correlation_id(format!("corr-{i}"))
        .persistent(persistent)
        .build()
}

struct IndexStats {
    selector_p95_us: u64,
    correlation_p95_us: u64,
}

/// Parks `parked` corpus messages on a queue (indexed or not) and probes
/// it with selector gets and correlation gets, returning p95 latencies.
fn run_index_phase(parked: usize, ops: usize, indexed: bool) -> IndexStats {
    let qmgr = QueueManager::builder("QM.STORE")
        .journal(NullJournal::new())
        .build()
        .unwrap();
    let queue = if indexed { "IDX" } else { "SCAN" };
    qmgr.create_queue_with(
        queue,
        QueueConfig {
            index_properties: indexed,
            ..QueueConfig::default()
        },
    )
    .unwrap();
    for i in 0..parked {
        qmgr.put(queue, corpus_message(i, false)).unwrap();
    }

    // Selector gets: targeted consumption — each op claims one specific
    // work item by its (shard, kind, seq) coordinates, the pattern the
    // property index exists for. Targets stay in the front half of the
    // corpus so the correlation phase's tail targets are never consumed
    // here. The scan path must walk to the target's queue position; the
    // indexed path resolves through the singleton `seq` value band.
    let mut selector_lat = Vec::with_capacity(ops);
    for op in 0..ops {
        let target = (op * 823) % (parked / 2);
        let shard = target as i64 % SHARDS;
        let kind = KINDS[target % KINDS.len()];
        let sel = Selector::parse(&format!(
            "shard = {shard} AND kind = '{kind}' AND seq = {target}"
        ))
        .unwrap();
        let t = Instant::now();
        let got = qmgr.get_selected(queue, &sel, Wait::NoWait).unwrap();
        selector_lat.push(t.elapsed().as_micros() as u64);
        assert!(got.is_some(), "corpus covers every (shard, kind) point");
    }

    // Correlation gets: exact-match lookups of parked ids, spread across
    // the corpus (the tail end, untouched by the selector phase).
    let mut corr_lat = Vec::with_capacity(ops);
    for op in 0..ops {
        let target = parked - 1 - (op * 13) % (parked / 2);
        let sel = Selector::parse(&format!("correlation_id = 'corr-{target}'")).unwrap();
        let t = Instant::now();
        let got = qmgr.get_selected(queue, &sel, Wait::NoWait).unwrap();
        corr_lat.push(t.elapsed().as_micros() as u64);
        assert!(got.is_some(), "correlation target is parked");
    }

    IndexStats {
        selector_p95_us: percentile(&selector_lat, 0.95),
        correlation_p95_us: percentile(&corr_lat, 0.95),
    }
}

/// No automatic checkpointing: the two restart variants must control
/// truncation themselves.
fn manual_checkpoint_config() -> ManagerConfig {
    ManagerConfig {
        checkpoint_bytes: None,
        ..ManagerConfig::default()
    }
}

/// Writes `live` parked puts plus `churn` put+get pairs through a manager
/// over `journal`, leaving exactly `live` messages on Q.
fn populate(journal: Arc<dyn Journal>, live: usize, churn: usize) -> Arc<QueueManager> {
    let qmgr = QueueManager::builder("QM.STORE")
        .journal(journal)
        .config(manual_checkpoint_config())
        .build()
        .unwrap();
    qmgr.create_queue("Q").unwrap();
    for i in 0..live {
        qmgr.put("Q", corpus_message(i, true)).unwrap();
    }
    for i in 0..churn {
        qmgr.put(
            "Q",
            Message::text(format!("churn {i}")).persistent(true).build(),
        )
        .unwrap();
        qmgr.get("Q", Wait::NoWait).unwrap().unwrap();
    }
    qmgr
}

struct RestartStats {
    journal_bytes: u64,
    restart_ms: f64,
}

/// Full-history baseline: flat file journal, no truncation ever.
fn run_restart_flat(dir: &std::path::Path, live: usize, churn: usize) -> RestartStats {
    let path = dir.join("flat.log");
    let qmgr = populate(FileJournal::open(&path, false).unwrap(), live, churn);
    qmgr.crash();
    let t = Instant::now();
    let journal = FileJournal::open(&path, false).unwrap();
    let bytes = journal.len_bytes();
    let qmgr = QueueManager::builder("QM.STORE")
        .journal(journal)
        .config(manual_checkpoint_config())
        .build()
        .unwrap();
    let restart_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(qmgr.queue("Q").unwrap().depth(), live);
    RestartStats {
        journal_bytes: bytes,
        restart_ms,
    }
}

/// Checkpointed store: segmented journal, snapshot + truncate before the
/// crash, so recovery replays only the live set.
fn run_restart_checkpointed(dir: &std::path::Path, live: usize, churn: usize) -> RestartStats {
    let root = dir.join("segments");
    let config = SegmentConfig::default();
    let qmgr = populate(
        SegmentedJournal::open(&root, config.clone()).unwrap(),
        live,
        churn,
    );
    qmgr.checkpoint().unwrap();
    qmgr.crash();
    let t = Instant::now();
    let journal = SegmentedJournal::open(&root, config).unwrap();
    let bytes = journal.len_bytes();
    let qmgr = QueueManager::builder("QM.STORE")
        .journal(journal)
        .config(manual_checkpoint_config())
        .build()
        .unwrap();
    let restart_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(qmgr.queue("Q").unwrap().depth(), live);
    RestartStats {
        journal_bytes: bytes,
        restart_ms,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Index phase parks `parked` messages per queue; restart phase leaves
    // `live` parked under `churn` put+get pairs of history.
    let (parked, ops, live, churn) = if quick {
        (20_000, 400, 5_000, 100_000)
    } else {
        (500_000, 300, 1_000_000, 8_000_000)
    };

    println!(
        "# ES — journal as primary store ({parked} parked/queue, {live} live / {churn} churn{})\n",
        if quick { ", --quick" } else { "" }
    );

    header(&["queue", "selector get p95 us", "correlation get p95 us"]);
    let idx = run_index_phase(parked, ops, true);
    let scan = run_index_phase(parked, ops, false);
    for (name, stats) in [("indexed", &idx), ("scan", &scan)] {
        row(&[
            name.to_owned(),
            stats.selector_p95_us.to_string(),
            stats.correlation_p95_us.to_string(),
        ]);
    }

    let dir = std::env::temp_dir().join(format!("condmsg-store-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let flat = run_restart_flat(&dir, live, churn);
    let ckpt = run_restart_checkpointed(&dir, live, churn);
    std::fs::remove_dir_all(&dir).ok();
    let speedup = flat.restart_ms / ckpt.restart_ms;

    println!();
    header(&["store", "journal MB", "restart-to-ready ms"]);
    for (name, stats) in [("full-history", &flat), ("checkpointed", &ckpt)] {
        row(&[
            name.to_owned(),
            format!("{:.1}", stats.journal_bytes as f64 / 1e6),
            format!("{:.1}", stats.restart_ms),
        ]);
    }
    println!("\nrestart speedup: {speedup:.1}x");

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"ES journal as primary store\",\n",
            "  \"quick\": {quick},\n",
            "  \"index\": {{\n",
            "    \"parked_per_queue\": {parked},\n",
            "    \"ops\": {ops},\n",
            "    \"indexed\": {{\"selector_p95_us\": {isel}, \"correlation_p95_us\": {icorr}}},\n",
            "    \"scan\": {{\"selector_p95_us\": {ssel}, \"correlation_p95_us\": {scorr}}}\n",
            "  }},\n",
            "  \"restart\": {{\n",
            "    \"live\": {live},\n",
            "    \"churn\": {churn},\n",
            "    \"full_history\": {{\"journal_bytes\": {fbytes}, \"restart_ms\": {fms:.2}}},\n",
            "    \"checkpointed\": {{\"journal_bytes\": {cbytes}, \"restart_ms\": {cms:.2}}}\n",
            "  }},\n",
            "  \"gate\": {{\n",
            "    \"min_restart_speedup\": 10.0,\n",
            "    \"measured_restart_speedup\": {speedup:.2},\n",
            "    \"index_beats_scan_selector\": {gsel},\n",
            "    \"index_beats_scan_correlation\": {gcorr}\n",
            "  }}\n",
            "}}\n"
        ),
        quick = quick,
        parked = parked,
        ops = ops,
        isel = idx.selector_p95_us,
        icorr = idx.correlation_p95_us,
        ssel = scan.selector_p95_us,
        scorr = scan.correlation_p95_us,
        live = live,
        churn = churn,
        fbytes = flat.journal_bytes,
        fms = flat.restart_ms,
        cbytes = ckpt.journal_bytes,
        cms = ckpt.restart_ms,
        speedup = speedup,
        gsel = idx.selector_p95_us < scan.selector_p95_us,
        gcorr = idx.correlation_p95_us < scan.correlation_p95_us,
    );
    std::fs::write("BENCH_store.json", json).unwrap();
    println!("wrote BENCH_store.json");

    // Regression gates: the whole point of the storage inversion.
    assert!(
        idx.selector_p95_us < scan.selector_p95_us,
        "indexed selector get p95 ({}us) must beat the scan path ({}us)",
        idx.selector_p95_us,
        scan.selector_p95_us
    );
    assert!(
        idx.correlation_p95_us < scan.correlation_p95_us,
        "indexed correlation get p95 ({}us) must beat the scan path ({}us)",
        idx.correlation_p95_us,
        scan.correlation_p95_us
    );
    assert!(
        speedup >= 10.0,
        "checkpointed restart must be >=10x full replay, measured {speedup:.2}x"
    );

    emit_metrics();
}
