//! E1 — paper Fig. 1/Fig. 4 (Example 1): the group-meeting notification.
//!
//! Reproduces the verdict the conditional messaging system reaches for a
//! sweep of recipient behaviours against the Fig. 4 condition, and checks
//! every verdict against a hand-written oracle of the paper's rules:
//!
//! * all 4 recipients must read within 2 days;
//! * receiver3 must process within 7 days;
//! * ≥2 of the other three must process within 11 days.
//!
//! Recipients read at one time and (when processing) commit their
//! transaction later, like a real application would. Deterministic
//! (SimClock); one "day" is scaled to 1000 logical ms.

use cond_bench::{emit_metrics, header, row, sim_world, workload};
use condmsg::{ConditionalReceiver, MessageOutcome};
use mq::Wait;
use simtime::{Clock, Millis, SimClock};

const DAY: u64 = 1_000;

/// What one recipient does. `read_day` is when it reads; `commit_day`
/// (≥ read_day), when present, means the read happens inside a receiver
/// transaction committed that day (i.e. the recipient *processes*).
#[derive(Debug, Clone, Copy)]
struct Behaviour {
    read_day: Option<u64>,
    commit_day: Option<u64>,
}

fn b(read_day: Option<u64>, commit_day: Option<u64>) -> Behaviour {
    Behaviour {
        read_day,
        commit_day,
    }
}

fn scenario(label: &str, behaviours: [Behaviour; 4]) -> (String, bool, bool) {
    let clock = SimClock::new();
    // Leaf order in the Fig. 4 condition: Q.R3, Q.R1, Q.R2, Q.R4.
    let queues: Vec<String> = ["Q.R3", "Q.R1", "Q.R2", "Q.R4"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let world = sim_world(clock.clone(), &queues);
    world
        .messenger
        .send_message("meeting notification", &workload::example1(DAY))
        .unwrap();

    #[derive(Clone, Copy, PartialEq)]
    enum Action {
        ReadNonTx(usize),
        ReadInTx(usize),
        Commit(usize),
    }
    let mut events: Vec<(u64, Action)> = Vec::new();
    for (leaf, behaviour) in behaviours.iter().enumerate() {
        match (behaviour.read_day, behaviour.commit_day) {
            (Some(r), Some(c)) => {
                assert!(c >= r, "commit cannot precede the read");
                events.push((r * DAY, Action::ReadInTx(leaf)));
                events.push((c * DAY, Action::Commit(leaf)));
            }
            (Some(r), None) => events.push((r * DAY, Action::ReadNonTx(leaf))),
            (None, _) => {}
        }
    }
    events.sort_by_key(|(t, _)| *t);

    let mut receivers: Vec<ConditionalReceiver> = (0..4)
        .map(|_| ConditionalReceiver::new(world.qmgr.clone()).unwrap())
        .collect();
    for (at, action) in events {
        let now = clock.now().as_millis();
        if at > now {
            clock.advance(Millis(at - now));
        }
        match action {
            Action::ReadNonTx(leaf) => {
                receivers[leaf]
                    .read_message(&queues[leaf], Wait::NoWait)
                    .unwrap()
                    .unwrap();
            }
            Action::ReadInTx(leaf) => {
                receivers[leaf].begin_tx().unwrap();
                receivers[leaf]
                    .read_message(&queues[leaf], Wait::NoWait)
                    .unwrap()
                    .unwrap();
            }
            Action::Commit(leaf) => receivers[leaf].commit_tx().unwrap(),
        }
    }
    clock.advance(Millis(15 * DAY));
    let outcomes = world.messenger.pump().unwrap();
    let success = outcomes[0].outcome == MessageOutcome::Success;

    // Oracle, straight from the paper's rules. Leaf 0 = receiver3.
    let all_read = behaviours
        .iter()
        .all(|b| matches!(b.read_day, Some(d) if d <= 2));
    let r3_processed = matches!(behaviours[0].commit_day, Some(d) if d <= 7);
    let others_processed = behaviours[1..]
        .iter()
        .filter(|b| matches!(b.commit_day, Some(d) if d <= 11))
        .count();
    let oracle = all_read && r3_processed && others_processed >= 2;
    (label.to_owned(), success, oracle)
}

fn main() {
    let cases: Vec<(String, bool, bool)> = vec![
        scenario(
            "everyone reads day 1; r3+r1+r2 commit day 1",
            [
                b(Some(1), Some(1)),
                b(Some(1), Some(1)),
                b(Some(1), Some(1)),
                b(Some(1), None),
            ],
        ),
        scenario(
            "read day 1; r3 commits day 6, r1+r4 day 10",
            [
                b(Some(1), Some(6)),
                b(Some(1), Some(10)),
                b(Some(1), None),
                b(Some(1), Some(10)),
            ],
        ),
        scenario(
            "r3 commits too late (day 8)",
            [
                b(Some(1), Some(8)),
                b(Some(1), Some(1)),
                b(Some(1), Some(1)),
                b(Some(1), None),
            ],
        ),
        scenario(
            "only one of the other three processes",
            [
                b(Some(1), Some(1)),
                b(Some(1), Some(1)),
                b(Some(1), None),
                b(Some(1), None),
            ],
        ),
        scenario(
            "one recipient reads on day 3 (window is 2 days)",
            [
                b(Some(1), Some(1)),
                b(Some(1), Some(1)),
                b(Some(1), Some(1)),
                b(Some(3), None),
            ],
        ),
        scenario(
            "one recipient never reads",
            [
                b(Some(1), Some(1)),
                b(Some(1), Some(1)),
                b(Some(1), Some(1)),
                b(None, None),
            ],
        ),
        scenario(
            "two others commit exactly at day 11 (boundary, inclusive)",
            [
                b(Some(1), Some(1)),
                b(Some(1), Some(11)),
                b(Some(1), Some(11)),
                b(Some(1), None),
            ],
        ),
        scenario(
            "r3 commits exactly at day 7 (boundary, inclusive)",
            [
                b(Some(1), Some(7)),
                b(Some(1), Some(1)),
                b(Some(1), Some(1)),
                b(Some(2), None),
            ],
        ),
        scenario(
            "three others all commit late (day 12)",
            [
                b(Some(1), Some(1)),
                b(Some(1), Some(12)),
                b(Some(1), Some(12)),
                b(Some(1), Some(12)),
            ],
        ),
    ];

    println!("# E1 — Example 1 (Fig. 1/4): meeting notification verdict matrix\n");
    header(&["scenario", "system verdict", "oracle", "agree"]);
    let mut all_agree = true;
    for (label, verdict, oracle) in &cases {
        let agree = verdict == oracle;
        all_agree &= agree;
        row(&[
            label.clone(),
            if *verdict { "SUCCESS" } else { "FAILURE" }.into(),
            if *oracle { "success" } else { "failure" }.into(),
            if agree { "yes" } else { "NO" }.into(),
        ]);
    }
    println!();
    println!(
        "{} / {} scenarios agree with the paper-rule oracle",
        cases.iter().filter(|(_, v, o)| v == o).count(),
        cases.len()
    );
    assert!(all_agree, "verdict mismatch against the oracle");
    emit_metrics();
}
