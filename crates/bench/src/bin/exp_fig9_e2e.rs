//! E7 — paper Fig. 9: sustained end-to-end throughput of the full
//! conditional-messaging architecture, against the hand-rolled
//! application baseline (S22 in DESIGN.md).
//!
//! One cycle = send → all destinations read (acknowledging) → the sender's
//! evaluation decides success. Reports cycles/s and the overhead factor of
//! the middleware over the baseline for a range of fan-outs.

use std::time::Instant;

use cond_bench::baseline::{baseline_receive, BaselineSender};
use cond_bench::{emit_metrics, header, queue_names, row, system_world, workload};
use condmsg::{ConditionalReceiver, MessageOutcome};
use mq::Wait;
use simtime::Millis;

const CYCLES: usize = 1_500;

fn conditional_cycles_per_sec(n: usize) -> f64 {
    let world = system_world(&queue_names(n));
    let condition = workload::fan_out(n, Millis(600_000));
    let mut receiver = ConditionalReceiver::new(world.qmgr.clone()).unwrap();
    let start = Instant::now();
    for _ in 0..CYCLES {
        let id = world.messenger.send_message("cycle", &condition).unwrap();
        for i in 0..n {
            receiver
                .read_message(&format!("Q.D{i}"), Wait::NoWait)
                .unwrap()
                .unwrap();
        }
        let outcomes = world.messenger.pump().unwrap();
        assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
        world.messenger.take_outcome(id, Wait::NoWait).unwrap();
    }
    CYCLES as f64 / start.elapsed().as_secs_f64()
}

fn baseline_cycles_per_sec(n: usize) -> f64 {
    let world = system_world(&queue_names(n));
    let queues = queue_names(n);
    let mut sender = BaselineSender::new(world.qmgr.clone(), "APP.ACK").unwrap();
    let start = Instant::now();
    for _ in 0..CYCLES {
        let id = sender
            .send_notification("cycle", &queues, Millis(600_000))
            .unwrap();
        for q in &queues {
            baseline_receive(&world.qmgr, q).unwrap().unwrap();
        }
        let decided = sender.poll().unwrap();
        assert_eq!(decided, vec![(id, true)]);
    }
    CYCLES as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    println!("# E7 — Fig. 9: end-to-end pipeline throughput (middleware vs app baseline)\n");
    println!("{CYCLES} full cycles per cell; in-memory journal; single manager\n");
    header(&[
        "destinations",
        "conditional (cycles/s)",
        "baseline (cycles/s)",
        "middleware cost factor",
    ]);
    for n in [1usize, 2, 4, 8, 16] {
        let cond = conditional_cycles_per_sec(n);
        let base = baseline_cycles_per_sec(n);
        row(&[
            n.to_string(),
            format!("{cond:.0}"),
            format!("{base:.0}"),
            format!("{:.2}x", base / cond),
        ]);
    }
    println!();
    println!(
        "expected shape: the middleware costs a roughly constant factor over the baseline \
         (it additionally journals the send, parks/clears one compensation per destination \
         and logs every receipt — the work the paper argues applications would otherwise \
         hand-write); both scale linearly in the fan-out."
    );
    emit_metrics();
}
