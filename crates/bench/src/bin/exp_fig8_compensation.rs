//! E6 — paper Fig. 8: compensation-queue semantics.
//!
//! Exercises the three behaviours of §2.6 plus the crash case from the
//! guaranteed-compensation discussion, deterministically (SimClock):
//!
//! A. original unread when the compensation arrives → both annihilate;
//! B. original consumed → compensation delivered to the app, exactly once;
//! C. receiver-side crash after consumption → compensation still delivered
//!    after restart (the consumption log is persistent);
//! D. compensation with no matching original and no consumption record →
//!    deferred, not delivered, and it does not block other traffic.

use cond_bench::{emit_metrics, header, row};
use condmsg::{
    Condition, ConditionalMessenger, ConditionalReceiver, Destination, MessageKind, MessageOutcome,
};
use mq::journal::MemJournal;
use mq::{Message, QueueManager, Wait};
use simtime::{Millis, SimClock};

fn check(name: &str, condition: bool, results: &mut Vec<(String, bool)>) {
    results.push((name.to_owned(), condition));
}

fn case_a(results: &mut Vec<(String, bool)>) {
    let clock = SimClock::new();
    let qmgr = QueueManager::builder("QM1")
        .obs(cond_bench::shared_obs())
        .clock(clock.clone())
        .build()
        .unwrap();
    qmgr.create_queue("Q").unwrap();
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    let cond: Condition = Destination::queue("QM1", "Q")
        .pickup_within(Millis(50))
        .into();
    messenger
        .send_message_with_compensation("orig", "undo", &cond)
        .unwrap();
    clock.advance(Millis(100));
    messenger.pump().unwrap();
    let depth_with_both = qmgr.queue("Q").unwrap().depth();
    let mut receiver = ConditionalReceiver::new(qmgr.clone()).unwrap();
    let delivered = receiver.read_message("Q", Wait::NoWait).unwrap();
    check(
        "A: original+comp both queued before read",
        depth_with_both == 2,
        results,
    );
    check(
        "A: nothing delivered (annihilation)",
        delivered.is_none(),
        results,
    );
    check(
        "A: queue empty afterwards",
        qmgr.queue("Q").unwrap().depth() == 0,
        results,
    );
}

fn case_b(results: &mut Vec<(String, bool)>) {
    let clock = SimClock::new();
    let qmgr = QueueManager::builder("QM1")
        .obs(cond_bench::shared_obs())
        .clock(clock.clone())
        .build()
        .unwrap();
    qmgr.create_queue("Q").unwrap();
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    let cond: Condition = Destination::queue("QM1", "Q")
        .process_within(Millis(50))
        .into();
    messenger
        .send_message_with_compensation("orig", "undo", &cond)
        .unwrap();
    clock.advance(Millis(10));
    let mut receiver = ConditionalReceiver::new(qmgr.clone()).unwrap();
    // Non-transactional read: consumption logged, processing never acked.
    receiver.read_message("Q", Wait::NoWait).unwrap().unwrap();
    clock.advance(Millis(100));
    let outcome = messenger.pump().unwrap().remove(0);
    let comp = receiver.read_message("Q", Wait::NoWait).unwrap();
    let again = receiver.read_message("Q", Wait::NoWait).unwrap();
    check(
        "B: message failed",
        outcome.outcome == MessageOutcome::Failure,
        results,
    );
    check(
        "B: compensation delivered to consumer",
        comp.as_ref().map(|m| m.kind()) == Some(MessageKind::Compensation),
        results,
    );
    check(
        "B: with the application data",
        comp.as_ref().and_then(|m| m.payload_str()) == Some("undo"),
        results,
    );
    check("B: delivered exactly once", again.is_none(), results);
}

fn case_c(results: &mut Vec<(String, bool)>) {
    let clock = SimClock::new();
    let journal = MemJournal::new();
    let qmgr = QueueManager::builder("QM1")
        .obs(cond_bench::shared_obs())
        .clock(clock.clone())
        .journal(journal.clone())
        .build()
        .unwrap();
    qmgr.create_queue("Q").unwrap();
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    let cond: Condition = Destination::queue("QM1", "Q")
        .process_within(Millis(50))
        .into();
    messenger
        .send_message_with_compensation("orig", "undo", &cond)
        .unwrap();
    clock.advance(Millis(10));
    let mut receiver = ConditionalReceiver::new(qmgr.clone()).unwrap();
    receiver.read_message("Q", Wait::NoWait).unwrap().unwrap();
    qmgr.crash();
    // Restart: the consumption record in DS.RLOG.Q survives.
    let qmgr2 = QueueManager::builder("QM1")
        .obs(cond_bench::shared_obs())
        .clock(clock.clone())
        .journal(journal)
        .build()
        .unwrap();
    let messenger2 = ConditionalMessenger::new(qmgr2.clone()).unwrap();
    clock.advance(Millis(100));
    let outcome = messenger2.pump().unwrap().remove(0);
    let mut receiver2 = ConditionalReceiver::new(qmgr2.clone()).unwrap();
    let comp = receiver2.read_message("Q", Wait::NoWait).unwrap();
    check(
        "C: failure decided after restart",
        outcome.outcome == MessageOutcome::Failure,
        results,
    );
    check(
        "C: compensation delivered after crash (guaranteed compensation)",
        comp.map(|m| m.kind()) == Some(MessageKind::Compensation),
        results,
    );
}

fn case_d(results: &mut Vec<(String, bool)>) {
    let clock = SimClock::new();
    let qmgr = QueueManager::builder("QM1")
        .obs(cond_bench::shared_obs())
        .clock(clock)
        .build().unwrap();
    qmgr.create_queue("Q").unwrap();
    let _messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    let stray = condmsg::wire::make_compensation(
        condmsg::CondMessageId::generate(),
        0,
        &mq::QueueAddress::new("QM1", "Q"),
        None,
    );
    qmgr.put("Q", stray).unwrap();
    qmgr.put("Q", Message::text("regular traffic").build())
        .unwrap();
    let mut receiver = ConditionalReceiver::new(qmgr.clone()).unwrap();
    let first = receiver.read_message("Q", Wait::NoWait).unwrap();
    let second = receiver.read_message("Q", Wait::NoWait).unwrap();
    check(
        "D: other traffic still flows past the deferred comp",
        first.map(|m| m.kind()) == Some(MessageKind::Standard),
        results,
    );
    check(
        "D: unresolvable comp not delivered",
        second.is_none(),
        results,
    );
    check(
        "D: comp remains parked",
        qmgr.queue("Q").unwrap().depth() == 1,
        results,
    );
}

fn main() {
    println!("# E6 — Fig. 8: compensation-queue semantics\n");
    let mut results = Vec::new();
    case_a(&mut results);
    case_b(&mut results);
    case_c(&mut results);
    case_d(&mut results);
    header(&["check", "result"]);
    let mut all = true;
    for (name, ok) in &results {
        all &= ok;
        row(&[name.clone(), if *ok { "PASS" } else { "FAIL" }.into()]);
    }
    println!();
    println!(
        "{} / {} checks pass",
        results.iter().filter(|(_, ok)| *ok).count(),
        results.len()
    );
    assert!(all);
    emit_metrics();
}
