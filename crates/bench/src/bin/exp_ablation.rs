//! EA — ablations of the design choices called out in DESIGN.md §6.
//!
//! 1. **Journal backend**: end-to-end conditional-messaging throughput with
//!    durability off (`NullJournal`), in-memory WAL (`MemJournal`), file
//!    WAL (`FileJournal`, OS-buffered) and file WAL with fsync-per-append.
//!    Expected shape: null ≳ mem ≫ file ≫ file+fsync, quantifying what the
//!    "reliable" in reliable messaging costs at each durability level.
//!
//! 2. **Eager deadlines vs. ack grace**: a receiver reads in time, but the
//!    acknowledgment spends `transit` ms in flight. With `ack_grace = 0`
//!    (eager) the sender declares failure as soon as the deadline passes
//!    un-acknowledged; with a grace window (the paper's "20 s condition,
//!    21 s evaluation timeout" gap) a timely-stamped late ack still counts.

use std::sync::Arc;
use std::time::Instant;

use cond_bench::{emit_metrics, header, queue_names, row, workload};
use condmsg::{
    AckKind, Acknowledgment, CondConfig, ConditionalMessenger, ConditionalReceiver, MessageOutcome,
};
use mq::journal::{FileJournal, Journal, MemJournal, NullJournal};
use mq::{QueueManager, Wait};
use simtime::{Millis, SimClock, Time};

fn throughput_with(journal: Arc<dyn Journal>, label: &str) -> (String, f64) {
    const CYCLES: usize = 400;
    let qmgr = QueueManager::builder("QM1")
        .obs(cond_bench::shared_obs())
        .journal(journal)
        .build()
        .unwrap();
    for q in queue_names(2) {
        qmgr.create_queue(q).unwrap();
    }
    let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
    let condition = workload::fan_out(2, Millis(600_000));
    let mut receiver = ConditionalReceiver::new(qmgr.clone()).unwrap();
    let start = Instant::now();
    for _ in 0..CYCLES {
        let id = messenger.send_message("cycle", &condition).unwrap();
        for i in 0..2 {
            receiver
                .read_message(&format!("Q.D{i}"), Wait::NoWait)
                .unwrap()
                .unwrap();
        }
        let outcomes = messenger.pump().unwrap();
        assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
        messenger.take_outcome(id, Wait::NoWait).unwrap();
    }
    (
        label.to_owned(),
        CYCLES as f64 / start.elapsed().as_secs_f64(),
    )
}

fn journal_ablation() {
    println!("## Journal backends (full pipeline, 2 destinations)\n");
    header(&["journal", "cycles/s", "relative"]);
    let tmp = |name: &str| {
        std::env::temp_dir().join(format!(
            "condmsg-ablation-{}-{name}.log",
            std::process::id()
        ))
    };
    let results = vec![
        throughput_with(NullJournal::new(), "none (durability off)"),
        throughput_with(MemJournal::new(), "in-memory WAL"),
        throughput_with(
            FileJournal::open(tmp("nosync"), false).unwrap(),
            "file WAL (OS-buffered)",
        ),
        throughput_with(
            FileJournal::open(tmp("sync"), true).unwrap(),
            "file WAL + fsync per append",
        ),
    ];
    let base = results[0].1;
    for (label, cps) in &results {
        row(&[
            label.clone(),
            format!("{cps:.0}"),
            format!("{:.2}x", cps / base),
        ]);
    }
    std::fs::remove_file(tmp("nosync")).ok();
    std::fs::remove_file(tmp("sync")).ok();
    println!();
}

/// Reads happen at t=40 (window 100); the ack reaches DS.ACK.Q `transit`
/// ms later. Returns the outcome under the given grace.
fn grace_scenario(transit: u64, grace: u64) -> MessageOutcome {
    let clock = SimClock::new();
    let qmgr = QueueManager::builder("QM1")
        .obs(cond_bench::shared_obs())
        .clock(clock.clone())
        .build()
        .unwrap();
    qmgr.create_queue("Q.D0").unwrap();
    let messenger = ConditionalMessenger::with_config(
        qmgr.clone(),
        CondConfig {
            ack_grace: Millis(grace),
            ..CondConfig::default()
        },
    )
    .unwrap();
    let id = messenger
        .send_message("x", &workload::fan_out(1, Millis(100)))
        .unwrap();
    // Simulate the remote read at t=40 whose ack arrives after `transit`.
    clock.advance(Millis(40));
    let ack = Acknowledgment {
        cond_id: id,
        leaf: 0,
        kind: AckKind::Read,
        read_at: Time(40),
        processed_at: None,
        recipient: None,
    };
    clock.advance(Millis(transit));
    // Evaluate once before the ack lands (the eager evaluator may already
    // fail here), then deliver the ack and evaluate again.
    let early = messenger.pump().unwrap();
    if let Some(outcome) = early.into_iter().next() {
        return outcome.outcome;
    }
    qmgr.put("DS.ACK.Q", ack.to_message()).unwrap();
    clock.advance(Millis(1_000));
    messenger.pump().unwrap().remove(0).outcome
}

fn grace_ablation() {
    println!("## Eager deadlines vs. ack grace (read at t=40, window 100)\n");
    header(&["ack transit (ms)", "grace 0 (eager)", "grace 100"]);
    for transit in [10u64, 50, 90, 150] {
        let eager = grace_scenario(transit, 0);
        let graced = grace_scenario(transit, 100);
        row(&[transit.to_string(), eager.to_string(), graced.to_string()]);
    }
    println!();
    println!(
        "expected shape: eager evaluation fails once the ack is still in flight when the \
         deadline passes (transit pushing arrival past t=100), even though the read itself \
         was timely; a grace window accepts the timely-stamped late ack, at the price of a \
         later decision."
    );
}

fn main() {
    println!("# EA — design-choice ablations\n");
    journal_ablation();
    grace_ablation();
    emit_metrics();
}
