//! ET — transport comparison: in-process `Link` vs. loopback TCP.
//!
//! For each transport mode and channel-pair count, the experiment stands
//! up `pairs` independent sender→receiver manager pairs, connects each
//! with a one-way channel over the mode's transport, floods N messages
//! per pair from concurrent producer threads, and waits for every message
//! to land on the remote queue. Reported: end-to-end msgs/sec (wall clock
//! from first put to last delivery) and the p50/p95 of the transport's
//! own per-batch send→ack latency histogram
//! (`mq.transport.batch_micros`, shared per mode run via one
//! observability hub).
//!
//! The point of the experiment is to price the real wire: loopback TCP
//! pays framing, CRC, kernel round trips and acks. Three mechanisms keep
//! the socket path competitive with in-proc delivery, and each is gated
//! here:
//!
//! * **Batching** (up to `mq::channel::MAX_BATCH` envelopes per frame)
//!   amortizes the per-frame overhead.
//! * **Pipelining + coalesced acks**: the mover keeps a window of batches
//!   in flight and the acceptor acknowledges a whole readable burst with
//!   one cumulative watermark, so throughput is no longer one
//!   send→ack round trip per batch. The 8-pair TCP run asserts a
//!   throughput floor above the old lockstep transport's measured rate
//!   (`--quick` uses a looser floor — with 500 msgs/pair, startup and
//!   warm-up weigh heavier).
//! * **Encode-once**: a message's wire image is computed once and shared
//!   by reference into every frame. Each TCP run asserts the process-wide
//!   `mq.codec.encodes` delta stayed at (or below) one encode per
//!   message — zero per-hop payload copies on the send path.
//!
//! The 64-pair TCP run is the aggregate stressor: 128 managers and 64
//! sockets multiplexed onto the sharded reactor, where a
//! thread-per-connection design would burn its time context-switching.
//! It gates on aggregate throughput holding up and on reconnects staying
//! near zero — a reconnect storm is how this fleet fails when liveness
//! probing misreads scheduler starvation as a dead peer. Note the
//! per-batch latency quantiles are **not** gated at scale: `batch_micros`
//! measures submit→ack, which with a 16-deep window includes queueing
//! delay behind earlier batches, so at 64 pairs on an oversubscribed
//! host the p50 sits near a second by design while throughput stays
//! high. On this class of box the ceiling is the in-process substrate
//! (compare the link rows), not the wire: 1-pair TCP lands within ~25%
//! of the in-proc link.
//!
//! Writes `BENCH_tcp.json`; `--quick` shrinks the message count for the
//! `check.sh` smoke run.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cond_bench::{emit_metrics, header, row};
use mq::channel::Channel;
use mq::net::Link;
use mq::transport::tcp::{TcpAcceptor, TcpConfig};
use mq::{Message, Obs, QueueAddress, QueueManager, SystemClock};

const LINK_PAIR_COUNTS: &[usize] = &[1, 8];
const TCP_PAIR_COUNTS: &[usize] = &[1, 8, 64];

/// Lockstep-era loopback throughput at 8 pairs (thread-per-connection
/// blocking transport, one send→ack round trip per batch): the floor the
/// pipelined reactor is measured against.
const LOCKSTEP_8PAIR_MSGS_PER_SEC: f64 = 95_682.5;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Link,
    Tcp,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Link => "in-proc-link",
            Mode::Tcp => "loopback-tcp",
        }
    }

    fn pair_counts(self) -> &'static [usize] {
        match self {
            Mode::Link => LINK_PAIR_COUNTS,
            Mode::Tcp => TCP_PAIR_COUNTS,
        }
    }
}

struct RunStats {
    msgs_per_sec: f64,
    batch_p50_us: u64,
    batch_p95_us: u64,
    batches: u64,
    reconnects: u64,
    /// Full message encodes performed during the run (process-wide
    /// `mq.codec.encodes` delta).
    encodes: u64,
}

/// One sender→receiver pair and the channel between them. Acceptors and
/// channels register with their managers, so shutdown is one call per
/// manager.
struct Pair {
    sender: Arc<QueueManager>,
    receiver: Arc<QueueManager>,
    _channel: Channel,
    _acceptor: Option<Arc<TcpAcceptor>>,
}

fn build_pair(mode: Mode, idx: usize, obs: &Arc<Obs>) -> Pair {
    let clock = SystemClock::new();
    let sender = QueueManager::builder(format!("QM.S{idx}"))
        .clock(clock.clone())
        .obs(obs.clone())
        .build()
        .unwrap();
    let receiver = QueueManager::builder(format!("QM.R{idx}"))
        .clock(clock)
        .obs(obs.clone())
        .build()
        .unwrap();
    receiver.create_queue("Q.IN").unwrap();
    let (channel, acceptor) = match mode {
        Mode::Link => (
            Channel::connect(&sender, &receiver, Link::ideal()).unwrap(),
            None,
        ),
        Mode::Tcp => {
            let acceptor = TcpAcceptor::bind(&receiver, "127.0.0.1:0").unwrap();
            // Liveness probing tuned for an oversubscribed host: the
            // 64-pair run multiplexes 128 managers' worth of threads
            // onto however many cores the box has, so a healthy peer's
            // ack can lag seconds behind. The default 2s silence
            // deadline would call that a dead peer and reconnect-storm;
            // the stressor measures the data plane, not the prober.
            let config = TcpConfig {
                heartbeat_interval: Duration::from_secs(2),
                read_timeout: Duration::from_secs(30),
                ..TcpConfig::default()
            };
            let channel =
                Channel::connect_tcp(&sender, receiver.name(), acceptor.local_addr(), config)
                    .unwrap();
            (channel, Some(acceptor))
        }
    };
    Pair {
        sender,
        receiver,
        _channel: channel,
        _acceptor: acceptor,
    }
}

fn run(mode: Mode, pairs: usize, msgs_per_pair: usize) -> RunStats {
    // One hub per run: every pair's transport accumulates into the same
    // mq.transport.* cells, so the histogram covers the whole fleet.
    let obs = Obs::new();
    let fleet: Vec<Pair> = (0..pairs).map(|i| build_pair(mode, i, &obs)).collect();
    // Give TCP supervisors time to finish their handshakes so the clock
    // measures steady-state moving, not connection establishment.
    if mode == Mode::Tcp {
        let deadline = Instant::now() + Duration::from_secs(30);
        while (obs.metrics().snapshot().counter("mq.transport.connects") as usize) < pairs {
            assert!(Instant::now() < deadline, "transports failed to connect");
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let encodes_before = mq::codec::message_encodes().get();

    let start = Instant::now();
    let producers: Vec<_> = fleet
        .iter()
        .map(|pair| {
            let sender = pair.sender.clone();
            let dest = QueueAddress::new(pair.receiver.name(), "Q.IN");
            std::thread::spawn(move || {
                for i in 0..msgs_per_pair {
                    sender
                        .put_to(&dest, Message::text(format!("m{i}")).build())
                        .unwrap();
                }
            })
        })
        .collect();
    for p in producers {
        p.join().unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    for pair in &fleet {
        let q = pair.receiver.queue("Q.IN").unwrap();
        while q.depth() < msgs_per_pair {
            assert!(
                Instant::now() < deadline,
                "{}: delivery stalled at {}/{msgs_per_pair}",
                mode.name(),
                q.depth()
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let encodes = mq::codec::message_encodes().get() - encodes_before;

    let hist = obs.metrics().histogram("mq.transport.batch_micros");
    let snap = obs.metrics().snapshot();
    let stats = RunStats {
        msgs_per_sec: (pairs * msgs_per_pair) as f64 / wall,
        batch_p50_us: hist.quantile(0.50),
        batch_p95_us: hist.quantile(0.95),
        batches: snap.counter("mq.transport.batches_sent"),
        reconnects: snap.counter("mq.transport.reconnects"),
        encodes,
    };
    assert!(stats.batches > 0, "transport must have moved batches");
    if mode == Mode::Tcp {
        // Encode-once: every message crosses the wire from one cached
        // wire image — retransmits after a reconnect reuse it too, so
        // the ceiling is exactly one encode per message produced.
        let total = (pairs * msgs_per_pair) as u64;
        assert!(
            stats.encodes <= total,
            "send path re-encoded payloads: {} encodes for {} messages",
            stats.encodes,
            total,
        );
    }
    for pair in fleet {
        pair.sender.shutdown();
        pair.receiver.shutdown();
    }
    stats
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let msgs_per_pair = if quick { 500 } else { 5_000 };

    println!(
        "# ET — transport: in-proc link vs loopback TCP ({msgs_per_pair} msgs/pair{})\n",
        if quick { ", --quick" } else { "" }
    );
    header(&[
        "mode", "pairs", "msgs/s", "batch p50 us", "batch p95 us", "batches", "reconnects",
        "encodes",
    ]);

    let mut results: Vec<(Mode, usize, RunStats)> = Vec::new();
    for &mode in &[Mode::Link, Mode::Tcp] {
        for &pairs in mode.pair_counts() {
            let stats = run(mode, pairs, msgs_per_pair);
            row(&[
                mode.name().to_owned(),
                pairs.to_string(),
                format!("{:.0}", stats.msgs_per_sec),
                stats.batch_p50_us.to_string(),
                stats.batch_p95_us.to_string(),
                stats.batches.to_string(),
                stats.reconnects.to_string(),
                stats.encodes.to_string(),
            ]);
            results.push((mode, pairs, stats));
        }
    }

    // Pipelining gates, against the lockstep-era baseline recorded above.
    // The full run must beat lockstep with margin; --quick (fewer
    // messages, so startup and histogram warm-up weigh heavier) gates at
    // a conservative floor that still catches a regression to
    // round-trip-per-batch behaviour.
    for (mode, pairs, stats) in &results {
        if *mode != Mode::Tcp {
            continue;
        }
        if *pairs == 8 {
            let floor = if quick {
                0.6 * LOCKSTEP_8PAIR_MSGS_PER_SEC
            } else {
                1.05 * LOCKSTEP_8PAIR_MSGS_PER_SEC
            };
            assert!(
                stats.msgs_per_sec >= floor,
                "8-pair loopback throughput {:.0} msgs/s below the pipelining \
                 floor {floor:.0} (lockstep baseline {LOCKSTEP_8PAIR_MSGS_PER_SEC})",
                stats.msgs_per_sec,
            );
        }
        if *pairs == 64 {
            // The aggregate stressor must not collapse: before the
            // silence-deadline fix, starvation-induced false heartbeat
            // misses put this run in a reconnect storm (hundreds of
            // reconnects, throughput down ~6x). Both symptoms are gated.
            assert!(
                stats.reconnects <= 4,
                "64-pair run reconnect storm: {} reconnects",
                stats.reconnects,
            );
            assert!(
                stats.msgs_per_sec >= 30_000.0,
                "64-pair aggregate throughput collapsed: {:.0} msgs/s",
                stats.msgs_per_sec,
            );
        }
    }

    let runs_json: Vec<String> = results
        .iter()
        .map(|(mode, pairs, s)| {
            format!(
                concat!(
                    "    {{\"mode\": \"{}\", \"pairs\": {}, \"msgs_per_sec\": {:.1}, ",
                    "\"batch_p50_us\": {}, \"batch_p95_us\": {}, \"batches\": {}, ",
                    "\"reconnects\": {}, \"encodes\": {}}}"
                ),
                mode.name(),
                pairs,
                s.msgs_per_sec,
                s.batch_p50_us,
                s.batch_p95_us,
                s.batches,
                s.reconnects,
                s.encodes,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"ET transport link vs tcp\",\n  \"quick\": {},\n  \"msgs_per_pair\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        quick,
        msgs_per_pair,
        runs_json.join(",\n"),
    );
    std::fs::write("BENCH_tcp.json", json).unwrap();
    println!("\nwrote BENCH_tcp.json");

    emit_metrics();
}
