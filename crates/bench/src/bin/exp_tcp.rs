//! ET — transport comparison: in-process `Link` vs. loopback TCP.
//!
//! For each transport mode and channel-pair count (1 and 8), the
//! experiment stands up `pairs` independent sender→receiver manager
//! pairs, connects each with a one-way channel over the mode's transport,
//! floods N messages per pair from concurrent producer threads, and waits
//! for every message to land on the remote queue. Reported: end-to-end
//! msgs/sec (wall clock from first put to last delivery) and the p50/p95
//! of the transport's own per-batch send→ack latency histogram
//! (`mq.transport.batch_micros`, shared per mode run via one observability
//! hub).
//!
//! The point of the experiment is to price the real wire: loopback TCP
//! pays framing, CRC, kernel round trips and an ack per batch, where the
//! in-process link is a function call. Batching (up to
//! `mq::channel::MAX_BATCH` envelopes per frame) is what keeps the socket
//! path within an order of magnitude of in-proc throughput.
//!
//! Writes `BENCH_tcp.json`; `--quick` shrinks the message count for the
//! `check.sh` smoke run.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cond_bench::{emit_metrics, header, row};
use mq::channel::Channel;
use mq::net::Link;
use mq::transport::tcp::{TcpAcceptor, TcpConfig};
use mq::{Message, Obs, QueueAddress, QueueManager, SystemClock};

const PAIR_COUNTS: [usize; 2] = [1, 8];

#[derive(Clone, Copy)]
enum Mode {
    Link,
    Tcp,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Link => "in-proc-link",
            Mode::Tcp => "loopback-tcp",
        }
    }
}

struct RunStats {
    msgs_per_sec: f64,
    batch_p50_us: u64,
    batch_p95_us: u64,
    batches: u64,
    reconnects: u64,
}

/// One sender→receiver pair and the channel between them. Acceptors and
/// channels register with their managers, so shutdown is one call per
/// manager.
struct Pair {
    sender: Arc<QueueManager>,
    receiver: Arc<QueueManager>,
    _channel: Channel,
    _acceptor: Option<Arc<TcpAcceptor>>,
}

fn build_pair(mode: Mode, idx: usize, obs: &Arc<Obs>) -> Pair {
    let clock = SystemClock::new();
    let sender = QueueManager::builder(format!("QM.S{idx}"))
        .clock(clock.clone())
        .obs(obs.clone())
        .build()
        .unwrap();
    let receiver = QueueManager::builder(format!("QM.R{idx}"))
        .clock(clock)
        .obs(obs.clone())
        .build()
        .unwrap();
    receiver.create_queue("Q.IN").unwrap();
    let (channel, acceptor) = match mode {
        Mode::Link => (
            Channel::connect(&sender, &receiver, Link::ideal()).unwrap(),
            None,
        ),
        Mode::Tcp => {
            let acceptor = TcpAcceptor::bind(&receiver, "127.0.0.1:0").unwrap();
            let channel = Channel::connect_tcp(
                &sender,
                receiver.name(),
                acceptor.local_addr(),
                TcpConfig::default(),
            )
            .unwrap();
            (channel, Some(acceptor))
        }
    };
    Pair {
        sender,
        receiver,
        _channel: channel,
        _acceptor: acceptor,
    }
}

fn run(mode: Mode, pairs: usize, msgs_per_pair: usize) -> RunStats {
    // One hub per run: every pair's transport accumulates into the same
    // mq.transport.* cells, so the histogram covers the whole fleet.
    let obs = Obs::new();
    let fleet: Vec<Pair> = (0..pairs).map(|i| build_pair(mode, i, &obs)).collect();
    // Give TCP supervisors time to finish their handshakes so the clock
    // measures steady-state moving, not connection establishment.
    for pair in &fleet {
        let deadline = Instant::now() + Duration::from_secs(10);
        while pair.sender.metrics_snapshot().counter("mq.transport.connects") == 0
            && matches!(mode, Mode::Tcp)
        {
            assert!(Instant::now() < deadline, "transport failed to connect");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    let start = Instant::now();
    let producers: Vec<_> = fleet
        .iter()
        .map(|pair| {
            let sender = pair.sender.clone();
            let dest = QueueAddress::new(pair.receiver.name(), "Q.IN");
            std::thread::spawn(move || {
                for i in 0..msgs_per_pair {
                    sender
                        .put_to(&dest, Message::text(format!("m{i}")).build())
                        .unwrap();
                }
            })
        })
        .collect();
    for p in producers {
        p.join().unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    for pair in &fleet {
        let q = pair.receiver.queue("Q.IN").unwrap();
        while q.depth() < msgs_per_pair {
            assert!(
                Instant::now() < deadline,
                "{}: delivery stalled at {}/{msgs_per_pair}",
                mode.name(),
                q.depth()
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let wall = start.elapsed().as_secs_f64();

    let hist = obs.metrics().histogram("mq.transport.batch_micros");
    let snap = obs.metrics().snapshot();
    let stats = RunStats {
        msgs_per_sec: (pairs * msgs_per_pair) as f64 / wall,
        batch_p50_us: hist.quantile(0.50),
        batch_p95_us: hist.quantile(0.95),
        batches: snap.counter("mq.transport.batches_sent"),
        reconnects: snap.counter("mq.transport.reconnects"),
    };
    assert!(stats.batches > 0, "transport must have moved batches");
    for pair in fleet {
        pair.sender.shutdown();
        pair.receiver.shutdown();
    }
    stats
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let msgs_per_pair = if quick { 500 } else { 5_000 };

    println!(
        "# ET — transport: in-proc link vs loopback TCP ({msgs_per_pair} msgs/pair{})\n",
        if quick { ", --quick" } else { "" }
    );
    header(&[
        "mode", "pairs", "msgs/s", "batch p50 us", "batch p95 us", "batches", "reconnects",
    ]);

    let mut results: Vec<(Mode, usize, RunStats)> = Vec::new();
    for &mode in &[Mode::Link, Mode::Tcp] {
        for &pairs in &PAIR_COUNTS {
            let stats = run(mode, pairs, msgs_per_pair);
            row(&[
                mode.name().to_owned(),
                pairs.to_string(),
                format!("{:.0}", stats.msgs_per_sec),
                stats.batch_p50_us.to_string(),
                stats.batch_p95_us.to_string(),
                stats.batches.to_string(),
                stats.reconnects.to_string(),
            ]);
            results.push((mode, pairs, stats));
        }
    }

    let runs_json: Vec<String> = results
        .iter()
        .map(|(mode, pairs, s)| {
            format!(
                concat!(
                    "    {{\"mode\": \"{}\", \"pairs\": {}, \"msgs_per_sec\": {:.1}, ",
                    "\"batch_p50_us\": {}, \"batch_p95_us\": {}, \"batches\": {}, ",
                    "\"reconnects\": {}}}"
                ),
                mode.name(),
                pairs,
                s.msgs_per_sec,
                s.batch_p50_us,
                s.batch_p95_us,
                s.batches,
                s.reconnects,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"ET transport link vs tcp\",\n  \"quick\": {},\n  \"msgs_per_pair\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        quick,
        msgs_per_pair,
        runs_json.join(",\n"),
    );
    std::fs::write("BENCH_tcp.json", json).unwrap();
    println!("\nwrote BENCH_tcp.json");

    emit_metrics();
}
