//! The application-level baseline: condition management hand-rolled on top
//! of raw `mq`, with no conditional-messaging middleware.
//!
//! This is what the paper's introduction describes applications being
//! "forced to implement" today: the sender invents a correlation scheme,
//! sends one message per queue, sets up and drains its own acknowledgment
//! queue, keeps its own per-message deadline bookkeeping, and every
//! receiver must remember to send an explicit acknowledgment in the
//! sender's expected format. The benchmarks compare this against the
//! middleware path to quantify the overhead the middleware adds (and the
//! application code it removes).

use std::collections::HashMap;
use std::sync::Arc;

use mq::{Message, MqResult, QueueManager, Wait};
use simtime::{Millis, Time};

/// Property carrying the baseline's hand-rolled correlation id.
pub const BASELINE_ID: &str = "app.baseline.id";
/// Property naming the queue acks must be sent to.
pub const BASELINE_ACK_QUEUE: &str = "app.baseline.ack_queue";
/// Property carrying the receiver's read timestamp on a baseline ack.
pub const BASELINE_READ_TS: &str = "app.baseline.read_ts";

struct PendingNotification {
    sent_at: Time,
    window: Millis,
    expected: usize,
    timely_acks: usize,
    late: bool,
}

/// Hand-rolled sender-side bookkeeping: one instance per application.
pub struct BaselineSender {
    qmgr: Arc<QueueManager>,
    ack_queue: String,
    next_id: u64,
    pending: HashMap<u64, PendingNotification>,
}

impl BaselineSender {
    /// Sets up the sender's private ack queue.
    ///
    /// # Errors
    ///
    /// Queue-creation failures.
    pub fn new(qmgr: Arc<QueueManager>, ack_queue: impl Into<String>) -> MqResult<BaselineSender> {
        let ack_queue = ack_queue.into();
        qmgr.ensure_queue(&ack_queue)?;
        Ok(BaselineSender {
            qmgr,
            ack_queue,
            next_id: 0,
            pending: HashMap::new(),
        })
    }

    /// Sends `payload` to each queue and starts tracking the all-must-read
    /// deadline, mirroring the conditional `pickup_within` on all
    /// destinations.
    ///
    /// # Errors
    ///
    /// Put failures.
    pub fn send_notification(
        &mut self,
        payload: &str,
        queues: &[String],
        window: Millis,
    ) -> MqResult<u64> {
        let id = self.next_id;
        self.next_id += 1;
        for queue in queues {
            let msg = Message::text(payload)
                .property(BASELINE_ID, id as i64)
                .property(BASELINE_ACK_QUEUE, self.ack_queue.as_str())
                .persistent(true)
                .build();
            self.qmgr.put(queue, msg)?;
        }
        self.pending.insert(
            id,
            PendingNotification {
                sent_at: self.qmgr.clock().now(),
                window,
                expected: queues.len(),
                timely_acks: 0,
                late: false,
            },
        );
        Ok(id)
    }

    /// Drains the ack queue, updates bookkeeping, applies deadlines, and
    /// returns `(id, success)` for every newly decided notification.
    ///
    /// # Errors
    ///
    /// Get failures.
    pub fn poll(&mut self) -> MqResult<Vec<(u64, bool)>> {
        while let Some(ack) = self.qmgr.get(&self.ack_queue, Wait::NoWait)? {
            let Some(id) = ack.i64_property(BASELINE_ID).map(|v| v as u64) else {
                continue;
            };
            let Some(read_ts) = ack.i64_property(BASELINE_READ_TS).map(|v| Time(v as u64)) else {
                continue;
            };
            if let Some(p) = self.pending.get_mut(&id) {
                if read_ts <= p.sent_at + p.window {
                    p.timely_acks += 1;
                } else {
                    p.late = true;
                }
            }
        }
        let now = self.qmgr.clock().now();
        let decided: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.timely_acks >= p.expected || p.late || now > p.sent_at + p.window)
            .map(|(id, _)| *id)
            .collect();
        let mut out = Vec::new();
        for id in decided {
            let p = self.pending.remove(&id).expect("key present");
            out.push((id, p.timely_acks >= p.expected && !p.late));
        }
        Ok(out)
    }

    /// Notifications still awaiting a decision.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

/// Hand-rolled receiver behaviour: read a message and explicitly send the
/// acknowledgment the sender expects.
///
/// # Errors
///
/// Get/put failures.
pub fn baseline_receive(qmgr: &Arc<QueueManager>, queue: &str) -> MqResult<Option<Message>> {
    let Some(msg) = qmgr.get(queue, Wait::NoWait)? else {
        return Ok(None);
    };
    if let (Some(id), Some(ack_queue)) = (
        msg.i64_property(BASELINE_ID),
        msg.str_property(BASELINE_ACK_QUEUE).map(str::to_owned),
    ) {
        let ack = Message::text("")
            .property(BASELINE_ID, id)
            .property(BASELINE_READ_TS, qmgr.clock().now().as_millis() as i64)
            .persistent(true)
            .build();
        qmgr.put(&ack_queue, ack)?;
    }
    Ok(Some(msg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::SimClock;

    fn setup(n: usize) -> (Arc<SimClock>, Arc<QueueManager>, Vec<String>) {
        let clock = SimClock::new();
        let qmgr = QueueManager::builder("QM1")
            .clock(clock.clone())
            .build()
            .unwrap();
        let queues: Vec<String> = (0..n).map(|i| format!("Q{i}")).collect();
        for q in &queues {
            qmgr.create_queue(q).unwrap();
        }
        (clock, qmgr, queues)
    }

    #[test]
    fn baseline_success_path() {
        let (clock, qmgr, queues) = setup(3);
        let mut sender = BaselineSender::new(qmgr.clone(), "APP.ACK").unwrap();
        let id = sender
            .send_notification("hello", &queues, Millis(100))
            .unwrap();
        clock.advance(Millis(10));
        for q in &queues {
            baseline_receive(&qmgr, q).unwrap().unwrap();
        }
        let decided = sender.poll().unwrap();
        assert_eq!(decided, vec![(id, true)]);
        assert_eq!(sender.pending_count(), 0);
    }

    #[test]
    fn baseline_failure_on_missing_ack() {
        let (clock, qmgr, queues) = setup(2);
        let mut sender = BaselineSender::new(qmgr.clone(), "APP.ACK").unwrap();
        let id = sender
            .send_notification("hello", &queues, Millis(100))
            .unwrap();
        clock.advance(Millis(10));
        baseline_receive(&qmgr, &queues[0]).unwrap().unwrap();
        assert!(sender.poll().unwrap().is_empty(), "still waiting");
        clock.advance(Millis(200));
        let decided = sender.poll().unwrap();
        assert_eq!(decided, vec![(id, false)]);
    }

    #[test]
    fn baseline_failure_on_late_ack() {
        let (clock, qmgr, queues) = setup(1);
        let mut sender = BaselineSender::new(qmgr.clone(), "APP.ACK").unwrap();
        let id = sender
            .send_notification("hello", &queues, Millis(50))
            .unwrap();
        clock.advance(Millis(80));
        baseline_receive(&qmgr, &queues[0]).unwrap().unwrap();
        let decided = sender.poll().unwrap();
        assert_eq!(decided, vec![(id, false)]);
    }
}
