//! Workload builders shared by the benchmarks and experiments: the paper's
//! two running-example conditions plus parameterized fan-out and tree
//! shapes.

use condmsg::{Condition, Destination, DestinationSet};
use simtime::Millis;

/// A flat all-must-pick-up fan-out over `n` queues `Q.D0..`.
pub fn fan_out(n: usize, window: Millis) -> Condition {
    if n == 1 {
        return Destination::queue("QM1", "Q.D0")
            .pickup_within(window)
            .into();
    }
    DestinationSet::of(
        (0..n)
            .map(|i| Destination::queue("QM1", format!("Q.D{i}")).into())
            .collect(),
    )
    .pickup_within(window)
    .into()
}

/// The paper's Fig. 4 condition with one "day" = `day` milliseconds, over
/// queues `Q.R1..Q.R4`.
pub fn example1(day: u64) -> Condition {
    let qr3 = Destination::queue("QM1", "Q.R3")
        .recipient("receiver3")
        .process_within(Millis(7 * day));
    let others = DestinationSet::of(vec![
        Destination::queue("QM1", "Q.R1")
            .recipient("receiver1")
            .into(),
        Destination::queue("QM1", "Q.R2")
            .recipient("receiver2")
            .into(),
        Destination::queue("QM1", "Q.R4")
            .recipient("receiver4")
            .into(),
    ])
    .process_within(Millis(11 * day))
    .min_process(2);
    DestinationSet::of(vec![qr3.into(), others.into()])
        .pickup_within(Millis(2 * day))
        .into()
}

/// The paper's Fig. 5 condition (shared queue `Q.CENTRAL`).
pub fn example2(window: Millis) -> Condition {
    Destination::queue("QM1", "Q.CENTRAL")
        .pickup_within(window)
        .into()
}

/// A balanced condition tree with the given `depth` and `fanout`
/// (leaves = fanout^depth), each level adding a pick-up window and a
/// min-count — stresses compilation and evaluation (E3 / Fig. 3).
pub fn deep_tree(depth: u32, fanout: usize, window: Millis) -> Condition {
    fn build(level: u32, fanout: usize, window: Millis, next_leaf: &mut usize) -> Condition {
        if level == 0 {
            let leaf = *next_leaf;
            *next_leaf += 1;
            return Destination::queue("QM1", format!("Q.D{leaf}")).into();
        }
        let members = (0..fanout)
            .map(|_| build(level - 1, fanout, window, next_leaf))
            .collect();
        DestinationSet::of(members)
            .pickup_within(window)
            .min_pickup(1.max(fanout as u32 / 2))
            .into()
    }
    let mut next_leaf = 0;
    build(depth, fanout, window, &mut next_leaf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_shapes() {
        assert_eq!(fan_out(1, Millis(10)).leaf_count(), 1);
        assert_eq!(fan_out(8, Millis(10)).leaf_count(), 8);
        fan_out(8, Millis(10)).validate().unwrap();
    }

    #[test]
    fn example_conditions_validate() {
        example1(1000).validate().unwrap();
        assert_eq!(example1(1000).leaf_count(), 4);
        example2(Millis(20_000)).validate().unwrap();
    }

    #[test]
    fn deep_tree_leaf_count() {
        let tree = deep_tree(3, 3, Millis(100));
        tree.validate().unwrap();
        assert_eq!(tree.leaf_count(), 27);
        let wide = deep_tree(1, 32, Millis(100));
        wide.validate().unwrap();
        assert_eq!(wide.leaf_count(), 32);
    }
}
