//! Shared harness code for the benchmarks and the `exp_*` experiment
//! binaries: workload builders, a deterministic scenario driver, and the
//! **application-level baseline** (S22 in DESIGN.md) — what a sender has
//! to hand-roll *without* conditional messaging, used as the comparator
//! the paper argues against ("applications themselves are forced to
//! implement the management of such conditions on messages").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod workload;

use std::sync::{Arc, OnceLock};

use condmsg::{CondConfig, ConditionalMessenger};
use mq::journal::NullJournal;
use mq::{Obs, QueueManager, SharedClock};
use simtime::{SimClock, SystemClock};

static SHARED_OBS: OnceLock<Arc<Obs>> = OnceLock::new();

/// The experiment-wide observability hub. Every world built by this
/// harness reports into it, so metrics aggregate across all runs of a
/// binary and a single [`emit_metrics`] at the end covers them all.
pub fn shared_obs() -> Arc<Obs> {
    SHARED_OBS.get_or_init(Obs::new).clone()
}

/// A ready-to-use single-manager world for experiments.
pub struct World {
    /// The queue manager.
    pub qmgr: Arc<QueueManager>,
    /// The conditional messaging service attached to it.
    pub messenger: Arc<ConditionalMessenger>,
}

/// Builds a world on a system clock with the given application queues and
/// a null journal (pure in-memory throughput; persistence is measured
/// separately in `mq_core`).
pub fn system_world(queues: &[String]) -> World {
    build_world(SystemClock::new(), queues, CondConfig::default())
}

/// Builds a deterministic world on the given sim clock.
pub fn sim_world(clock: Arc<SimClock>, queues: &[String]) -> World {
    build_world(clock, queues, CondConfig::default())
}

/// [`system_world`] with explicit messenger configuration (event-driven
/// mode, ack batch size, …).
pub fn system_world_cfg(queues: &[String], config: CondConfig) -> World {
    build_world(SystemClock::new(), queues, config)
}

/// [`sim_world`] with explicit messenger configuration.
pub fn sim_world_cfg(clock: Arc<SimClock>, queues: &[String], config: CondConfig) -> World {
    build_world(clock, queues, config)
}

fn build_world(clock: SharedClock, queues: &[String], config: CondConfig) -> World {
    let qmgr = QueueManager::builder("QM1")
        .clock(clock)
        .journal(NullJournal::new())
        .obs(shared_obs())
        .build()
        .expect("queue manager");
    for q in queues {
        qmgr.create_queue(q).expect("queue");
    }
    let messenger = ConditionalMessenger::with_config(qmgr.clone(), config).expect("messenger");
    World { qmgr, messenger }
}

/// Names `n` destination queues `Q.D0..Q.Dn`.
pub fn queue_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("Q.D{i}")).collect()
}

/// Prints the experiment-wide metrics snapshot at the tail of an
/// experiment binary: every `mq.*` / `cond.*` / `dsphere.*` metric
/// registered by any world this binary built, as `name value` lines.
pub fn emit_metrics() {
    let snapshot = shared_obs().snapshot();
    println!();
    println!(
        "### metrics ({} of {} populated)",
        snapshot.populated(),
        snapshot.len()
    );
    print!("{}", snapshot.render());
}

/// Nearest-rank percentile of `samples` for `p` in `[0, 1]`, or 0 when
/// empty. Copies and sorts internally; every `exp_*` binary used to
/// hand-roll this.
pub fn percentile(samples: &[u64], p: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// [`percentile`] over float samples (NaNs sort last), or NaN when empty.
pub fn percentile_f64(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Arithmetic mean of `samples`, or NaN when empty.
pub fn mean(samples: &[u64]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.iter().sum::<u64>() as f64 / samples.len() as f64
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown-style table header with separator.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}
