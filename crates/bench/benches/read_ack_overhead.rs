//! E5 / paper Fig. 7 — the cost of implicit acknowledgments on the read
//! path.
//!
//! Compares:
//! * `raw_get`: a plain destructive get (no acknowledgment),
//! * `conditional_read`: `ConditionalReceiver::read_message` on a
//!   conditional original (read-ack + receiver-log entry, one transaction),
//! * `raw_tx_get`: get + commit in a messaging transaction,
//! * `conditional_tx_read`: transactional read + `commit_tx` (processed-ack
//!   and log entry staged into the same commit).

use cond_bench::{queue_names, system_world, workload, World};
use condmsg::ConditionalReceiver;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mq::{Message, Wait};
use simtime::Millis;

fn stage_conditional(world: &World) {
    // Settle the previous cycle first (drain the ack, finalize, drop the
    // outcome) so the service queues stay at steady-state depth and the
    // timed region measures the read path, not unbounded state growth.
    for outcome in world.messenger.pump().unwrap() {
        world
            .messenger
            .take_outcome(outcome.cond_id, Wait::NoWait)
            .unwrap();
    }
    world
        .messenger
        .send_message("payload", &workload::fan_out(1, Millis(600_000)))
        .unwrap();
}

fn stage_raw(world: &World) {
    world
        .qmgr
        .put("Q.D0", Message::text("payload").persistent(true).build())
        .unwrap();
}

fn bench_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_ack_overhead");
    group.throughput(Throughput::Elements(1));
    let world = system_world(&queue_names(1));

    group.bench_function("raw_get", |b| {
        b.iter_batched(
            || stage_raw(&world),
            |()| world.qmgr.get("Q.D0", Wait::NoWait).unwrap().unwrap(),
            BatchSize::SmallInput,
        );
    });

    group.bench_function("conditional_read", |b| {
        let mut receiver = ConditionalReceiver::new(world.qmgr.clone()).unwrap();
        b.iter_batched(
            || stage_conditional(&world),
            |()| {
                receiver
                    .read_message("Q.D0", Wait::NoWait)
                    .unwrap()
                    .unwrap()
            },
            BatchSize::SmallInput,
        );
        // Keep service queues bounded between bench phases.
        world.qmgr.queue("DS.ACK.Q").unwrap().purge().unwrap();
    });

    group.bench_function("raw_tx_get", |b| {
        b.iter_batched(
            || stage_raw(&world),
            |()| {
                let mut s = world.qmgr.session();
                s.begin().unwrap();
                let m = s.get("Q.D0", Wait::NoWait).unwrap().unwrap();
                s.commit().unwrap();
                m
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("conditional_tx_read", |b| {
        let mut receiver = ConditionalReceiver::new(world.qmgr.clone()).unwrap();
        b.iter_batched(
            || stage_conditional(&world),
            |()| {
                receiver.begin_tx().unwrap();
                let m = receiver
                    .read_message("Q.D0", Wait::NoWait)
                    .unwrap()
                    .unwrap();
                receiver.commit_tx().unwrap();
                m
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_reads
}
criterion_main!(benches);
