//! E3 / paper Fig. 3 — cost of the condition object model: compiling a
//! condition tree into constraints and evaluating it against a full set of
//! acknowledgments, as a function of tree width and depth.
//!
//! Expected shape: both compile and evaluate are linear in the number of
//! destination leaves (the composite flattens into per-leaf constraints).

use cond_bench::workload;
use condmsg::{AckState, CompiledCondition};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simtime::{Millis, Time};

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_tree/compile");
    for (label, condition) in [
        ("flat_4", workload::fan_out(4, Millis(100))),
        ("flat_32", workload::fan_out(32, Millis(100))),
        ("flat_256", workload::fan_out(256, Millis(100))),
        ("deep_3x3", workload::deep_tree(3, 3, Millis(100))),
        ("deep_4x4", workload::deep_tree(4, 4, Millis(100))),
        ("paper_fig4", workload::example1(1_000)),
    ] {
        group.throughput(Throughput::Elements(condition.leaf_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(label), &condition, |b, cond| {
            b.iter(|| CompiledCondition::compile(cond).unwrap());
        });
    }
    group.finish();
}

fn bench_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_tree/evaluate");
    for (label, condition) in [
        ("flat_4", workload::fan_out(4, Millis(100))),
        ("flat_32", workload::fan_out(32, Millis(100))),
        ("flat_256", workload::fan_out(256, Millis(100))),
        ("deep_4x4", workload::deep_tree(4, 4, Millis(100))),
        ("paper_fig4", workload::example1(1_000)),
    ] {
        let compiled = CompiledCondition::compile(&condition).unwrap();
        let n = compiled.leaves().len();
        let mut acks = AckState::new(n);
        for leaf in 0..n as u32 {
            acks.record_processed(leaf, Time(10), Time(20), None);
        }
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(label), &compiled, |b, c| {
            b.iter(|| c.evaluate(&acks, Time(0), Time(50)));
        });
    }
    group.finish();
}

fn bench_incremental_acks(c: &mut Criterion) {
    // The evaluation manager's actual workload: apply one ack, re-evaluate.
    let mut group = c.benchmark_group("eval_tree/ack_apply_and_evaluate");
    for n in [4usize, 32, 256] {
        let compiled = CompiledCondition::compile(&workload::fan_out(n, Millis(100))).unwrap();
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &compiled, |b, c| {
            let mut acks = AckState::new(n);
            let mut leaf = 0u32;
            b.iter(|| {
                acks.record_read(leaf % n as u32, Time(10), None);
                leaf += 1;
                c.evaluate(&acks, Time(0), Time(50))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_compile, bench_evaluate, bench_incremental_acks
}
criterion_main!(benches);
