//! E4 / paper Fig. 6 — the cost of the conditional-messaging indirection
//! on the send path.
//!
//! Compares, for N ∈ {1, 2, 4, 8, 16} destinations:
//! * `raw`: N direct `QueueManager::put` calls (what a JMS app would do),
//! * `conditional`: one `send_message` (fan-out + send-record WAL + parked
//!   compensations, all in one local transaction).
//!
//! Expected shape: a small constant factor (the extra control properties,
//! the log record and one compensation per destination), amortizing as N
//! grows.

use cond_bench::{queue_names, system_world, workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mq::Message;
use simtime::Millis;

const PAYLOAD: &str = "group meeting notification payload";

fn bench_send(c: &mut Criterion) {
    let mut group = c.benchmark_group("send_overhead");
    for n in [1usize, 2, 4, 8, 16] {
        group.throughput(Throughput::Elements(n as u64));

        let world = system_world(&queue_names(n));
        group.bench_with_input(BenchmarkId::new("raw_put", n), &n, |b, &n| {
            b.iter(|| {
                for i in 0..n {
                    world
                        .qmgr
                        .put(
                            &format!("Q.D{i}"),
                            Message::text(PAYLOAD).persistent(true).build(),
                        )
                        .unwrap();
                }
            });
        });
        // Drain what the raw benchmark enqueued.
        for i in 0..n {
            world
                .qmgr
                .queue(&format!("Q.D{i}"))
                .unwrap()
                .purge()
                .unwrap();
        }

        let condition = workload::fan_out(n, Millis(60_000));
        group.bench_with_input(BenchmarkId::new("conditional_send", n), &n, |b, _| {
            b.iter(|| world.messenger.send_message(PAYLOAD, &condition).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_send
}
criterion_main!(benches);
