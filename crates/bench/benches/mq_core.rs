//! Substrate microbenchmarks: queue operations, selectors, codec and
//! journal append paths. These calibrate the numbers the higher-level
//! benches build on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mq::codec::{WireDecode, WireEncode};
use mq::journal::{FileJournal, Journal, JournalRecord, MemJournal};
use mq::selector::Selector;
use mq::{Message, Priority, QueueManager, Wait};

fn sample_message() -> Message {
    Message::text("a modest payload for benchmarking purposes")
        .property("kind", "flight")
        .property("altitude", 31_000i64)
        .property("urgent", true)
        .priority(Priority::new(7))
        .build()
}

fn bench_queue_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("mq/queue");
    group.throughput(Throughput::Elements(1));

    let qmgr = QueueManager::builder("QM1").build().unwrap();
    qmgr.create_queue("Q").unwrap();
    group.bench_function("put", |b| {
        b.iter(|| qmgr.put("Q", sample_message()).unwrap());
    });
    qmgr.queue("Q").unwrap().purge().unwrap();
    group.bench_function("put_get_roundtrip", |b| {
        b.iter(|| {
            qmgr.put("Q", sample_message()).unwrap();
            qmgr.get("Q", Wait::NoWait).unwrap().unwrap()
        });
    });
    group.bench_function("transacted_roundtrip", |b| {
        b.iter(|| {
            let mut s = qmgr.session();
            s.begin().unwrap();
            s.put("Q", sample_message()).unwrap();
            s.commit().unwrap();
            let mut s = qmgr.session();
            s.begin().unwrap();
            let m = s.get("Q", Wait::NoWait).unwrap().unwrap();
            s.commit().unwrap();
            m
        });
    });
    group.finish();
}

fn bench_selector(c: &mut Criterion) {
    let mut group = c.benchmark_group("mq/selector");
    let msg = sample_message();
    group.bench_function("parse", |b| {
        b.iter(|| Selector::parse("kind = 'flight' AND altitude > 10000 AND urgent").unwrap());
    });
    let sel = Selector::parse("kind = 'flight' AND altitude > 10000 AND urgent").unwrap();
    group.bench_function("match", |b| {
        b.iter(|| sel.matches(&msg));
    });
    let complex = Selector::parse(
        "kind IN ('flight','train') AND altitude BETWEEN 10000 AND 40000 \
         AND callsign LIKE 'UA%' OR priority >= 7",
    )
    .unwrap();
    group.bench_function("match_complex", |b| {
        b.iter(|| complex.matches(&msg));
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("mq/codec");
    let msg = sample_message();
    let bytes = msg.to_bytes();
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_message", |b| {
        b.iter(|| msg.to_bytes());
    });
    group.bench_function("decode_message", |b| {
        b.iter(|| Message::from_bytes(bytes.clone()).unwrap());
    });
    group.finish();
}

fn bench_journal(c: &mut Criterion) {
    let mut group = c.benchmark_group("mq/journal");
    group.throughput(Throughput::Elements(1));
    let record = JournalRecord::Put {
        queue: "Q".into(),
        message: sample_message(),
    };
    let mem = MemJournal::new();
    group.bench_function("mem_append", |b| {
        b.iter(|| mem.append(&record).unwrap());
    });
    let path = std::env::temp_dir().join(format!("mq-bench-{}.log", std::process::id()));
    let file = FileJournal::open(&path, false).unwrap();
    group.bench_function("file_append_nosync", |b| {
        b.iter(|| file.append(&record).unwrap());
    });
    group.bench_function("replay_1000", |b| {
        b.iter_batched(
            || {
                let j = MemJournal::new();
                for _ in 0..1000 {
                    j.append(&record).unwrap();
                }
                j
            },
            |j| j.replay_collect().unwrap(),
            BatchSize::SmallInput,
        );
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_queue_ops, bench_selector, bench_codec, bench_journal
}
criterion_main!(benches);
