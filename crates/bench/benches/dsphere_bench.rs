//! E8 / paper Fig. 10 — Dependency-Sphere cost.
//!
//! * `commit`: one sphere with K member messages (all picked up) and one
//!   KV resource, driven to `commit_DS`. Expected linear in K (each member
//!   needs its outcome decided and its deferred actions released).
//! * `abort`: same shape, `abort_DS` immediately (force-fail + compensation
//!   release for every member).
//! * `two_phase_commit`: the bare resource-coordinator cost per enlisted
//!   resource, isolating the OTS substrate.

use cond_bench::{queue_names, system_world, workload};
use condmsg::ConditionalReceiver;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsphere::{DSphereService, KvStore, ProbeResource, TransactionManager};
use mq::Wait;
use simtime::Millis;

fn bench_sphere(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsphere");
    for k in [1usize, 4, 8] {
        group.throughput(Throughput::Elements(k as u64));

        let world = system_world(&queue_names(k));
        let service = DSphereService::new(world.messenger.clone());
        let kv = KvStore::new("db");
        let conditions: Vec<_> = (0..k)
            .map(|_| workload::fan_out(1, Millis(600_000)))
            .collect();
        let mut receiver = ConditionalReceiver::new(world.qmgr.clone()).unwrap();

        group.bench_with_input(BenchmarkId::new("commit", k), &k, |b, &k| {
            b.iter(|| {
                let mut sphere = service.begin();
                sphere.enlist(kv.clone()).unwrap();
                kv.put(sphere.xid(), "k", "v");
                for cond in conditions.iter().take(k) {
                    // All conditions target Q.D0; give each its own read.
                    sphere.send_message("member", cond).unwrap();
                }
                for _ in 0..k {
                    receiver
                        .read_message("Q.D0", Wait::NoWait)
                        .unwrap()
                        .unwrap();
                }
                let outcome = sphere.try_commit().unwrap().unwrap();
                assert!(outcome.is_committed());
            });
        });

        group.bench_with_input(BenchmarkId::new("abort", k), &k, |b, &k| {
            b.iter(|| {
                let mut sphere = service.begin();
                sphere.enlist(kv.clone()).unwrap();
                kv.put(sphere.xid(), "k", "v");
                for cond in conditions.iter().take(k) {
                    sphere.send_message("member", cond).unwrap();
                }
                let outcome = sphere.abort("bench abort").unwrap();
                assert!(!outcome.is_committed());
                // Drain: each member left an original + compensation on
                // Q.D0, which annihilate on the next read attempt.
                while receiver
                    .read_message("Q.D0", Wait::NoWait)
                    .unwrap()
                    .is_some()
                {}
            });
        });
    }

    // Pure 2PC cost over probe resources.
    for r in [1usize, 4, 16] {
        let tm = TransactionManager::new();
        let resources: Vec<_> = (0..r)
            .map(|i| ProbeResource::new(format!("r{i}")))
            .collect();
        group.throughput(Throughput::Elements(r as u64));
        group.bench_with_input(BenchmarkId::new("two_phase_commit", r), &r, |b, _| {
            b.iter(|| {
                let mut tx = tm.begin();
                for res in &resources {
                    tx.enlist(res.clone());
                }
                tx.commit().unwrap();
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sphere
}
criterion_main!(benches);
