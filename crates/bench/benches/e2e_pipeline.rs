//! E7 / paper Fig. 9 — end-to-end cost of the full conditional-messaging
//! pipeline versus the hand-rolled application baseline (S22).
//!
//! One "cycle" = send to N destinations → every destination reads (with
//! acknowledgment) → the sender's evaluation decides success. The
//! middleware path exercises the whole Fig. 9 architecture (SLOG, ACK,
//! COMP, OUTCOME queues); the baseline does the minimum an application
//! could get away with.
//!
//! Expected shape: the middleware costs a constant factor over the
//! baseline (it journals sends, parks compensations and logs receipts,
//! which the baseline skips) — that factor is the price of the guarantees,
//! and it should stay roughly flat as N grows.

use cond_bench::baseline::{baseline_receive, BaselineSender};
use cond_bench::{queue_names, system_world, workload};
use condmsg::{ConditionalReceiver, MessageOutcome};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mq::Wait;
use simtime::Millis;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2e_pipeline");
    for n in [1usize, 4, 8] {
        group.throughput(Throughput::Elements(n as u64));

        // Middleware path.
        let world = system_world(&queue_names(n));
        let condition = workload::fan_out(n, Millis(600_000));
        let mut receiver = ConditionalReceiver::new(world.qmgr.clone()).unwrap();
        group.bench_with_input(BenchmarkId::new("conditional", n), &n, |b, &n| {
            b.iter(|| {
                let id = world.messenger.send_message("cycle", &condition).unwrap();
                for i in 0..n {
                    receiver
                        .read_message(&format!("Q.D{i}"), Wait::NoWait)
                        .unwrap()
                        .unwrap();
                }
                let outcomes = world.messenger.pump().unwrap();
                assert_eq!(outcomes[0].cond_id, id);
                assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
                // Drain the notification so DS.OUTCOME.Q stays bounded.
                world.messenger.take_outcome(id, Wait::NoWait).unwrap();
            });
        });

        // Application baseline.
        let world = system_world(&queue_names(n));
        let queues = queue_names(n);
        let mut sender = BaselineSender::new(world.qmgr.clone(), "APP.ACK").unwrap();
        group.bench_with_input(BenchmarkId::new("baseline", n), &n, |b, _| {
            b.iter(|| {
                let id = sender
                    .send_notification("cycle", &queues, Millis(600_000))
                    .unwrap();
                for q in &queues {
                    baseline_receive(&world.qmgr, q).unwrap().unwrap();
                }
                let decided = sender.poll().unwrap();
                assert_eq!(decided, vec![(id, true)]);
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pipeline
}
criterion_main!(benches);
