//! `dsphere` — Dependency-Spheres: atomic units-of-work grouping
//! conditional messages and distributed transactional resources (paper
//! §3 of *"Extending Reliable Messaging with Application Conditions"*,
//! ICDCS 2002, building on the authors' EDOC 2001 D-Spheres service).
//!
//! The crate has three layers:
//!
//! * [`otx`] — a miniature distributed transaction service (the CORBA
//!   OTS / JTS substrate): [`otx::TransactionManager`] runs two-phase
//!   commit over anything implementing [`otx::TransactionalResource`].
//! * [`resources`] — in-memory transactional resources used by the
//!   examples and experiments: a [`resources::KvStore`], a
//!   [`resources::Calendar`] with double-booking constraints, room
//!   reservations, and a failure-injection probe.
//! * [`sphere`] — the [`DSphere`] itself: `begin_DS` / `commit_DS` /
//!   `abort_DS` over conditional messages (sent immediately, outcome
//!   actions deferred) coupled with enlisted resources.
//!
//! # Example
//!
//! ```
//! use condmsg::{ConditionalMessenger, ConditionalReceiver, Destination};
//! use dsphere::{DSphereService, KvStore};
//! use mq::{QueueManager, Wait};
//! use simtime::{Millis, SimClock};
//!
//! let clock = SimClock::new();
//! let qmgr = QueueManager::builder("QM1").clock(clock.clone()).build()?;
//! qmgr.create_queue("NOTIFY")?;
//! let messenger = ConditionalMessenger::new(qmgr.clone())?;
//! let service = DSphereService::new(messenger);
//! let db = KvStore::new("contract-db");
//!
//! let mut sphere = service.begin();
//! sphere.enlist(db.clone()).map_err(|e| e.to_string())?;
//! db.put(sphere.xid(), "contract", "signed");
//! sphere
//!     .send_message(
//!         "contract signed",
//!         &Destination::queue("QM1", "NOTIFY").pickup_within(Millis(1_000)).into(),
//!     )
//!     .map_err(|e| e.to_string())?;
//!
//! // The notification is read in time…
//! clock.advance(Millis(10));
//! let mut receiver = ConditionalReceiver::new(qmgr.clone())?;
//! receiver.read_message("NOTIFY", Wait::NoWait)?;
//!
//! // …so the sphere commits: message success + database update, atomically.
//! let outcome = sphere.try_commit().map_err(|e| e.to_string())?.expect("decided");
//! assert!(outcome.is_committed());
//! assert_eq!(db.get("contract"), Some("signed".into()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod otx;
pub mod resources;
pub mod sphere;

pub use otx::{
    Decision, Transaction, TransactionManager, TransactionalResource, TxAborted, Vote, Xid,
};
pub use resources::{Calendar, KvStore, ProbeResource, RoomReservations};
pub use sphere::{DSphere, DSphereService, SphereError, SphereOutcome, SphereResult};
