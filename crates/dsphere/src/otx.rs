//! A miniature distributed transaction service (the CORBA OTS / JTS
//! substrate of paper §3.2).
//!
//! Dependency-Spheres integrate "transactional resources like distributed
//! objects and databases" through the standard resource contract: enlist →
//! prepare (vote) → commit/rollback. [`TransactionManager`] implements
//! two-phase commit over any [`TransactionalResource`]; the in-memory
//! resources in [`crate::resources`] and the failure-injection probes used
//! by the experiments all speak this contract.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// A transaction identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Xid(u64);

impl Xid {
    /// The raw id value.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Constructs an Xid from a raw value (crate-internal; tests and
    /// benchmarks that drive resources without a coordinator).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn from_raw(v: u64) -> Xid {
        Xid(v)
    }
}

impl fmt::Display for Xid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xid:{}", self.0)
    }
}

/// A resource's vote in phase one of two-phase commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Vote {
    /// The resource can commit.
    Commit,
    /// The resource refuses; the transaction must abort.
    Abort(String),
}

/// The resource contract (prepare / commit / rollback).
///
/// Implementations must be idempotent for `commit` and `rollback` on
/// unknown `Xid`s (a coordinator may roll back a transaction the resource
/// never saw).
pub trait TransactionalResource: Send + Sync {
    /// Resource name, for diagnostics and abort reasons.
    fn name(&self) -> &str;

    /// Phase one: validate and harden the transaction's staged work.
    fn prepare(&self, xid: Xid) -> Vote;

    /// Phase two: make the staged work durable and visible.
    fn commit(&self, xid: Xid);

    /// Undo the staged work.
    fn rollback(&self, xid: Xid);
}

/// Coordinator decision for a finished transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// All resources voted commit and were committed.
    Committed,
    /// The transaction was rolled back.
    Aborted,
}

/// Error returned when two-phase commit aborts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxAborted {
    /// The resource whose vote caused the abort.
    pub resource: String,
    /// The resource's stated reason.
    pub reason: String,
}

impl fmt::Display for TxAborted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transaction aborted by {}: {}",
            self.resource, self.reason
        )
    }
}

impl std::error::Error for TxAborted {}

/// The transaction coordinator.
#[derive(Debug, Default)]
pub struct TransactionManager {
    next_xid: AtomicU64,
    /// Decision audit log. Never held while calling into enlisted
    /// resources: a resource may re-enter the coordinator.
    // lint: never-hold(TransactionManager.decisions) across prepare
    // lint: never-hold(TransactionManager.decisions) across rollback
    decisions: Mutex<Vec<(Xid, Decision)>>,
}

impl TransactionManager {
    /// Creates a coordinator.
    pub fn new() -> Arc<TransactionManager> {
        Arc::new(TransactionManager::default())
    }

    /// Begins a new transaction.
    pub fn begin(self: &Arc<Self>) -> Transaction {
        let xid = Xid(self.next_xid.fetch_add(1, Ordering::SeqCst));
        Transaction {
            xid,
            manager: self.clone(),
            resources: Vec::new(),
            finished: false,
        }
    }

    /// The decision log, in completion order (for tests and audits).
    pub fn decisions(&self) -> Vec<(Xid, Decision)> {
        self.decisions.lock().clone()
    }

    fn record(&self, xid: Xid, decision: Decision) {
        self.decisions.lock().push((xid, decision));
    }
}

/// An open transaction over a set of enlisted resources.
///
/// Dropping an unfinished transaction rolls it back.
pub struct Transaction {
    xid: Xid,
    manager: Arc<TransactionManager>,
    resources: Vec<Arc<dyn TransactionalResource>>,
    finished: bool,
}

impl fmt::Debug for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Transaction")
            .field("xid", &self.xid)
            .field("resources", &self.resources.len())
            .field("finished", &self.finished)
            .finish()
    }
}

impl Transaction {
    /// This transaction's id; pass it to resource operations.
    pub fn xid(&self) -> Xid {
        self.xid
    }

    /// Enlists a resource. A resource may be enlisted once per
    /// transaction; duplicates are ignored by pointer identity.
    pub fn enlist(&mut self, resource: Arc<dyn TransactionalResource>) {
        if !self.resources.iter().any(|r| Arc::ptr_eq(r, &resource)) {
            self.resources.push(resource);
        }
    }

    /// Number of enlisted resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Runs two-phase commit.
    ///
    /// # Errors
    ///
    /// [`TxAborted`] when any resource votes abort in phase one; all
    /// resources are then rolled back.
    pub fn commit(mut self) -> Result<(), TxAborted> {
        // Phase one: collect votes.
        for (i, resource) in self.resources.iter().enumerate() {
            if let Vote::Abort(reason) = resource.prepare(self.xid) {
                let aborted = TxAborted {
                    resource: resource.name().to_owned(),
                    reason,
                };
                // Roll everyone back (including the refusing resource —
                // rollback must be idempotent).
                let _ = i;
                for r in &self.resources {
                    r.rollback(self.xid);
                }
                self.finished = true;
                self.manager.record(self.xid, Decision::Aborted);
                return Err(aborted);
            }
        }
        // Phase two: commit.
        for resource in &self.resources {
            resource.commit(self.xid);
        }
        self.finished = true;
        self.manager.record(self.xid, Decision::Committed);
        Ok(())
    }

    /// Rolls the transaction back on all enlisted resources.
    pub fn rollback(mut self) {
        self.rollback_in_place();
    }

    fn rollback_in_place(&mut self) {
        if self.finished {
            return;
        }
        for resource in &self.resources {
            resource.rollback(self.xid);
        }
        self.finished = true;
        self.manager.record(self.xid, Decision::Aborted);
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        self.rollback_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ProbeResource;

    #[test]
    fn xids_are_unique_and_displayable() {
        let tm = TransactionManager::new();
        let a = tm.begin();
        let b = tm.begin();
        assert_ne!(a.xid(), b.xid());
        assert_eq!(a.xid().to_string(), format!("xid:{}", a.xid().as_u64()));
        a.rollback();
        b.rollback();
    }

    #[test]
    fn commit_prepares_then_commits_all() {
        let tm = TransactionManager::new();
        let r1 = ProbeResource::new("r1");
        let r2 = ProbeResource::new("r2");
        let mut tx = tm.begin();
        let xid = tx.xid();
        tx.enlist(r1.clone());
        tx.enlist(r2.clone());
        assert_eq!(tx.resource_count(), 2);
        tx.commit().unwrap();
        assert_eq!(r1.prepared(), 1);
        assert_eq!(r1.committed(), 1);
        assert_eq!(r1.rolled_back(), 0);
        assert_eq!(r2.committed(), 1);
        assert_eq!(tm.decisions(), vec![(xid, Decision::Committed)]);
    }

    #[test]
    fn abort_vote_rolls_everyone_back() {
        let tm = TransactionManager::new();
        let good = ProbeResource::new("good");
        let bad = ProbeResource::vetoing("bad", "constraint violated");
        let mut tx = tm.begin();
        let xid = tx.xid();
        tx.enlist(good.clone());
        tx.enlist(bad.clone());
        let err = tx.commit().unwrap_err();
        assert_eq!(err.resource, "bad");
        assert_eq!(err.reason, "constraint violated");
        assert!(err.to_string().contains("aborted by bad"));
        assert_eq!(good.committed(), 0);
        assert_eq!(good.rolled_back(), 1);
        assert_eq!(bad.rolled_back(), 1);
        assert_eq!(tm.decisions(), vec![(xid, Decision::Aborted)]);
    }

    #[test]
    fn first_abort_vote_short_circuits_prepare() {
        let tm = TransactionManager::new();
        let bad = ProbeResource::vetoing("bad", "no");
        let later = ProbeResource::new("later");
        let mut tx = tm.begin();
        tx.enlist(bad);
        tx.enlist(later.clone());
        tx.commit().unwrap_err();
        assert_eq!(later.prepared(), 0, "phase one stops at the first veto");
        assert_eq!(later.rolled_back(), 1, "but everyone is rolled back");
    }

    #[test]
    fn explicit_rollback_and_drop_rollback() {
        let tm = TransactionManager::new();
        let r = ProbeResource::new("r");
        let mut tx = tm.begin();
        tx.enlist(r.clone());
        tx.rollback();
        assert_eq!(r.rolled_back(), 1);

        let r2 = ProbeResource::new("r2");
        {
            let mut tx = tm.begin();
            tx.enlist(r2.clone());
            // dropped uncommitted
        }
        assert_eq!(r2.rolled_back(), 1);
        assert_eq!(tm.decisions().len(), 2);
        assert!(tm.decisions().iter().all(|(_, d)| *d == Decision::Aborted));
    }

    #[test]
    fn duplicate_enlistment_ignored() {
        let tm = TransactionManager::new();
        let r = ProbeResource::new("r");
        let mut tx = tm.begin();
        tx.enlist(r.clone());
        tx.enlist(r.clone());
        assert_eq!(tx.resource_count(), 1);
        tx.commit().unwrap();
        assert_eq!(r.committed(), 1);
    }

    #[test]
    fn empty_transaction_commits() {
        let tm = TransactionManager::new();
        let tx = tm.begin();
        tx.commit().unwrap();
        assert_eq!(tm.decisions().len(), 1);
    }
}
