//! In-memory transactional resources: the "distributed objects and
//! databases" a Dependency-Sphere integrates (paper §3.2).
//!
//! * [`KvStore`] — a versioned key/value database with staged writes,
//!   first-preparer-wins conflict detection, and atomic visibility at
//!   commit.
//! * [`Calendar`] — per-user time slots with a double-booking constraint
//!   checked at prepare time (the paper's "update his calendar database"
//!   from Example 1).
//! * [`RoomReservations`] — room/slot bookings (the paper's "room
//!   reservation" database).
//! * [`ProbeResource`] — a counting resource with injectable votes, for
//!   tests and experiments.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::otx::{TransactionalResource, Vote, Xid};

// ------------------------------------------------------------------- kv --

#[derive(Debug, Default)]
struct KvInner {
    committed: HashMap<String, String>,
    /// Per-transaction staged writes; `None` = delete.
    staged: HashMap<Xid, HashMap<String, Option<String>>>,
    /// Transactions that passed prepare and hold their keys.
    prepared: HashSet<Xid>,
}

/// A transactional key/value store.
///
/// Writes are staged per transaction and invisible until commit. Prepare
/// detects write-write conflicts against already-prepared transactions
/// (first-preparer-wins).
pub struct KvStore {
    name: String,
    inner: Mutex<KvInner>,
}

impl fmt::Debug for KvStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KvStore")
            .field("name", &self.name)
            .field("len", &self.len())
            .finish()
    }
}

impl KvStore {
    /// Creates an empty store.
    pub fn new(name: impl Into<String>) -> Arc<KvStore> {
        Arc::new(KvStore {
            name: name.into(),
            inner: Mutex::new(KvInner::default()),
        })
    }

    /// Reads the committed value of a key.
    pub fn get(&self, key: &str) -> Option<String> {
        self.inner.lock().committed.get(key).cloned()
    }

    /// Number of committed keys.
    pub fn len(&self) -> usize {
        self.inner.lock().committed.len()
    }

    /// Whether the committed state is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stages a write under a transaction.
    pub fn put(&self, xid: Xid, key: impl Into<String>, value: impl Into<String>) {
        self.inner
            .lock()
            .staged
            .entry(xid)
            .or_default()
            .insert(key.into(), Some(value.into()));
    }

    /// Stages a delete under a transaction.
    pub fn delete(&self, xid: Xid, key: &str) {
        self.inner
            .lock()
            .staged
            .entry(xid)
            .or_default()
            .insert(key.to_owned(), None);
    }

    /// Number of writes staged under a transaction.
    pub fn staged_len(&self, xid: Xid) -> usize {
        self.inner.lock().staged.get(&xid).map_or(0, HashMap::len)
    }
}

impl TransactionalResource for KvStore {
    fn name(&self) -> &str {
        &self.name
    }

    fn prepare(&self, xid: Xid) -> Vote {
        let mut inner = self.inner.lock();
        let Some(mine) = inner.staged.get(&xid) else {
            return Vote::Commit; // read-only participant
        };
        // Write-write conflict against any *prepared* transaction.
        let my_keys: HashSet<&String> = mine.keys().collect();
        for other in inner.prepared.iter() {
            if *other == xid {
                continue;
            }
            if let Some(theirs) = inner.staged.get(other) {
                if theirs.keys().any(|k| my_keys.contains(k)) {
                    return Vote::Abort(format!(
                        "write conflict with in-flight {other} in {}",
                        self.name
                    ));
                }
            }
        }
        inner.prepared.insert(xid);
        Vote::Commit
    }

    fn commit(&self, xid: Xid) {
        let mut inner = self.inner.lock();
        inner.prepared.remove(&xid);
        if let Some(writes) = inner.staged.remove(&xid) {
            for (key, value) in writes {
                match value {
                    Some(v) => {
                        inner.committed.insert(key, v);
                    }
                    None => {
                        inner.committed.remove(&key);
                    }
                }
            }
        }
    }

    fn rollback(&self, xid: Xid) {
        let mut inner = self.inner.lock();
        inner.prepared.remove(&xid);
        inner.staged.remove(&xid);
    }
}

// ------------------------------------------------------------ slot table --

/// Shared implementation for slot-booking resources: a map from
/// `(owner, slot)` to a label, with a no-double-booking constraint
/// enforced at prepare time.
/// A booking key: `(owner, slot)`.
type SlotKey = (String, u64);

#[derive(Debug, Default)]
struct SlotInner {
    committed: HashMap<SlotKey, String>,
    staged: HashMap<Xid, Vec<(SlotKey, String)>>,
    prepared: HashSet<Xid>,
}

#[derive(Debug)]
struct SlotTable {
    name: String,
    inner: Mutex<SlotInner>,
}

impl SlotTable {
    fn new(name: String) -> SlotTable {
        SlotTable {
            name,
            inner: Mutex::new(SlotInner::default()),
        }
    }

    fn book(&self, xid: Xid, owner: &str, slot: u64, label: &str) {
        self.inner
            .lock()
            .staged
            .entry(xid)
            .or_default()
            .push(((owner.to_owned(), slot), label.to_owned()));
    }

    fn lookup(&self, owner: &str, slot: u64) -> Option<String> {
        self.inner
            .lock()
            .committed
            .get(&(owner.to_owned(), slot))
            .cloned()
    }

    fn bookings(&self, owner: &str) -> Vec<(u64, String)> {
        let inner = self.inner.lock();
        let mut out: Vec<(u64, String)> = inner
            .committed
            .iter()
            .filter(|((o, _), _)| o == owner)
            .map(|((_, slot), label)| (*slot, label.clone()))
            .collect();
        out.sort();
        out
    }

    fn prepare(&self, xid: Xid) -> Vote {
        let mut inner = self.inner.lock();
        let Some(mine) = inner.staged.get(&xid) else {
            return Vote::Commit;
        };
        for (key, _) in mine {
            if inner.committed.contains_key(key) {
                return Vote::Abort(format!(
                    "{} slot {} already booked for {} in {}",
                    key.0, key.1, key.0, self.name
                ));
            }
            // Conflicts with other prepared transactions.
            for other in inner.prepared.iter() {
                if *other == xid {
                    continue;
                }
                if inner.staged[other].iter().any(|(k, _)| k == key) {
                    return Vote::Abort(format!(
                        "slot {}@{} contended by in-flight {other} in {}",
                        key.1, key.0, self.name
                    ));
                }
            }
        }
        inner.prepared.insert(xid);
        Vote::Commit
    }

    fn commit(&self, xid: Xid) {
        let mut inner = self.inner.lock();
        inner.prepared.remove(&xid);
        if let Some(entries) = inner.staged.remove(&xid) {
            for (key, label) in entries {
                inner.committed.insert(key, label);
            }
        }
    }

    fn rollback(&self, xid: Xid) {
        let mut inner = self.inner.lock();
        inner.prepared.remove(&xid);
        inner.staged.remove(&xid);
    }
}

/// A calendar database: per-user time slots, refusing double bookings at
/// prepare time.
#[derive(Debug)]
pub struct Calendar {
    table: SlotTable,
}

impl Calendar {
    /// Creates an empty calendar.
    pub fn new(name: impl Into<String>) -> Arc<Calendar> {
        Arc::new(Calendar {
            table: SlotTable::new(name.into()),
        })
    }

    /// Stages an event for `user` at `slot` under a transaction.
    pub fn schedule(&self, xid: Xid, user: &str, slot: u64, title: &str) {
        self.table.book(xid, user, slot, title);
    }

    /// The committed event for `user` at `slot`, if any.
    pub fn event(&self, user: &str, slot: u64) -> Option<String> {
        self.table.lookup(user, slot)
    }

    /// All committed events for `user`, ordered by slot.
    pub fn events(&self, user: &str) -> Vec<(u64, String)> {
        self.table.bookings(user)
    }
}

impl TransactionalResource for Calendar {
    fn name(&self) -> &str {
        &self.table.name
    }
    fn prepare(&self, xid: Xid) -> Vote {
        self.table.prepare(xid)
    }
    fn commit(&self, xid: Xid) {
        self.table.commit(xid)
    }
    fn rollback(&self, xid: Xid) {
        self.table.rollback(xid)
    }
}

/// A room-reservation database: room/slot bookings with conflict
/// detection (the paper's "room reservation and other purposes").
#[derive(Debug)]
pub struct RoomReservations {
    table: SlotTable,
}

impl RoomReservations {
    /// Creates an empty reservation book.
    pub fn new(name: impl Into<String>) -> Arc<RoomReservations> {
        Arc::new(RoomReservations {
            table: SlotTable::new(name.into()),
        })
    }

    /// Stages a reservation of `room` at `slot` for `holder`.
    pub fn reserve(&self, xid: Xid, room: &str, slot: u64, holder: &str) {
        self.table.book(xid, room, slot, holder);
    }

    /// The committed holder of `room` at `slot`, if any.
    pub fn holder(&self, room: &str, slot: u64) -> Option<String> {
        self.table.lookup(room, slot)
    }

    /// All committed reservations of `room`, ordered by slot.
    pub fn reservations(&self, room: &str) -> Vec<(u64, String)> {
        self.table.bookings(room)
    }
}

impl TransactionalResource for RoomReservations {
    fn name(&self) -> &str {
        &self.table.name
    }
    fn prepare(&self, xid: Xid) -> Vote {
        self.table.prepare(xid)
    }
    fn commit(&self, xid: Xid) {
        self.table.commit(xid)
    }
    fn rollback(&self, xid: Xid) {
        self.table.rollback(xid)
    }
}

// ----------------------------------------------------------------- probe --

/// A test/experiment resource that counts protocol calls and votes as
/// configured.
pub struct ProbeResource {
    name: String,
    vote: Mutex<Vote>,
    prepared: AtomicUsize,
    committed: AtomicUsize,
    rolled_back: AtomicUsize,
}

impl fmt::Debug for ProbeResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProbeResource")
            .field("name", &self.name)
            .field("prepared", &self.prepared())
            .field("committed", &self.committed())
            .field("rolled_back", &self.rolled_back())
            .finish()
    }
}

impl ProbeResource {
    /// A probe that always votes commit.
    pub fn new(name: impl Into<String>) -> Arc<ProbeResource> {
        Arc::new(ProbeResource {
            name: name.into(),
            vote: Mutex::new(Vote::Commit),
            prepared: AtomicUsize::new(0),
            committed: AtomicUsize::new(0),
            rolled_back: AtomicUsize::new(0),
        })
    }

    /// A probe that always votes abort with `reason`.
    pub fn vetoing(name: impl Into<String>, reason: impl Into<String>) -> Arc<ProbeResource> {
        let probe = ProbeResource::new(name);
        probe.set_vote(Vote::Abort(reason.into()));
        probe
    }

    /// Changes the configured vote.
    pub fn set_vote(&self, vote: Vote) {
        *self.vote.lock() = vote;
    }

    /// Number of `prepare` calls.
    pub fn prepared(&self) -> usize {
        self.prepared.load(Ordering::SeqCst)
    }

    /// Number of `commit` calls.
    pub fn committed(&self) -> usize {
        self.committed.load(Ordering::SeqCst)
    }

    /// Number of `rollback` calls.
    pub fn rolled_back(&self) -> usize {
        self.rolled_back.load(Ordering::SeqCst)
    }
}

impl TransactionalResource for ProbeResource {
    fn name(&self) -> &str {
        &self.name
    }

    fn prepare(&self, _xid: Xid) -> Vote {
        self.prepared.fetch_add(1, Ordering::SeqCst);
        self.vote.lock().clone()
    }

    fn commit(&self, _xid: Xid) {
        self.committed.fetch_add(1, Ordering::SeqCst);
    }

    fn rollback(&self, _xid: Xid) {
        self.rolled_back.fetch_add(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::otx::TransactionManager;

    #[test]
    fn kv_staged_writes_invisible_until_commit() {
        let tm = TransactionManager::new();
        let kv = KvStore::new("db");
        let mut tx = tm.begin();
        tx.enlist(kv.clone());
        kv.put(tx.xid(), "k", "v");
        assert_eq!(kv.get("k"), None);
        assert_eq!(kv.staged_len(tx.xid()), 1);
        tx.commit().unwrap();
        assert_eq!(kv.get("k"), Some("v".into()));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn kv_rollback_discards_staged() {
        let tm = TransactionManager::new();
        let kv = KvStore::new("db");
        let mut tx = tm.begin();
        tx.enlist(kv.clone());
        kv.put(tx.xid(), "k", "v");
        tx.rollback();
        assert!(kv.is_empty());
    }

    #[test]
    fn kv_delete_and_overwrite() {
        let tm = TransactionManager::new();
        let kv = KvStore::new("db");
        let mut tx = tm.begin();
        tx.enlist(kv.clone());
        kv.put(tx.xid(), "a", "1");
        kv.put(tx.xid(), "b", "2");
        tx.commit().unwrap();
        let mut tx2 = tm.begin();
        tx2.enlist(kv.clone());
        kv.put(tx2.xid(), "a", "updated");
        kv.delete(tx2.xid(), "b");
        tx2.commit().unwrap();
        assert_eq!(kv.get("a"), Some("updated".into()));
        assert_eq!(kv.get("b"), None);
    }

    #[test]
    fn kv_write_conflict_aborts_second_preparer() {
        let tm = TransactionManager::new();
        let kv = KvStore::new("db");
        let tx1 = tm.begin();
        let tx2 = tm.begin();
        kv.put(tx1.xid(), "k", "one");
        kv.put(tx2.xid(), "k", "two");
        assert_eq!(kv.prepare(tx1.xid()), Vote::Commit);
        match kv.prepare(tx2.xid()) {
            Vote::Abort(reason) => assert!(reason.contains("write conflict"), "{reason}"),
            other => panic!("expected abort, got {other:?}"),
        }
        kv.commit(tx1.xid());
        kv.rollback(tx2.xid());
        assert_eq!(kv.get("k"), Some("one".into()));
        drop(tx1);
        drop(tx2);
    }

    #[test]
    fn kv_disjoint_keys_do_not_conflict() {
        let tm = TransactionManager::new();
        let kv = KvStore::new("db");
        let tx1 = tm.begin();
        let tx2 = tm.begin();
        kv.put(tx1.xid(), "a", "1");
        kv.put(tx2.xid(), "b", "2");
        assert_eq!(kv.prepare(tx1.xid()), Vote::Commit);
        assert_eq!(kv.prepare(tx2.xid()), Vote::Commit);
        kv.commit(tx1.xid());
        kv.commit(tx2.xid());
        assert_eq!(kv.len(), 2);
        drop(tx1);
        drop(tx2);
    }

    #[test]
    fn calendar_rejects_double_booking() {
        let tm = TransactionManager::new();
        let cal = Calendar::new("cal");
        let mut tx = tm.begin();
        tx.enlist(cal.clone());
        cal.schedule(tx.xid(), "alice", 10, "standup");
        tx.commit().unwrap();
        assert_eq!(cal.event("alice", 10), Some("standup".into()));

        let mut tx2 = tm.begin();
        tx2.enlist(cal.clone());
        cal.schedule(tx2.xid(), "alice", 10, "conflicting");
        let err = tx2.commit().unwrap_err();
        assert!(err.reason.contains("already booked"), "{}", err.reason);
        assert_eq!(cal.event("alice", 10), Some("standup".into()));
        assert_eq!(cal.events("alice"), vec![(10, "standup".into())]);
    }

    #[test]
    fn rooms_reserve_and_conflict() {
        let tm = TransactionManager::new();
        let rooms = RoomReservations::new("rooms");
        let mut tx = tm.begin();
        tx.enlist(rooms.clone());
        rooms.reserve(tx.xid(), "R101", 10, "team-a");
        rooms.reserve(tx.xid(), "R101", 11, "team-a");
        tx.commit().unwrap();
        assert_eq!(rooms.holder("R101", 10), Some("team-a".into()));
        assert_eq!(rooms.reservations("R101").len(), 2);

        let mut tx2 = tm.begin();
        tx2.enlist(rooms.clone());
        rooms.reserve(tx2.xid(), "R101", 10, "team-b");
        assert!(tx2.commit().is_err());
        assert_eq!(rooms.holder("R101", 10), Some("team-a".into()));
    }

    #[test]
    fn slot_contention_between_inflight_transactions() {
        let tm = TransactionManager::new();
        let cal = Calendar::new("cal");
        let tx1 = tm.begin();
        let tx2 = tm.begin();
        cal.schedule(tx1.xid(), "bob", 5, "a");
        cal.schedule(tx2.xid(), "bob", 5, "b");
        assert_eq!(cal.prepare(tx1.xid()), Vote::Commit);
        assert!(matches!(cal.prepare(tx2.xid()), Vote::Abort(_)));
        cal.rollback(tx1.xid());
        cal.rollback(tx2.xid());
        drop(tx1);
        drop(tx2);
    }

    #[test]
    fn probe_counts_and_votes() {
        let probe = ProbeResource::new("p");
        assert_eq!(probe.prepare(Xid::from_raw(1)), Vote::Commit);
        probe.set_vote(Vote::Abort("nope".into()));
        assert!(matches!(probe.prepare(Xid::from_raw(2)), Vote::Abort(_)));
        probe.commit(Xid::from_raw(1));
        probe.rollback(Xid::from_raw(2));
        assert_eq!(
            (probe.prepared(), probe.committed(), probe.rolled_back()),
            (2, 1, 1)
        );
    }
}
