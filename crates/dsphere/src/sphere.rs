//! Dependency-Spheres: atomic units-of-work over conditional messages and
//! transactional resources (paper §3).
//!
//! A [`DSphere`] is "a global context inside of which various conditional
//! messages may occur", demarcated with `begin_DS` / `commit_DS` /
//! `abort_DS` ([`DSphereService::begin`], [`DSphere::try_commit`],
//! [`DSphere::abort`]). Its two defining properties, both from §3.1:
//!
//! * **Messages are sent immediately** — unlike ordinary messaging
//!   transactions, publication is *not* bound to the sphere commit; the
//!   messages go out, are monitored and evaluated as usual.
//! * **Outcome actions are deferred** — compensation or success
//!   notifications for each member message are initiated only when the
//!   sphere terminates, based on the *overall* sphere outcome: the sphere
//!   succeeds iff every member message succeeded *and* every enlisted
//!   transactional resource votes commit (§3.2). If the sphere fails, all
//!   member messages are compensated — including those that individually
//!   succeeded — and all resources roll back.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use condmsg::{
    CondError, CondMessageId, Condition, ConditionalMessenger, MessageOutcome, MessageStatus,
    SendOptions,
};
use mq::{Counter, Gauge, MetricsRegistry, MetricsSnapshot, TraceStage};
use simtime::{Millis, Time};

use crate::otx::{Transaction, TransactionManager, TransactionalResource};

/// Pre-registered `dsphere.*` metric cells.
#[derive(Debug)]
struct SphereMetrics {
    /// Spheres begun (`dsphere.begun`).
    begun: Arc<Counter>,
    /// Spheres terminated committed (`dsphere.committed`).
    committed: Arc<Counter>,
    /// Spheres terminated aborted (`dsphere.aborted`).
    aborted: Arc<Counter>,
    /// Spheres currently open (`dsphere.active`, with high-water mark).
    active: Arc<Gauge>,
}

impl SphereMetrics {
    fn registered(registry: &MetricsRegistry) -> SphereMetrics {
        SphereMetrics {
            begun: registry.counter("dsphere.begun"),
            committed: registry.counter("dsphere.committed"),
            aborted: registry.counter("dsphere.aborted"),
            active: registry.gauge("dsphere.active"),
        }
    }

    fn update_active(&self) {
        let terminated = self.committed.get() + self.aborted.get();
        self.active.set(self.begun.get().saturating_sub(terminated));
    }
}

/// Errors reported by the D-Sphere service.
#[derive(Debug)]
#[non_exhaustive]
pub enum SphereError {
    /// The underlying conditional-messaging layer failed.
    Cond(CondError),
    /// The sphere has already terminated; no further work may join it.
    Terminated,
}

impl fmt::Display for SphereError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SphereError::Cond(e) => write!(f, "conditional messaging error: {e}"),
            SphereError::Terminated => write!(f, "dependency-sphere already terminated"),
        }
    }
}

impl std::error::Error for SphereError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SphereError::Cond(e) => Some(e),
            SphereError::Terminated => None,
        }
    }
}

impl From<CondError> for SphereError {
    fn from(e: CondError) -> Self {
        SphereError::Cond(e)
    }
}

/// Convenience result alias.
pub type SphereResult<T> = Result<T, SphereError>;

/// Final outcome of a Dependency-Sphere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SphereOutcome {
    /// Every member message succeeded and all resources committed.
    Committed,
    /// The sphere failed; resources rolled back, compensations released.
    Aborted {
        /// Why the sphere failed (first message failure, resource veto,
        /// timeout, or explicit abort).
        reason: String,
    },
}

impl SphereOutcome {
    /// `true` for [`SphereOutcome::Committed`].
    pub fn is_committed(&self) -> bool {
        matches!(self, SphereOutcome::Committed)
    }
}

impl fmt::Display for SphereOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SphereOutcome::Committed => write!(f, "committed"),
            SphereOutcome::Aborted { reason } => write!(f, "aborted: {reason}"),
        }
    }
}

/// Factory for Dependency-Spheres over a conditional messenger and a
/// transaction manager (paper Fig. 10: the D-Sphere service sits on the
/// conditional messaging service and the object transaction service).
pub struct DSphereService {
    messenger: Arc<ConditionalMessenger>,
    txm: Arc<TransactionManager>,
    metrics: SphereMetrics,
}

impl fmt::Debug for DSphereService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DSphereService")
            .field("manager", &self.messenger.manager().name())
            .finish()
    }
}

impl DSphereService {
    /// Creates a service with its own transaction manager.
    pub fn new(messenger: Arc<ConditionalMessenger>) -> Arc<DSphereService> {
        DSphereService::with_tx_manager(messenger, TransactionManager::new())
    }

    /// Creates a service sharing an existing transaction manager.
    pub fn with_tx_manager(
        messenger: Arc<ConditionalMessenger>,
        txm: Arc<TransactionManager>,
    ) -> Arc<DSphereService> {
        let metrics = SphereMetrics::registered(messenger.manager().obs().metrics());
        Arc::new(DSphereService {
            messenger,
            txm,
            metrics,
        })
    }

    /// The conditional messenger spheres send through.
    pub fn messenger(&self) -> &Arc<ConditionalMessenger> {
        &self.messenger
    }

    /// The transaction manager resources enlist with.
    pub fn tx_manager(&self) -> &Arc<TransactionManager> {
        &self.txm
    }

    /// A point-in-time snapshot of every metric registered against the
    /// underlying manager's observability hub (including the `dsphere.*`
    /// metrics).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.messenger.manager().metrics_snapshot()
    }

    /// Begins a sphere with no timeout (`begin_DS`).
    pub fn begin(self: &Arc<Self>) -> DSphere {
        self.begin_sphere(None)
    }

    /// Begins a sphere that fails if still undecided after `timeout`.
    pub fn begin_with_timeout(self: &Arc<Self>, timeout: Millis) -> DSphere {
        self.begin_sphere(Some(timeout))
    }

    fn begin_sphere(self: &Arc<Self>, timeout: Option<Millis>) -> DSphere {
        let now = self.messenger.manager().clock().now();
        self.metrics.begun.incr();
        self.metrics.update_active();
        self.messenger.manager().trace().record(
            now,
            TraceStage::SphereBegin,
            None,
            None,
            match timeout {
                Some(t) => format!("timeout {t}"),
                None => String::new(),
            },
        );
        DSphere {
            service: self.clone(),
            messages: Vec::new(),
            tx: Some(self.txm.begin()),
            began_at: now,
            deadline: timeout.map(|t| now + t),
            terminated: None,
        }
    }
}

/// An open Dependency-Sphere.
pub struct DSphere {
    service: Arc<DSphereService>,
    messages: Vec<CondMessageId>,
    tx: Option<Transaction>,
    began_at: Time,
    deadline: Option<Time>,
    terminated: Option<SphereOutcome>,
}

impl fmt::Debug for DSphere {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DSphere")
            .field("messages", &self.messages.len())
            .field("began_at", &self.began_at)
            .field("deadline", &self.deadline)
            .field("terminated", &self.terminated)
            .finish()
    }
}

impl DSphere {
    /// The ids of the conditional messages sent inside this sphere.
    pub fn message_ids(&self) -> &[CondMessageId] {
        &self.messages
    }

    /// The sphere's resource-transaction id; pass it to resource
    /// operations ([`crate::resources::KvStore::put`] etc.).
    pub fn xid(&self) -> crate::otx::Xid {
        self.tx
            .as_ref()
            .expect("transaction alive until termination")
            .xid()
    }

    /// When the sphere began, on the messenger's clock.
    pub fn began_at(&self) -> Time {
        self.began_at
    }

    /// The sphere's timeout deadline, if one was set.
    pub fn deadline(&self) -> Option<Time> {
        self.deadline
    }

    /// The outcome, once terminated.
    pub fn outcome(&self) -> Option<&SphereOutcome> {
        self.terminated.as_ref()
    }

    /// A point-in-time snapshot of every metric registered against the
    /// underlying manager's observability hub.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.service.metrics_snapshot()
    }

    /// Records a sphere termination in metrics and the lifecycle trace.
    fn record_termination(&self, outcome: &SphereOutcome) {
        let metrics = &self.service.metrics;
        let now = self.service.messenger.manager().clock().now();
        let (stage, detail) = match outcome {
            SphereOutcome::Committed => {
                metrics.committed.incr();
                (TraceStage::SphereCommit, String::new())
            }
            SphereOutcome::Aborted { reason } => {
                metrics.aborted.incr();
                (TraceStage::SphereAbort, reason.clone())
            }
        };
        metrics.update_active();
        self.service
            .messenger
            .manager()
            .trace()
            .record(now, stage, None, None, detail);
    }

    fn check_active(&self) -> SphereResult<()> {
        if self.terminated.is_some() {
            Err(SphereError::Terminated)
        } else {
            Ok(())
        }
    }

    /// Sends a conditional message inside the sphere. The message goes out
    /// *immediately* (§3.1), but its outcome actions are deferred until the
    /// sphere terminates.
    ///
    /// # Errors
    ///
    /// [`SphereError::Terminated`]; condition/messaging errors.
    pub fn send_message(
        &mut self,
        payload: impl Into<Bytes>,
        condition: &Condition,
    ) -> SphereResult<CondMessageId> {
        self.send_with(payload, None, condition, SendOptions::default())
    }

    /// Sends a conditional message with application compensation data.
    ///
    /// # Errors
    ///
    /// See [`DSphere::send_message`].
    pub fn send_message_with_compensation(
        &mut self,
        payload: impl Into<Bytes>,
        compensation: impl Into<Bytes>,
        condition: &Condition,
    ) -> SphereResult<CondMessageId> {
        self.send_with(
            payload,
            Some(compensation.into()),
            condition,
            SendOptions::default(),
        )
    }

    /// Fully general sphere send; `defer_outcome_actions` is forced on.
    ///
    /// # Errors
    ///
    /// See [`DSphere::send_message`].
    pub fn send_with(
        &mut self,
        payload: impl Into<Bytes>,
        compensation: Option<Bytes>,
        condition: &Condition,
        mut options: SendOptions,
    ) -> SphereResult<CondMessageId> {
        self.check_active()?;
        options.defer_outcome_actions = true;
        let id = self
            .service
            .messenger
            .send_with(payload, compensation, condition, options)?;
        self.messages.push(id);
        Ok(id)
    }

    /// Enlists a transactional resource (its staged work under
    /// [`DSphere::xid`] commits or rolls back with the sphere, §3.2).
    ///
    /// # Errors
    ///
    /// [`SphereError::Terminated`].
    pub fn enlist(&mut self, resource: Arc<dyn TransactionalResource>) -> SphereResult<()> {
        self.check_active()?;
        self.tx
            .as_mut()
            .expect("transaction alive while active")
            .enlist(resource);
        Ok(())
    }

    /// Attempts `commit_DS`: pumps the evaluation manager and, if every
    /// member message is decided (or the sphere deadline has passed),
    /// terminates the sphere and returns its outcome. Returns `Ok(None)`
    /// while member evaluations are still pending.
    ///
    /// # Errors
    ///
    /// Messaging failures. Safe to retry.
    pub fn try_commit(&mut self) -> SphereResult<Option<SphereOutcome>> {
        if let Some(outcome) = &self.terminated {
            return Ok(Some(outcome.clone()));
        }
        self.service.messenger.pump()?;
        let now = self.service.messenger.manager().clock().now();

        let mut pending: Vec<CondMessageId> = Vec::new();
        let mut first_failure: Option<String> = None;
        for id in &self.messages {
            match self.service.messenger.status(*id) {
                MessageStatus::Pending => pending.push(*id),
                MessageStatus::Decided(n) => {
                    if n.outcome == MessageOutcome::Failure && first_failure.is_none() {
                        first_failure = Some(format!(
                            "conditional message {id} failed: {}",
                            n.reason.unwrap_or_else(|| "condition violated".into())
                        ));
                    }
                }
                MessageStatus::Unknown => {
                    return Err(SphereError::Cond(CondError::UnknownMessage(*id)))
                }
            }
        }

        if !pending.is_empty() {
            match self.deadline {
                Some(d) if now >= d => {
                    // Sphere timeout: undecided members count as failed.
                    for id in &pending {
                        self.service.messenger.force_fail(*id, "D-Sphere timeout")?;
                    }
                    if first_failure.is_none() {
                        first_failure = Some("D-Sphere timeout".to_owned());
                    }
                }
                _ => return Ok(None),
            }
        }

        let outcome = match first_failure {
            None => {
                // All messages succeeded: 2PC over the resources decides.
                match self.tx.take().expect("transaction alive").commit() {
                    Ok(()) => {
                        self.release_all(MessageOutcome::Success)?;
                        SphereOutcome::Committed
                    }
                    Err(aborted) => {
                        self.release_all(MessageOutcome::Failure)?;
                        SphereOutcome::Aborted {
                            reason: aborted.to_string(),
                        }
                    }
                }
            }
            Some(reason) => {
                self.tx.take().expect("transaction alive").rollback();
                self.release_all(MessageOutcome::Failure)?;
                SphereOutcome::Aborted { reason }
            }
        };
        self.consume_member_outcomes();
        self.record_termination(&outcome);
        self.terminated = Some(outcome.clone());
        Ok(Some(outcome))
    }

    /// Blocking `commit_DS`: re-attempts [`DSphere::try_commit`] until the
    /// sphere terminates, parking on the messenger's decided-outcome
    /// notification between attempts — a member decision wakes it
    /// immediately, while `poll` of *real* time bounds the wait so sphere
    /// timeouts are still noticed. Use with a system clock (and ideally a
    /// sphere timeout or per-message evaluation timeouts so termination is
    /// guaranteed).
    ///
    /// # Errors
    ///
    /// Messaging failures.
    pub fn commit_blocking(mut self, poll: Duration) -> SphereResult<SphereOutcome> {
        loop {
            if let Some(outcome) = self.try_commit()? {
                return Ok(outcome);
            }
            // Subscribes to decided-outcome events instead of sleep-polling;
            // a timeout just re-checks the sphere deadline.
            self.service.messenger.wait_outcome_event(poll);
        }
    }

    /// `abort_DS`: fails all member messages still pending, rolls back the
    /// resource transaction, and releases compensations for *every* member
    /// message.
    ///
    /// # Errors
    ///
    /// Messaging failures.
    pub fn abort(&mut self, reason: impl Into<String>) -> SphereResult<SphereOutcome> {
        if let Some(outcome) = &self.terminated {
            return Ok(outcome.clone());
        }
        let reason = reason.into();
        self.service.messenger.pump()?;
        for id in &self.messages {
            if self.service.messenger.status(*id) == MessageStatus::Pending {
                self.service
                    .messenger
                    .force_fail(*id, format!("D-Sphere aborted: {reason}"))?;
            }
        }
        if let Some(tx) = self.tx.take() {
            tx.rollback();
        }
        self.release_all(MessageOutcome::Failure)?;
        let outcome = SphereOutcome::Aborted { reason };
        self.consume_member_outcomes();
        self.record_termination(&outcome);
        self.terminated = Some(outcome.clone());
        Ok(outcome)
    }

    /// Consumes the members' queued outcome notifications: the sphere is
    /// their consumer of record, and its termination already carries the
    /// aggregate verdict, so nothing may linger on the outcome queue.
    fn consume_member_outcomes(&self) {
        for id in &self.messages {
            let _ = self.service.messenger.take_outcome(*id, mq::Wait::NoWait);
        }
    }

    fn release_all(&self, group_outcome: MessageOutcome) -> SphereResult<()> {
        for id in &self.messages {
            self.service
                .messenger
                .release_outcome_actions(*id, group_outcome)?;
        }
        Ok(())
    }
}

impl Drop for DSphere {
    fn drop(&mut self) {
        if self.terminated.is_none() {
            // Undemarcated sphere: abort, best effort (C-DTOR-FAIL).
            let _ = self.abort("sphere dropped without commit or abort");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::{Calendar, KvStore, ProbeResource};
    use condmsg::{ConditionalReceiver, Destination, MessageKind};
    use mq::{QueueManager, Wait};
    use simtime::SimClock;

    struct Fixture {
        clock: Arc<SimClock>,
        qmgr: Arc<QueueManager>,
        service: Arc<DSphereService>,
    }

    fn setup() -> Fixture {
        let clock = SimClock::new();
        let qmgr = QueueManager::builder("QM1")
            .clock(clock.clone())
            .build()
            .unwrap();
        for q in ["Q.A", "Q.B", "Q.C"] {
            qmgr.create_queue(q).unwrap();
        }
        let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
        let service = DSphereService::new(messenger);
        Fixture {
            clock,
            qmgr,
            service,
        }
    }

    fn dest(queue: &str, window: Millis) -> Condition {
        Destination::queue("QM1", queue)
            .pickup_within(window)
            .into()
    }

    fn read_all(qmgr: &Arc<QueueManager>, queue: &str) -> Vec<condmsg::ReceivedMessage> {
        let mut receiver = ConditionalReceiver::new(qmgr.clone()).unwrap();
        let mut out = Vec::new();
        while let Some(m) = receiver.read_message(queue, Wait::NoWait).unwrap() {
            out.push(m);
        }
        out
    }

    #[test]
    fn messages_are_sent_immediately_not_bound_to_commit() {
        let f = setup();
        let mut sphere = f.service.begin();
        sphere
            .send_message("now!", &dest("Q.A", Millis(100)))
            .unwrap();
        // Visible on the destination queue before any commit_DS.
        assert_eq!(f.qmgr.queue("Q.A").unwrap().depth(), 1);
        sphere.abort("test cleanup").unwrap();
    }

    #[test]
    fn sphere_commits_when_all_members_succeed() {
        let f = setup();
        let kv = KvStore::new("db");
        let mut sphere = f.service.begin();
        sphere.enlist(kv.clone()).unwrap();
        kv.put(sphere.xid(), "state", "scheduled");
        let m1 = sphere.send_message("a", &dest("Q.A", Millis(100))).unwrap();
        let m2 = sphere.send_message("b", &dest("Q.B", Millis(100))).unwrap();
        assert_eq!(sphere.message_ids(), &[m1, m2]);

        // Receivers pick both up in time.
        f.clock.advance(Millis(10));
        assert_eq!(read_all(&f.qmgr, "Q.A").len(), 1);
        assert_eq!(read_all(&f.qmgr, "Q.B").len(), 1);

        let outcome = sphere.try_commit().unwrap().expect("decided");
        assert!(outcome.is_committed());
        assert_eq!(
            kv.get("state"),
            Some("scheduled".into()),
            "resource committed"
        );
        // No compensations delivered anywhere.
        assert_eq!(f.qmgr.queue("Q.A").unwrap().depth(), 0);
        assert_eq!(f.qmgr.queue("DS.COMP.Q").unwrap().depth(), 0);
    }

    #[test]
    fn try_commit_waits_while_pending() {
        let f = setup();
        let mut sphere = f.service.begin();
        sphere.send_message("a", &dest("Q.A", Millis(100))).unwrap();
        assert_eq!(sphere.try_commit().unwrap(), None, "still pending");
        f.clock.advance(Millis(10));
        read_all(&f.qmgr, "Q.A");
        let outcome = sphere.try_commit().unwrap().unwrap();
        assert!(outcome.is_committed());
    }

    #[test]
    fn commit_blocking_wakes_on_event_driven_decision() {
        // System clock, event-driven messenger, no daemon: the member's
        // deadline timer decides the failure and the decided-outcome event
        // wakes commit_blocking well before its (long) poll bound.
        let qmgr = QueueManager::builder("QM1").build().unwrap();
        qmgr.create_queue("Q.A").unwrap();
        let messenger = ConditionalMessenger::new(qmgr).unwrap();
        messenger.enable_event_driven().unwrap();
        let service = DSphereService::new(messenger);
        let mut sphere = service.begin();
        sphere.send_message("a", &dest("Q.A", Millis(40))).unwrap();
        let outcome = sphere
            .commit_blocking(Duration::from_millis(2_000))
            .unwrap();
        assert!(!outcome.is_committed(), "unread member fails the sphere");
    }

    #[test]
    fn one_failed_message_fails_the_whole_sphere() {
        let f = setup();
        let kv = KvStore::new("db");
        let mut sphere = f.service.begin();
        sphere.enlist(kv.clone()).unwrap();
        kv.put(sphere.xid(), "state", "should-not-commit");
        sphere.send_message("a", &dest("Q.A", Millis(100))).unwrap();
        sphere.send_message("b", &dest("Q.B", Millis(50))).unwrap();
        // Only Q.A is read; Q.B's pick-up window lapses.
        f.clock.advance(Millis(10));
        read_all(&f.qmgr, "Q.A");
        f.clock.advance(Millis(60));
        let outcome = sphere.try_commit().unwrap().unwrap();
        match &outcome {
            SphereOutcome::Aborted { reason } => {
                assert!(reason.contains("failed"), "{reason}")
            }
            other => panic!("expected abort, got {other:?}"),
        }
        assert_eq!(kv.get("state"), None, "resource rolled back");
        // Backward dependency: the *successful* message on Q.A is
        // compensated too.
        let a_msgs = f.qmgr.queue("Q.A").unwrap().browse();
        assert_eq!(a_msgs.len(), 1, "compensation for the consumed original");
        // Q.B: original still unread + compensation → annihilate on read.
        assert!(read_all(&f.qmgr, "Q.B").is_empty());
        assert_eq!(f.qmgr.queue("Q.B").unwrap().depth(), 0);
    }

    #[test]
    fn resource_veto_fails_sphere_and_compensates_messages() {
        let f = setup();
        let veto = ProbeResource::vetoing("veto", "business rule violated");
        let mut sphere = f.service.begin();
        sphere.enlist(veto.clone()).unwrap();
        sphere.send_message("a", &dest("Q.A", Millis(100))).unwrap();
        f.clock.advance(Millis(5));
        read_all(&f.qmgr, "Q.A");
        let outcome = sphere.try_commit().unwrap().unwrap();
        match &outcome {
            SphereOutcome::Aborted { reason } => {
                assert!(reason.contains("business rule violated"), "{reason}")
            }
            other => panic!("expected abort, got {other:?}"),
        }
        assert_eq!(veto.rolled_back(), 1);
        // The message succeeded individually, yet is compensated because
        // the sphere failed.
        let comps = read_all(&f.qmgr, "Q.A");
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].kind(), MessageKind::Compensation);
        assert!(comps[0].is_system_compensation());
    }

    #[test]
    fn sphere_timeout_fails_pending_members() {
        let f = setup();
        let mut sphere = f.service.begin_with_timeout(Millis(200));
        assert_eq!(sphere.deadline(), Some(Time(200)));
        sphere
            .send_message("a", &dest("Q.A", Millis(10_000)))
            .unwrap();
        assert_eq!(sphere.try_commit().unwrap(), None);
        f.clock.advance(Millis(250));
        let outcome = sphere.try_commit().unwrap().unwrap();
        match &outcome {
            SphereOutcome::Aborted { reason } => {
                assert!(reason.contains("timeout"), "{reason}")
            }
            other => panic!("expected timeout abort, got {other:?}"),
        }
    }

    #[test]
    fn explicit_abort_compensates_everything() {
        let f = setup();
        let cal = Calendar::new("calendar");
        let mut sphere = f.service.begin();
        sphere.enlist(cal.clone()).unwrap();
        cal.schedule(sphere.xid(), "alice", 10, "meeting");
        sphere
            .send_message_with_compensation("invite", "cancelled", &dest("Q.A", Millis(100)))
            .unwrap();
        f.clock.advance(Millis(5));
        read_all(&f.qmgr, "Q.A");
        let outcome = sphere.abort("contract negotiation fell through").unwrap();
        assert!(!outcome.is_committed());
        assert_eq!(cal.event("alice", 10), None, "calendar rolled back");
        let comps = read_all(&f.qmgr, "Q.A");
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].payload_str(), Some("cancelled"));
    }

    #[test]
    fn terminated_sphere_rejects_further_work() {
        let f = setup();
        let mut sphere = f.service.begin();
        sphere.abort("done").unwrap();
        assert!(matches!(
            sphere.send_message("x", &dest("Q.A", Millis(10))),
            Err(SphereError::Terminated)
        ));
        assert!(matches!(
            sphere.enlist(ProbeResource::new("r")),
            Err(SphereError::Terminated)
        ));
        // try_commit / abort after termination return the prior outcome.
        assert_eq!(
            sphere.try_commit().unwrap().unwrap(),
            SphereOutcome::Aborted {
                reason: "done".into()
            }
        );
        assert_eq!(
            sphere.abort("again").unwrap(),
            SphereOutcome::Aborted {
                reason: "done".into()
            }
        );
    }

    #[test]
    fn dropped_sphere_aborts() {
        let f = setup();
        let kv = KvStore::new("db");
        {
            let mut sphere = f.service.begin();
            sphere.enlist(kv.clone()).unwrap();
            kv.put(sphere.xid(), "k", "v");
            sphere.send_message("x", &dest("Q.A", Millis(100))).unwrap();
            // dropped without demarcation
        }
        assert_eq!(kv.get("k"), None);
        // Compensation (annihilating the unread original) awaits on Q.A.
        assert!(read_all(&f.qmgr, "Q.A").is_empty());
        assert_eq!(f.qmgr.queue("Q.A").unwrap().depth(), 0);
    }

    #[test]
    fn empty_sphere_commits_trivially() {
        let f = setup();
        let mut sphere = f.service.begin();
        let outcome = sphere.try_commit().unwrap().unwrap();
        assert!(outcome.is_committed());
        assert_eq!(outcome.to_string(), "committed");
    }

    #[test]
    fn two_spheres_are_independent() {
        let f = setup();
        let mut s1 = f.service.begin();
        let mut s2 = f.service.begin();
        s1.send_message("one", &dest("Q.A", Millis(100))).unwrap();
        s2.send_message("two", &dest("Q.B", Millis(50))).unwrap();
        f.clock.advance(Millis(10));
        read_all(&f.qmgr, "Q.A"); // only sphere 1's message is read
        f.clock.advance(Millis(60)); // sphere 2's window lapses
        let o1 = s1.try_commit().unwrap().unwrap();
        let o2 = s2.try_commit().unwrap().unwrap();
        assert!(o1.is_committed());
        assert!(!o2.is_committed());
    }
}
