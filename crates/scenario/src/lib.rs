//! Declarative scenario engine for the conditional-messaging harness.
//!
//! A scenario is a declarative description of a whole experiment:
//! managers and their topology (in-process links, loopback TCP,
//! multi-hop federation with routing groups), queues, actor populations
//! sending conditional messages with templated condition trees,
//! acknowledgment behaviors with latency distributions, a failure
//! schedule (partitions, relay crash-and-rebuild, storage faults), and
//! a verdict oracle. Scenarios are written as `.toml` files (see
//! `scenarios/` at the repo root) or built in code with the mirrored
//! builder API in [`spec`]; the [`compile`] step lowers a spec onto the
//! real harness, [`exec`] drives it on simulated or wall-clock time,
//! and [`oracle`] asserts that every declared message reached exactly
//! one terminal outcome — success, compensation, or annihilation — with
//! counts matching the declaration.
//!
//! ```no_run
//! use cond_scenario::{exec, ScenarioSpec};
//!
//! let spec = ScenarioSpec::from_toml_str(
//!     &std::fs::read_to_string("scenarios/iot_fleet.toml")?,
//! )?;
//! let report = exec::run(&spec, /* quick */ true)?;
//! assert!(report.oracle.passed(), "{}", report.oracle);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod compile;
pub mod error;
pub mod exec;
pub mod oracle;
mod pacer;
pub mod spec;
pub mod toml;

pub use error::{ScenarioError, ScenarioResult};
pub use exec::{run, RunReport};
pub use oracle::{OracleCheck, OracleReport};
pub use spec::{
    AckMode, AckerSpec, ActorMode, ActorSpec, ChannelKind, ChannelSpec, ClockMode, ConditionSpec,
    DelaySpec, DestSpec, Expect, FaultActionSpec, FaultSpec, JournalKind, ManagerSpec,
    MetricExpect, OracleSpec, QueueSpec, RouteSpec, ScenarioSpec, SetSpec, TriggerSpec,
};
