//! Lowering a [`ScenarioSpec`] onto the real harness.
//!
//! Compilation expands every templated block (managers, queues,
//! channels, routes, ackers) over its index range, builds the queue
//! managers on one shared clock and observability hub, connects the
//! declared channels (in-process links or loopback TCP), applies the
//! routing declarations, instantiates one event-driven conditional
//! messenger per sending manager, and resolves fault triggers against
//! the expanded plan. The result is a [`Compiled`] world the executor
//! ([`crate::exec`]) drives.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;

use condmsg::{CondConfig, Condition, ConditionalMessenger, Destination, DestinationSet};
use dsphere::DSphereService;
use mq::channel::Channel;
use mq::journal::{FaultableJournal, Journal, MemJournal, NullJournal};
use mq::net::{Link, LinkConfig};
use mq::transport::tcp::{TcpAcceptor, TcpConfig};
use mq::{Obs, QueueManager};
use simtime::{Millis, SharedClock, SimClock, SystemClock};

use crate::error::{spec_err, ScenarioResult};
use crate::spec::{
    AckMode, ActorSpec, ChannelKind, ClockMode, ConditionSpec, DelaySpec, DestSpec,
    FaultActionSpec, JournalKind, ScenarioSpec, SetSpec, TriggerSpec,
};
use crate::spec::{expand_idx, expand_msg};

/// TCP tuned for loopback chaos runs: fast reconnect so crash-rebuild
/// and kicked connections heal within the scenario's settle budget.
pub(crate) fn scenario_tcp_config() -> TcpConfig {
    TcpConfig {
        connect_timeout: std::time::Duration::from_millis(1_000),
        read_timeout: std::time::Duration::from_millis(1_500),
        heartbeat_interval: std::time::Duration::from_millis(200),
        backoff_initial: std::time::Duration::from_millis(5),
        backoff_max: std::time::Duration::from_millis(100),
        expected_peer: None,
    }
}

/// One live queue manager plus everything needed to crash-rebuild it.
pub(crate) struct ManagerRt {
    pub(crate) qmgr: Arc<QueueManager>,
    /// The journal shared across rebuilds — recovery replays it.
    pub(crate) journal: Arc<dyn Journal>,
    pub(crate) faultable: Option<Arc<FaultableJournal>>,
    pub(crate) acceptor: Option<Arc<TcpAcceptor>>,
    pub(crate) addr: Option<SocketAddr>,
    /// Application queues declared on this manager (re-ensured on rebuild).
    pub(crate) queues: Vec<String>,
}

/// One expanded channel declaration (a single `from -> to` edge).
#[derive(Debug, Clone)]
pub(crate) struct ChannelDecl {
    pub(crate) from: String,
    pub(crate) to: String,
    pub(crate) kind: ChannelKind,
    pub(crate) from_start: bool,
    /// Seed for this edge's link loss model.
    pub(crate) seed: u64,
}

/// A connected channel, kept alive for the run.
pub(crate) struct ChannelRt {
    pub(crate) decl: ChannelDecl,
    /// The simulated link, when this edge is in-process (fault target).
    pub(crate) link: Option<Arc<Link>>,
    /// Held so the mover thread outlives compilation; never read.
    pub(crate) _channel: Channel,
}

/// One expanded routing declaration.
#[derive(Debug, Clone)]
pub(crate) struct RouteDecl {
    pub(crate) manager: String,
    pub(crate) to: Option<String>,
    pub(crate) via: Vec<String>,
}

/// Where a fault lands, resolved from the `point` syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PointKind {
    /// `link:<from>-><to>` — the in-process link on that edge.
    Link { from: String, to: String },
    /// `tcp:<manager>` — that manager's acceptor.
    Tcp { manager: String },
    /// `journal:<manager>` — that manager's faultable journal.
    Journal { manager: String },
    /// `crash:<manager>` — executor-level crash-and-rebuild.
    Crash { manager: String },
}

/// A fault trigger with fractions resolved to absolute send indexes.
#[derive(Debug, Clone)]
pub(crate) enum ResolvedTrigger {
    /// Fire just before the send with this global index.
    AtSend(u64),
    /// Fire once the scenario clock reaches this time.
    AtMs(u64),
    /// Fire once a queue's depth reaches the threshold.
    WhenDepth {
        manager: String,
        queue: String,
        min_depth: u64,
    },
}

/// One scheduled fault, ready to fire.
#[derive(Debug, Clone)]
pub(crate) struct CompiledFault {
    pub(crate) point: PointKind,
    pub(crate) action: FaultActionSpec,
    pub(crate) trigger: ResolvedTrigger,
}

/// One acknowledging receiver over a single concrete queue.
#[derive(Debug, Clone)]
pub(crate) struct AckerRt {
    pub(crate) manager: String,
    pub(crate) queue: String,
    pub(crate) recipient: Option<String>,
    pub(crate) mode: AckMode,
    pub(crate) delay: DelaySpec,
}

/// One actor with its per-run message count resolved.
#[derive(Debug, Clone)]
pub(crate) struct ActorRt {
    pub(crate) spec: ActorSpec,
    pub(crate) count: u64,
    /// Worst-case milliseconds from send to a deadline-driven verdict for
    /// this actor's condition shape (used to size settle budgets).
    pub(crate) horizon_ms: u64,
}

/// A compiled, live scenario world.
pub struct Compiled {
    pub(crate) clock_mode: ClockMode,
    pub(crate) sim: Option<Arc<SimClock>>,
    pub(crate) clock: SharedClock,
    pub(crate) obs: Arc<Obs>,
    pub(crate) managers: HashMap<String, ManagerRt>,
    pub(crate) channels: Vec<ChannelRt>,
    /// Every expanded channel edge, including deferred ones — consulted
    /// when a manager is crash-rebuilt to re-establish its outbound edges.
    pub(crate) decls: Vec<ChannelDecl>,
    pub(crate) routes: Vec<RouteDecl>,
    pub(crate) messengers: HashMap<String, Arc<ConditionalMessenger>>,
    pub(crate) spheres: HashMap<String, Arc<DSphereService>>,
    pub(crate) faults: Vec<CompiledFault>,
    pub(crate) actors: Vec<ActorRt>,
    pub(crate) ackers: Vec<AckerRt>,
    /// `(manager, queue)` → index into `ackers`.
    pub(crate) ack_plan: HashMap<(String, String), usize>,
    pub(crate) oracle: crate::spec::OracleSpec,
}

impl Compiled {
    /// The shared observability hub all managers report into.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// The declared oracle expectations.
    pub(crate) fn spec_oracle(&self) -> &crate::spec::OracleSpec {
        &self.oracle
    }
}

/// Compiles `spec` into a live world. `quick` selects the actors'
/// `quick_count` populations and scales fractional fault triggers.
///
/// # Errors
///
/// [`crate::ScenarioError::Spec`] for dangling references (a channel to
/// an undeclared manager, a fault on a non-faultable journal, …) and
/// any harness error while building the world.
pub fn compile(spec: &ScenarioSpec, quick: bool) -> ScenarioResult<Compiled> {
    spec.validate()?;
    let (clock_mode, sim, clock): (ClockMode, Option<Arc<SimClock>>, SharedClock) =
        match spec.clock {
            ClockMode::Sim => {
                let sim = SimClock::new();
                (ClockMode::Sim, Some(sim.clone()), sim)
            }
            ClockMode::Real => (ClockMode::Real, None, SystemClock::new()),
        };
    let obs = Arc::new(Obs::default());

    let mut managers: HashMap<String, ManagerRt> = HashMap::new();
    for block in &spec.managers {
        for i in block.offset..block.offset + block.count {
            let name = expand_idx(&block.name, i);
            if managers.contains_key(&name) {
                return Err(spec_err(format!("duplicate manager `{name}`")));
            }
            let (journal, faultable): (Arc<dyn Journal>, Option<Arc<FaultableJournal>>) =
                match block.journal {
                    JournalKind::None => (Arc::new(NullJournal), None),
                    JournalKind::Mem => (MemJournal::new(), None),
                    JournalKind::Faultable => {
                        let j = FaultableJournal::new();
                        (j.clone(), Some(j))
                    }
                };
            let qmgr = QueueManager::builder(&name)
                .clock(clock.clone())
                .obs(obs.clone())
                .journal(journal.clone())
                .build()?;
            let (acceptor, addr) = if block.tcp {
                let acc = TcpAcceptor::bind(&qmgr, "127.0.0.1:0")?;
                let addr = acc.local_addr();
                (Some(acc), Some(addr))
            } else {
                (None, None)
            };
            managers.insert(
                name,
                ManagerRt {
                    qmgr,
                    journal,
                    faultable,
                    acceptor,
                    addr,
                    queues: Vec::new(),
                },
            );
        }
    }

    for block in &spec.queues {
        for i in block.offset..block.offset + block.count {
            let mgr_name = expand_idx(&block.manager, i);
            let q_name = expand_idx(&block.name, i);
            let rt = managers
                .get_mut(&mgr_name)
                .ok_or_else(|| spec_err(format!("queue on undeclared manager `{mgr_name}`")))?;
            rt.qmgr.ensure_queue(&q_name)?;
            rt.queues.push(q_name);
        }
    }

    // Expand channel edges; connect the from-start ones now.
    let mut decls = Vec::new();
    for (b, block) in spec.channels.iter().enumerate() {
        for i in block.offset..block.offset + block.count {
            decls.push(ChannelDecl {
                from: expand_idx(&block.from, i),
                to: expand_idx(&block.to, i),
                kind: block.kind.clone(),
                from_start: block.from_start,
                seed: spec
                    .seed
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add((b as u64) << 32 | i),
            });
        }
    }
    let mut channels = Vec::new();
    for decl in &decls {
        if decl.from_start {
            channels.push(connect_edge(&managers, decl)?);
        }
    }

    // Routing declarations come after channels: a later `define_route` /
    // group on the same remote overrides the channel's auto-route, which
    // is how federation topologies (spoke -> relay -> hub) are declared.
    let mut routes = Vec::new();
    for block in &spec.routes {
        for i in block.offset..block.offset + block.count {
            routes.push(RouteDecl {
                manager: expand_idx(&block.manager, i),
                to: block.to.as_ref().map(|t| expand_idx(t, i)),
                via: block.via.iter().map(|v| expand_idx(v, i)).collect(),
            });
        }
    }
    for route in &routes {
        apply_route(&managers, route)?;
    }

    // One event-driven messenger per sending manager. Event-driven mode
    // works under both clocks: acks evaluate on arrival and deadline
    // verdicts fire from armed timers, so the executor never needs an
    // external evaluation daemon.
    let mut messengers: HashMap<String, Arc<ConditionalMessenger>> = HashMap::new();
    let mut spheres: HashMap<String, Arc<DSphereService>> = HashMap::new();
    let mut actors = Vec::new();
    let mut total_sends = 0_u64;
    for actor in &spec.actors {
        let rt = managers
            .get(&actor.manager)
            .ok_or_else(|| spec_err(format!("actor on undeclared manager `{}`", actor.manager)))?;
        if !messengers.contains_key(&actor.manager) {
            let config = CondConfig {
                event_driven: true,
                ..CondConfig::default()
            };
            let messenger = ConditionalMessenger::with_config(rt.qmgr.clone(), config)?;
            messengers.insert(actor.manager.clone(), messenger);
        }
        if matches!(actor.mode, crate::spec::ActorMode::Sphere { .. })
            && !spheres.contains_key(&actor.manager)
        {
            let messenger = &messengers[&actor.manager];
            spheres.insert(actor.manager.clone(), DSphereService::new(messenger.clone()));
        }
        let count = actor.resolved_count(quick);
        total_sends += count;
        actors.push(ActorRt {
            spec: actor.clone(),
            count,
            horizon_ms: condition_horizon_ms(&actor.condition)
                + actor.evaluation_timeout_ms.unwrap_or(0),
        });
    }

    // Acknowledging receivers, one per concrete queue.
    let mut ackers = Vec::new();
    let mut ack_plan = HashMap::new();
    for block in &spec.ackers {
        for i in block.offset..block.offset + block.count {
            let mgr_name = expand_idx(&block.manager, i);
            let q_name = expand_idx(&block.queue, i);
            let rt = managers
                .get(&mgr_name)
                .ok_or_else(|| spec_err(format!("acker on undeclared manager `{mgr_name}`")))?;
            if !rt.queues.iter().any(|q| q == &q_name) {
                return Err(spec_err(format!(
                    "acker on undeclared queue `{q_name}` of `{mgr_name}`"
                )));
            }
            let idx = ackers.len();
            ackers.push(AckerRt {
                manager: mgr_name.clone(),
                queue: q_name.clone(),
                recipient: block.recipient.as_ref().map(|r| expand_idx(r, i)),
                mode: block.mode,
                delay: block.delay.clone(),
            });
            if ack_plan.insert((mgr_name, q_name), idx).is_some() {
                return Err(spec_err("two ackers over the same queue"));
            }
        }
    }

    let mut faults = Vec::new();
    for fault in &spec.faults {
        let point = parse_point(&fault.point)?;
        validate_point(&point, &fault.action, &managers, &decls, &actors, &ackers)?;
        let trigger = match &fault.trigger {
            TriggerSpec::AtMs(ms) => ResolvedTrigger::AtMs(*ms),
            TriggerSpec::AfterFraction(f) => {
                let at = ((total_sends as f64) * f).ceil() as u64;
                ResolvedTrigger::AtSend(at.min(total_sends))
            }
            TriggerSpec::WhenDepth {
                manager,
                queue,
                min_depth,
            } => {
                if !managers.contains_key(manager) {
                    return Err(spec_err(format!(
                        "fault trigger watches undeclared manager `{manager}`"
                    )));
                }
                ResolvedTrigger::WhenDepth {
                    manager: manager.clone(),
                    queue: queue.clone(),
                    min_depth: *min_depth,
                }
            }
        };
        faults.push(CompiledFault {
            point,
            action: fault.action,
            trigger,
        });
    }

    Ok(Compiled {
        clock_mode,
        sim,
        clock,
        obs,
        managers,
        channels,
        decls,
        routes,
        messengers,
        spheres,
        faults,
        actors,
        ackers,
        ack_plan,
        oracle: spec.oracle.clone(),
    })
}

/// Connects one expanded edge. The `from` and `to` managers must exist;
/// TCP edges additionally need the target to have a bound acceptor.
pub(crate) fn connect_edge(
    managers: &HashMap<String, ManagerRt>,
    decl: &ChannelDecl,
) -> ScenarioResult<ChannelRt> {
    let from = managers
        .get(&decl.from)
        .ok_or_else(|| spec_err(format!("channel from undeclared manager `{}`", decl.from)))?;
    let to = managers
        .get(&decl.to)
        .ok_or_else(|| spec_err(format!("channel to undeclared manager `{}`", decl.to)))?;
    match &decl.kind {
        ChannelKind::Link {
            latency_ms,
            jitter_ms,
            drop_rate,
        } => {
            let link = Link::new(LinkConfig {
                base_latency: Millis(*latency_ms),
                jitter: Millis(*jitter_ms),
                drop_rate: *drop_rate,
                seed: decl.seed,
            });
            let channel = Channel::connect(&from.qmgr, &to.qmgr, link.clone())?;
            Ok(ChannelRt {
                decl: decl.clone(),
                link: Some(link),
                _channel: channel,
            })
        }
        ChannelKind::Tcp => {
            let addr = to.addr.ok_or_else(|| {
                spec_err(format!(
                    "tcp channel to `{}`, which binds no acceptor (set tcp = true)",
                    decl.to
                ))
            })?;
            let channel =
                Channel::connect_tcp(&from.qmgr, &decl.to, addr, scenario_tcp_config())?;
            Ok(ChannelRt {
                decl: decl.clone(),
                link: None,
                _channel: channel,
            })
        }
    }
}

/// Applies one routing declaration to its manager.
pub(crate) fn apply_route(
    managers: &HashMap<String, ManagerRt>,
    route: &RouteDecl,
) -> ScenarioResult<()> {
    let rt = managers
        .get(&route.manager)
        .ok_or_else(|| spec_err(format!("route on undeclared manager `{}`", route.manager)))?;
    match (&route.to, route.via.len()) {
        (_, 0) => Err(spec_err("route with empty `via`")),
        (Some(to), 1) => Ok(rt.qmgr.define_route(to, &route.via[0])?),
        (Some(to), _) => Ok(rt.qmgr.define_route_group(to, &route.via)?),
        (None, _) => Ok(rt.qmgr.define_default_route(&route.via)?),
    }
}

fn parse_point(point: &str) -> ScenarioResult<PointKind> {
    let (kind, rest) = point
        .split_once(':')
        .ok_or_else(|| spec_err(format!("fault point `{point}` has no `kind:` prefix")))?;
    match kind {
        "link" => {
            let (from, to) = rest.split_once("->").ok_or_else(|| {
                spec_err(format!("link point `{point}` must be `link:<from>-><to>`"))
            })?;
            Ok(PointKind::Link {
                from: from.to_owned(),
                to: to.to_owned(),
            })
        }
        "tcp" => Ok(PointKind::Tcp {
            manager: rest.to_owned(),
        }),
        "journal" => Ok(PointKind::Journal {
            manager: rest.to_owned(),
        }),
        "crash" => Ok(PointKind::Crash {
            manager: rest.to_owned(),
        }),
        other => Err(spec_err(format!("unknown fault point kind `{other}`"))),
    }
}

fn validate_point(
    point: &PointKind,
    action: &FaultActionSpec,
    managers: &HashMap<String, ManagerRt>,
    decls: &[ChannelDecl],
    actors: &[ActorRt],
    ackers: &[AckerRt],
) -> ScenarioResult<()> {
    match point {
        PointKind::Link { from, to } => {
            let found = decls.iter().any(|d| {
                d.from == *from && d.to == *to && matches!(d.kind, ChannelKind::Link { .. })
            });
            if !found {
                return Err(spec_err(format!(
                    "fault point link:{from}->{to} matches no declared link channel"
                )));
            }
        }
        PointKind::Tcp { manager } => {
            let ok = managers.get(manager).is_some_and(|m| m.acceptor.is_some());
            if !ok {
                return Err(spec_err(format!(
                    "fault point tcp:{manager} matches no tcp manager"
                )));
            }
        }
        PointKind::Journal { manager } => {
            let ok = managers.get(manager).is_some_and(|m| m.faultable.is_some());
            if !ok {
                return Err(spec_err(format!(
                    "fault point journal:{manager} needs journal = \"faultable\""
                )));
            }
        }
        PointKind::Crash { manager } => {
            if !managers.contains_key(manager) {
                return Err(spec_err(format!(
                    "fault point crash:{manager} matches no manager"
                )));
            }
            if !matches!(action, FaultActionSpec::CrashRebuild) {
                return Err(spec_err("crash: points only take action crash_rebuild"));
            }
            if actors.iter().any(|a| a.spec.manager == *manager) {
                return Err(spec_err(format!(
                    "crash:{manager} targets a manager hosting actors; only pure relays \
                     can be crash-rebuilt"
                )));
            }
            if ackers.iter().any(|a| a.manager == *manager) {
                return Err(spec_err(format!(
                    "crash:{manager} targets a manager hosting ackers; their receivers \
                     would be left holding the dead manager"
                )));
            }
            // Inbound link transports hold the target manager directly
            // and cannot re-resolve it after a rebuild; inbound TCP
            // re-dials the (re-bound) address on its own backoff.
            if decls
                .iter()
                .any(|d| d.to == *manager && matches!(d.kind, ChannelKind::Link { .. }))
            {
                return Err(spec_err(format!(
                    "crash:{manager} has inbound link channels; crash-rebuild targets \
                     need tcp inbound edges"
                )));
            }
        }
    }
    Ok(())
}

/// Instantiates the condition tree for message `i` of an actor.
pub(crate) fn build_condition(spec: &ConditionSpec, i: u64) -> Condition {
    match spec {
        ConditionSpec::Dest(d) => Condition::from(build_dest(d, i, d.offset)),
        ConditionSpec::Set(s) => Condition::from(build_set(s, i)),
    }
}

fn build_dest(d: &DestSpec, i: u64, m: u64) -> Destination {
    let mut dest = Destination::queue(expand_msg(&d.manager, i, m), expand_msg(&d.queue, i, m));
    if let Some(r) = &d.recipient {
        dest = dest.recipient(expand_msg(r, i, m));
    }
    if let Some(ms) = d.pickup_within_ms {
        dest = dest.pickup_within(Millis(ms));
    }
    if let Some(ms) = d.process_within_ms {
        dest = dest.process_within(Millis(ms));
    }
    dest
}

fn build_set(s: &SetSpec, i: u64) -> DestinationSet {
    let mut members = Vec::new();
    for member in &s.members {
        match member {
            ConditionSpec::Dest(d) => {
                for m in d.offset..d.offset + d.count {
                    members.push(Condition::from(build_dest(d, i, m)));
                }
            }
            ConditionSpec::Set(inner) => members.push(Condition::from(build_set(inner, i))),
        }
    }
    let mut set = DestinationSet::of(members);
    if let Some(ms) = s.pickup_within_ms {
        set = set.pickup_within(Millis(ms));
    }
    if let Some(ms) = s.process_within_ms {
        set = set.process_within(Millis(ms));
    }
    if let Some(n) = s.min_pickup {
        set = set.min_pickup(n);
    }
    if let Some(n) = s.max_pickup {
        set = set.max_pickup(n);
    }
    if let Some(n) = s.min_process {
        set = set.min_process(n);
    }
    if let Some(n) = s.max_process {
        set = set.max_process(n);
    }
    set
}

/// Worst-case milliseconds from send to a deadline verdict: the longest
/// pickup window plus the longest process window anywhere in the tree.
pub(crate) fn condition_horizon_ms(spec: &ConditionSpec) -> u64 {
    fn walk(spec: &ConditionSpec, pickup: &mut u64, process: &mut u64) {
        match spec {
            ConditionSpec::Dest(d) => {
                *pickup = (*pickup).max(d.pickup_within_ms.unwrap_or(0));
                *process = (*process).max(d.process_within_ms.unwrap_or(0));
            }
            ConditionSpec::Set(s) => {
                *pickup = (*pickup).max(s.pickup_within_ms.unwrap_or(0));
                *process = (*process).max(s.process_within_ms.unwrap_or(0));
                for m in &s.members {
                    walk(m, pickup, process);
                }
            }
        }
    }
    let (mut pickup, mut process) = (0, 0);
    walk(spec, &mut pickup, &mut process);
    pickup + process
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AckerSpec, ActorSpec, ChannelSpec, ManagerSpec, QueueSpec};

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec::new("tiny")
            .manager(ManagerSpec::new("QM.{i}").fan(2, 0))
            .queue(QueueSpec::new("QM.1", "Q.APP"))
            .channel(ChannelSpec::link("QM.0", "QM.1"))
            .actor(ActorSpec::new(
                "a",
                "QM.0",
                3,
                DestSpec::new("QM.1", "Q.APP").pickup_within_ms(500),
            ))
            .acker(AckerSpec::new("QM.1", "Q.APP"))
    }

    #[test]
    fn compiles_and_expands() {
        let world = compile(&tiny_spec(), false).unwrap();
        assert_eq!(world.managers.len(), 2);
        assert!(world.managers.contains_key("QM.0"));
        assert!(world.managers.contains_key("QM.1"));
        assert_eq!(world.channels.len(), 1);
        assert_eq!(world.actors.iter().map(|a| a.count).sum::<u64>(), 3);
        assert_eq!(world.ackers.len(), 1);
        assert_eq!(world.ack_plan[&("QM.1".to_owned(), "Q.APP".to_owned())], 0);
        assert!(world.messengers.contains_key("QM.0"));
        for (_, m) in world.managers {
            m.qmgr.shutdown();
        }
    }

    #[test]
    fn rejects_dangling_references() {
        let spec = tiny_spec().queue(QueueSpec::new("QM.9", "Q.X"));
        let Err(e) = compile(&spec, false) else {
            panic!("expected a dangling-reference error");
        };
        assert!(e.to_string().contains("QM.9"), "{e}");
    }

    #[test]
    fn rejects_crash_on_actor_manager() {
        let spec = tiny_spec().fault(crate::spec::FaultSpec::at_fraction(
            "crash:QM.0",
            FaultActionSpec::CrashRebuild,
            0.5,
        ));
        let Err(e) = compile(&spec, false) else {
            panic!("expected a crash-target error");
        };
        assert!(e.to_string().contains("hosting actors"), "{e}");
    }

    #[test]
    fn fraction_triggers_resolve_to_send_indexes() {
        let spec = tiny_spec().fault(crate::spec::FaultSpec::at_fraction(
            "link:QM.0->QM.1",
            FaultActionSpec::Partition,
            0.5,
        ));
        let world = compile(&spec, false).unwrap();
        match &world.faults[0].trigger {
            ResolvedTrigger::AtSend(n) => assert_eq!(*n, 2),
            other => panic!("unexpected trigger {other:?}"),
        }
        for (_, m) in world.managers {
            m.qmgr.shutdown();
        }
    }

    #[test]
    fn condition_instantiation_expands_members() {
        let spec = ConditionSpec::Set(
            SetSpec::new()
                .member(DestSpec::new("QM.B{m}", "Q.SYNC").fan(3, 0))
                .pickup_within_ms(500),
        );
        let cond = build_condition(&spec, 7);
        let leaves = cond.leaves();
        assert_eq!(leaves.len(), 3);
        assert_eq!(leaves[0].address().manager, "QM.B0");
        assert_eq!(leaves[2].address().manager, "QM.B2");
        assert_eq!(condition_horizon_ms(&spec), 500);
    }
}
