//! Bounded condition waiting without sleep-polling.
//!
//! The executor frequently needs "wait until this becomes true, but not
//! forever": delivery settling, verdict arrival, quiescence. A [`Pacer`]
//! parks on a condvar in short bounded slices and re-checks the
//! condition, with an iteration cap so a wedged run fails loudly instead
//! of hanging the harness.

use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// One park-slice per tick.
const TICK: Duration = Duration::from_millis(2);

/// A condvar-parked, iteration-bounded waiter.
#[derive(Debug, Default)]
pub(crate) struct Pacer {
    gate: Mutex<()>,
    cv: Condvar,
}

impl Pacer {
    /// Creates a pacer.
    pub(crate) fn new() -> Pacer {
        Pacer::default()
    }

    /// Parks for one tick slice.
    pub(crate) fn tick(&self) {
        let mut guard = self.gate.lock();
        let _ = self.cv.wait_for(&mut guard, TICK);
    }

    /// Re-checks `done` once per tick, for at most `max_ticks` ticks.
    /// Returns whether the condition became true.
    pub(crate) fn wait_until(&self, max_ticks: u64, done: impl Fn() -> bool) -> bool {
        for _ in 0..max_ticks {
            if done() {
                return true;
            }
            self.tick();
        }
        done()
    }
}

/// Tick budget equivalent to roughly `ms` milliseconds of waiting.
pub(crate) fn ticks_for_ms(ms: u64) -> u64 {
    (ms / 2).max(1)
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    use super::*;

    #[test]
    fn wait_until_observes_condition() {
        let pacer = Pacer::new();
        let n = AtomicU64::new(0);
        let ok = pacer.wait_until(50, || n.fetch_add(1, Ordering::SeqCst) >= 3);
        assert!(ok);
    }

    #[test]
    fn wait_until_gives_up_after_budget() {
        let pacer = Pacer::new();
        assert!(!pacer.wait_until(3, || false));
    }

    #[test]
    fn ticks_budget() {
        assert_eq!(ticks_for_ms(1000), 500);
        assert_eq!(ticks_for_ms(1), 1);
    }
}
