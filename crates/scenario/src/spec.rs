//! The typed scenario model: what a `.toml` scenario file (or the
//! mirrored builder API) declares, before compilation onto the harness.
//!
//! A scenario names managers and their topology, queues, actor
//! populations with templated condition trees, acknowledgment behaviors
//! with latency distributions, a failure schedule, and the oracle's
//! expectations. Templates in names and payloads are expanded per index:
//! `{i}` is the entity index (message index inside actors, queue index
//! inside queues/ackers, manager index inside manager blocks), `{m}` is
//! the member index inside a destination-set fan, and `{i%N}` /`{m%N}`
//! take the index modulo `N`.

use crate::error::{spec_err, ScenarioResult};
use crate::toml::{self, Value};

// ------------------------------------------------------------ expansion --

/// Expands `{var}` / `{var%N}` placeholders using the given variable
/// bindings; unknown placeholders are left verbatim.
pub fn expand_vars(template: &str, vars: &[(char, u64)]) -> String {
    let chars: Vec<char> = template.chars().collect();
    let mut out = String::with_capacity(template.len() + 8);
    let mut k = 0;
    while k < chars.len() {
        if chars[k] == '{' {
            if let Some(close) = chars[k..].iter().position(|c| *c == '}') {
                let inner: String = chars[k + 1..k + close].iter().collect();
                if let Some(rep) = expand_one(&inner, vars) {
                    out.push_str(&rep);
                    k += close + 1;
                    continue;
                }
            }
        }
        out.push(chars[k]);
        k += 1;
    }
    out
}

fn expand_one(inner: &str, vars: &[(char, u64)]) -> Option<String> {
    let (name, modulus) = match inner.split_once('%') {
        Some((n, m)) => (n, Some(m.trim().parse::<u64>().ok()?)),
        None => (inner, None),
    };
    let name = name.trim();
    let mut it = name.chars();
    let c = it.next()?;
    if it.next().is_some() {
        return None;
    }
    let val = vars.iter().find(|(n, _)| *n == c)?.1;
    Some(match modulus {
        Some(m) if m > 0 => (val % m).to_string(),
        _ => val.to_string(),
    })
}

/// Expands a template over a single entity index `i`.
pub fn expand_idx(template: &str, i: u64) -> String {
    expand_vars(template, &[('i', i)])
}

/// Expands a template over a message index `i` and a member index `m`.
pub fn expand_msg(template: &str, i: u64, m: u64) -> String {
    expand_vars(template, &[('i', i), ('m', m)])
}

// ----------------------------------------------------------- spec types --

/// Which clock drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Deterministic virtual time; the executor advances it explicitly.
    Sim,
    /// Wall-clock time (milliseconds since world creation).
    Real,
}

/// Which journal backs a manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalKind {
    /// No persistence (`NullJournal`).
    None,
    /// In-memory journal — supports crash-and-rebuild recovery.
    Mem,
    /// [`mq::journal::FaultableJournal`] — recovery plus storage-fault
    /// injection (`fail_storage` / `tear_journal_tail`).
    Faultable,
}

/// One queue-manager population (templated over `{i}` when `count > 1`).
#[derive(Debug, Clone)]
pub struct ManagerSpec {
    /// Manager name template.
    pub name: String,
    /// Journal backend.
    pub journal: JournalKind,
    /// Whether the manager binds a loopback-TCP acceptor.
    pub tcp: bool,
    /// Number of managers this block expands to.
    pub count: u64,
    /// Starting index for `{i}`.
    pub offset: u64,
}

impl ManagerSpec {
    /// A single in-process manager with no persistence.
    pub fn new(name: impl Into<String>) -> ManagerSpec {
        ManagerSpec {
            name: name.into(),
            journal: JournalKind::None,
            tcp: false,
            count: 1,
            offset: 0,
        }
    }

    /// Sets the journal backend.
    pub fn journal(mut self, kind: JournalKind) -> ManagerSpec {
        self.journal = kind;
        self
    }

    /// Binds a loopback-TCP acceptor for this manager.
    pub fn tcp(mut self) -> ManagerSpec {
        self.tcp = true;
        self
    }

    /// Expands this block into `count` managers starting at `offset`.
    pub fn fan(mut self, count: u64, offset: u64) -> ManagerSpec {
        self.count = count;
        self.offset = offset;
        self
    }
}

/// One application-queue population on a manager.
#[derive(Debug, Clone)]
pub struct QueueSpec {
    /// Owning manager (template over `{i}`).
    pub manager: String,
    /// Queue name template.
    pub name: String,
    /// Number of queues this block expands to.
    pub count: u64,
    /// Starting index for `{i}`.
    pub offset: u64,
}

impl QueueSpec {
    /// A single queue.
    pub fn new(manager: impl Into<String>, name: impl Into<String>) -> QueueSpec {
        QueueSpec {
            manager: manager.into(),
            name: name.into(),
            count: 1,
            offset: 0,
        }
    }

    /// Expands this block into `count` queues starting at `offset`.
    pub fn fan(mut self, count: u64, offset: u64) -> QueueSpec {
        self.count = count;
        self.offset = offset;
        self
    }
}

/// The transport a channel runs over.
#[derive(Debug, Clone)]
pub enum ChannelKind {
    /// In-process simulated link.
    Link {
        /// Fixed one-way latency.
        latency_ms: u64,
        /// Additional uniform random latency.
        jitter_ms: u64,
        /// Probability in `[0, 1]` a transfer attempt is dropped.
        drop_rate: f64,
    },
    /// Loopback TCP to the target manager's acceptor.
    Tcp,
}

/// One unidirectional channel population between managers.
#[derive(Debug, Clone)]
pub struct ChannelSpec {
    /// Sending manager (template over `{i}`).
    pub from: String,
    /// Receiving manager (template over `{i}`).
    pub to: String,
    /// Transport kind.
    pub kind: ChannelKind,
    /// Whether the channel is connected at scenario start. Deferred
    /// channels (`false`) are connected only when their `from` manager
    /// goes through a `crash_rebuild` fault — the Fig. 8 "crashed
    /// mid-handoff" construction.
    pub from_start: bool,
    /// Number of channels this block expands to.
    pub count: u64,
    /// Starting index for `{i}`.
    pub offset: u64,
}

impl ChannelSpec {
    /// An ideal in-process link channel, connected from the start.
    pub fn link(from: impl Into<String>, to: impl Into<String>) -> ChannelSpec {
        ChannelSpec {
            from: from.into(),
            to: to.into(),
            kind: ChannelKind::Link {
                latency_ms: 0,
                jitter_ms: 0,
                drop_rate: 0.0,
            },
            from_start: true,
            count: 1,
            offset: 0,
        }
    }

    /// A loopback-TCP channel, connected from the start.
    pub fn tcp(from: impl Into<String>, to: impl Into<String>) -> ChannelSpec {
        ChannelSpec {
            from: from.into(),
            to: to.into(),
            kind: ChannelKind::Tcp,
            from_start: true,
            count: 1,
            offset: 0,
        }
    }

    /// Defers connection until the `from` manager is crash-rebuilt.
    pub fn deferred(mut self) -> ChannelSpec {
        self.from_start = false;
        self
    }

    /// Expands this block into `count` channels starting at `offset`.
    pub fn fan(mut self, count: u64, offset: u64) -> ChannelSpec {
        self.count = count;
        self.offset = offset;
        self
    }
}

/// One routing declaration on a manager.
#[derive(Debug, Clone)]
pub struct RouteSpec {
    /// Manager the route is defined on (template over `{i}`).
    pub manager: String,
    /// Remote manager the route targets (template over `{i}`); `None`
    /// declares the manager's *default* route instead.
    pub to: Option<String>,
    /// Transmission queues the route spreads over (a single entry is a
    /// plain route; several form a route group).
    pub via: Vec<String>,
    /// Number of routes this block expands to.
    pub count: u64,
    /// Starting index for `{i}`.
    pub offset: u64,
}

impl RouteSpec {
    /// A (group) route to `to` via the given transmission queues.
    pub fn group(
        manager: impl Into<String>,
        to: impl Into<String>,
        via: &[&str],
    ) -> RouteSpec {
        RouteSpec {
            manager: manager.into(),
            to: Some(to.into()),
            via: via.iter().map(|s| (*s).to_owned()).collect(),
            count: 1,
            offset: 0,
        }
    }

    /// A default route via the given transmission queues.
    pub fn default_via(manager: impl Into<String>, via: &[&str]) -> RouteSpec {
        RouteSpec {
            manager: manager.into(),
            to: None,
            via: via.iter().map(|s| (*s).to_owned()).collect(),
            count: 1,
            offset: 0,
        }
    }

    /// Expands this block into `count` routes starting at `offset`.
    pub fn fan(mut self, count: u64, offset: u64) -> RouteSpec {
        self.count = count;
        self.offset = offset;
        self
    }
}

/// A condition-tree shape, templated over the message index `{i}` and
/// (inside set fans) the member index `{m}`.
#[derive(Debug, Clone)]
pub enum ConditionSpec {
    /// A single-destination condition.
    Dest(DestSpec),
    /// A destination-set condition.
    Set(SetSpec),
}

/// A destination leaf (or a fan of leaves when used as a set member with
/// `count > 1`).
#[derive(Debug, Clone)]
pub struct DestSpec {
    /// Destination manager (template).
    pub manager: String,
    /// Destination queue (template).
    pub queue: String,
    /// Required recipient identity (template), if any.
    pub recipient: Option<String>,
    /// Pick-up window.
    pub pickup_within_ms: Option<u64>,
    /// Processing window.
    pub process_within_ms: Option<u64>,
    /// Fan width when this appears as a set member: expands to `count`
    /// leaves with `{m}` bound to `offset..offset+count`.
    pub count: u64,
    /// Starting member index for `{m}`.
    pub offset: u64,
}

impl DestSpec {
    /// A destination leaf.
    pub fn new(manager: impl Into<String>, queue: impl Into<String>) -> DestSpec {
        DestSpec {
            manager: manager.into(),
            queue: queue.into(),
            recipient: None,
            pickup_within_ms: None,
            process_within_ms: None,
            count: 1,
            offset: 0,
        }
    }

    /// Requires this recipient identity.
    pub fn recipient(mut self, r: impl Into<String>) -> DestSpec {
        self.recipient = Some(r.into());
        self
    }

    /// Sets the pick-up window.
    pub fn pickup_within_ms(mut self, ms: u64) -> DestSpec {
        self.pickup_within_ms = Some(ms);
        self
    }

    /// Sets the processing window.
    pub fn process_within_ms(mut self, ms: u64) -> DestSpec {
        self.process_within_ms = Some(ms);
        self
    }

    /// Expands into `count` member leaves starting at member `offset`.
    pub fn fan(mut self, count: u64, offset: u64) -> DestSpec {
        self.count = count;
        self.offset = offset;
        self
    }
}

/// A destination-set node.
#[derive(Debug, Clone, Default)]
pub struct SetSpec {
    /// Member conditions (leaf fans or nested sets).
    pub members: Vec<ConditionSpec>,
    /// Set-level pick-up window.
    pub pickup_within_ms: Option<u64>,
    /// Set-level processing window.
    pub process_within_ms: Option<u64>,
    /// Minimum pick-ups required.
    pub min_pickup: Option<u32>,
    /// Maximum pick-ups allowed.
    pub max_pickup: Option<u32>,
    /// Minimum processings required.
    pub min_process: Option<u32>,
    /// Maximum processings allowed.
    pub max_process: Option<u32>,
}

impl SetSpec {
    /// An empty set (add members before use).
    pub fn new() -> SetSpec {
        SetSpec::default()
    }

    /// Adds a member.
    pub fn member(mut self, m: impl Into<ConditionSpec>) -> SetSpec {
        self.members.push(m.into());
        self
    }

    /// Sets the set-level pick-up window.
    pub fn pickup_within_ms(mut self, ms: u64) -> SetSpec {
        self.pickup_within_ms = Some(ms);
        self
    }

    /// Sets the set-level processing window.
    pub fn process_within_ms(mut self, ms: u64) -> SetSpec {
        self.process_within_ms = Some(ms);
        self
    }

    /// Requires at least `n` processings.
    pub fn min_process(mut self, n: u32) -> SetSpec {
        self.min_process = Some(n);
        self
    }

    /// Requires at least `n` pick-ups.
    pub fn min_pickup(mut self, n: u32) -> SetSpec {
        self.min_pickup = Some(n);
        self
    }
}

impl From<DestSpec> for ConditionSpec {
    fn from(d: DestSpec) -> ConditionSpec {
        ConditionSpec::Dest(d)
    }
}

impl From<SetSpec> for ConditionSpec {
    fn from(s: SetSpec) -> ConditionSpec {
        ConditionSpec::Set(s)
    }
}

/// How an actor produces its messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActorMode {
    /// Plain conditional sends.
    Send,
    /// Each "message" is one dependency-sphere round containing a single
    /// conditional send, committed (or aborted) before the next round.
    Sphere {
        /// Sphere timeout; pending member verdicts past it are
        /// force-failed and the sphere aborts.
        timeout_ms: u64,
    },
}

/// The declared per-message expectation the oracle enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expect {
    /// Every message must reach `Success`.
    Success,
    /// Every message must reach `Failure` (and its compensation path).
    Failure,
    /// Outcomes follow the sampled acknowledgment delays: the executor
    /// computes the exact expected success/failure split from the seeded
    /// samples and the pick-up window. Requires a root `dest` condition
    /// with `pickup_within_ms`.
    Sampled,
    /// Every send must fail at the send call itself (storage faults).
    SendError,
    /// Every sphere round must commit.
    Commit,
    /// Every sphere round must abort.
    Abort,
}

/// One actor population: a templated stream of conditional messages (or
/// sphere rounds) with a declared expectation.
#[derive(Debug, Clone)]
pub struct ActorSpec {
    /// Actor name (diagnostics and oracle rows).
    pub name: String,
    /// Manager the actor sends from.
    pub manager: String,
    /// Messages (or sphere rounds) in a full run.
    pub count: u64,
    /// Override for `--quick` runs.
    pub quick_count: Option<u64>,
    /// Payload template (`{i}`).
    pub payload: String,
    /// Compensation payload template, if the sends carry one.
    pub compensation: Option<String>,
    /// Send or sphere mode.
    pub mode: ActorMode,
    /// Declared expectation.
    pub expect: Expect,
    /// Per-send evaluation timeout.
    pub evaluation_timeout_ms: Option<u64>,
    /// The condition-tree shape.
    pub condition: ConditionSpec,
}

impl ActorSpec {
    /// A send-mode actor expecting success on every message.
    pub fn new(
        name: impl Into<String>,
        manager: impl Into<String>,
        count: u64,
        condition: impl Into<ConditionSpec>,
    ) -> ActorSpec {
        ActorSpec {
            name: name.into(),
            manager: manager.into(),
            count,
            quick_count: None,
            payload: "payload-{i}".to_owned(),
            compensation: None,
            mode: ActorMode::Send,
            expect: Expect::Success,
            evaluation_timeout_ms: None,
            condition: condition.into(),
        }
    }

    /// Sets the payload template.
    pub fn payload(mut self, p: impl Into<String>) -> ActorSpec {
        self.payload = p.into();
        self
    }

    /// Attaches a compensation payload template.
    pub fn compensation(mut self, c: impl Into<String>) -> ActorSpec {
        self.compensation = Some(c.into());
        self
    }

    /// Sets the declared expectation.
    pub fn expect(mut self, e: Expect) -> ActorSpec {
        self.expect = e;
        self
    }

    /// Switches to sphere mode with the given sphere timeout.
    pub fn sphere(mut self, timeout_ms: u64) -> ActorSpec {
        self.mode = ActorMode::Sphere { timeout_ms };
        self
    }

    /// Sets the `--quick` message count.
    pub fn quick_count(mut self, n: u64) -> ActorSpec {
        self.quick_count = Some(n);
        self
    }

    /// Sets the per-send evaluation timeout.
    pub fn evaluation_timeout_ms(mut self, ms: u64) -> ActorSpec {
        self.evaluation_timeout_ms = Some(ms);
        self
    }

    /// Message count for this run mode.
    pub fn resolved_count(&self, quick: bool) -> u64 {
        if quick {
            self.quick_count.unwrap_or(self.count)
        } else {
            self.count
        }
    }
}

/// Acknowledgment latency distribution (seeded, deterministic).
#[derive(Debug, Clone)]
pub enum DelaySpec {
    /// Fixed delay.
    Fixed {
        /// Delay in milliseconds.
        ms: u64,
    },
    /// Uniform over `[min_ms, max_ms]`.
    Uniform {
        /// Inclusive lower bound.
        min_ms: u64,
        /// Inclusive upper bound.
        max_ms: u64,
    },
    /// Heavy-tailed Pareto: `scale_ms / u^(1/alpha)`, capped.
    Pareto {
        /// Scale (the distribution's minimum).
        scale_ms: f64,
        /// Tail exponent; smaller is heavier.
        alpha: f64,
        /// Hard cap on sampled delays.
        cap_ms: u64,
    },
}

/// What an acknowledging receiver does with each message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckMode {
    /// Non-transactional read (read-ack only).
    Read,
    /// Transactional read + commit (read-ack then process-ack).
    Process,
}

/// One acknowledging-receiver population over a queue fan.
#[derive(Debug, Clone)]
pub struct AckerSpec {
    /// Manager the queues live on (template over `{i}`).
    pub manager: String,
    /// Queue name template.
    pub queue: String,
    /// Receiver identity template, if acks must carry one.
    pub recipient: Option<String>,
    /// Read or process behavior.
    pub mode: AckMode,
    /// Latency distribution before each read.
    pub delay: DelaySpec,
    /// Number of queues covered.
    pub count: u64,
    /// Starting index for `{i}`.
    pub offset: u64,
}

impl AckerSpec {
    /// A read-mode acker with zero delay on a single queue.
    pub fn new(manager: impl Into<String>, queue: impl Into<String>) -> AckerSpec {
        AckerSpec {
            manager: manager.into(),
            queue: queue.into(),
            recipient: None,
            mode: AckMode::Read,
            delay: DelaySpec::Fixed { ms: 0 },
            count: 1,
            offset: 0,
        }
    }

    /// Sets the receiver identity template.
    pub fn recipient(mut self, r: impl Into<String>) -> AckerSpec {
        self.recipient = Some(r.into());
        self
    }

    /// Switches to transactional process mode.
    pub fn process(mut self) -> AckerSpec {
        self.mode = AckMode::Process;
        self
    }

    /// Sets the delay distribution.
    pub fn delay(mut self, d: DelaySpec) -> AckerSpec {
        self.delay = d;
        self
    }

    /// Expands over `count` queues starting at `offset`.
    pub fn fan(mut self, count: u64, offset: u64) -> AckerSpec {
        self.count = count;
        self.offset = offset;
        self
    }
}

/// A fault action, mirroring [`mq::FaultAction`] plus the executor-level
/// crash-and-rebuild recipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultActionSpec {
    /// Partition the fault point.
    Partition,
    /// Heal a partition.
    Heal,
    /// Drop the next `n` transfers.
    DropNext(u64),
    /// Kick all live connections.
    KickConnections,
    /// Tear the newest journal record off.
    TearJournalTail,
    /// Start failing journal appends.
    FailStorage,
    /// Stop failing journal appends.
    HealStorage,
    /// Crash the manager and rebuild it from its journal (same name,
    /// same address, deferred channels connected, routes reapplied).
    CrashRebuild,
}

/// When a fault fires.
#[derive(Debug, Clone)]
pub enum TriggerSpec {
    /// At this many milliseconds of scenario clock.
    AtMs(u64),
    /// Just before the send whose global index is this fraction of the
    /// total planned sends (scales with `--quick`).
    AfterFraction(f64),
    /// When a queue's depth first reaches `min_depth`.
    WhenDepth {
        /// Manager owning the queue.
        manager: String,
        /// Queue name.
        queue: String,
        /// Depth threshold.
        min_depth: u64,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Fault point: `link:<from>-><to>`, `tcp:<manager>`,
    /// `journal:<manager>`, or `crash:<manager>`.
    pub point: String,
    /// The action.
    pub action: FaultActionSpec,
    /// When it fires.
    pub trigger: TriggerSpec,
}

impl FaultSpec {
    /// A fault firing just before the given fraction of total sends.
    pub fn at_fraction(
        point: impl Into<String>,
        action: FaultActionSpec,
        fraction: f64,
    ) -> FaultSpec {
        FaultSpec {
            point: point.into(),
            action,
            trigger: TriggerSpec::AfterFraction(fraction),
        }
    }

    /// A fault firing when a queue depth reaches a threshold.
    pub fn when_depth(
        point: impl Into<String>,
        action: FaultActionSpec,
        manager: impl Into<String>,
        queue: impl Into<String>,
        min_depth: u64,
    ) -> FaultSpec {
        FaultSpec {
            point: point.into(),
            action,
            trigger: TriggerSpec::WhenDepth {
                manager: manager.into(),
                queue: queue.into(),
                min_depth,
            },
        }
    }
}

/// A minimum-value assertion on a run-wide metric counter.
#[derive(Debug, Clone)]
pub struct MetricExpect {
    /// Metric name (validated against `mq::obs`'s registry by cond-verify).
    pub metric: String,
    /// Minimum value after the run.
    pub min: u64,
}

/// The oracle's declared expectations beyond per-actor outcomes.
#[derive(Debug, Clone)]
pub struct OracleSpec {
    /// Every manager's dead-letter queue must be empty.
    pub dlq_empty: bool,
    /// Every destination queue must be drained after the sweep.
    pub destinations_drained: bool,
    /// Metric floors.
    pub metrics: Vec<MetricExpect>,
    /// Trace stages that must appear in the lifecycle trace.
    pub stages: Vec<String>,
}

impl Default for OracleSpec {
    fn default() -> OracleSpec {
        OracleSpec {
            dlq_empty: true,
            destinations_drained: true,
            metrics: Vec::new(),
            stages: Vec::new(),
        }
    }
}

/// A complete scenario declaration.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name.
    pub name: String,
    /// Seed for every deterministic sampler in the run.
    pub seed: u64,
    /// Clock mode.
    pub clock: ClockMode,
    /// Manager populations.
    pub managers: Vec<ManagerSpec>,
    /// Queue populations.
    pub queues: Vec<QueueSpec>,
    /// Channel populations.
    pub channels: Vec<ChannelSpec>,
    /// Routing declarations.
    pub routes: Vec<RouteSpec>,
    /// Actor populations.
    pub actors: Vec<ActorSpec>,
    /// Acknowledging receivers.
    pub ackers: Vec<AckerSpec>,
    /// Failure schedule.
    pub faults: Vec<FaultSpec>,
    /// Oracle expectations.
    pub oracle: OracleSpec,
}

impl ScenarioSpec {
    /// An empty scenario on a sim clock with seed 1.
    pub fn new(name: impl Into<String>) -> ScenarioSpec {
        ScenarioSpec {
            name: name.into(),
            seed: 1,
            clock: ClockMode::Sim,
            managers: Vec::new(),
            queues: Vec::new(),
            channels: Vec::new(),
            routes: Vec::new(),
            actors: Vec::new(),
            ackers: Vec::new(),
            faults: Vec::new(),
            oracle: OracleSpec::default(),
        }
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> ScenarioSpec {
        self.seed = seed;
        self
    }

    /// Sets the clock mode.
    pub fn clock(mut self, mode: ClockMode) -> ScenarioSpec {
        self.clock = mode;
        self
    }

    /// Adds a manager block.
    pub fn manager(mut self, m: ManagerSpec) -> ScenarioSpec {
        self.managers.push(m);
        self
    }

    /// Adds a queue block.
    pub fn queue(mut self, q: QueueSpec) -> ScenarioSpec {
        self.queues.push(q);
        self
    }

    /// Adds a channel block.
    pub fn channel(mut self, c: ChannelSpec) -> ScenarioSpec {
        self.channels.push(c);
        self
    }

    /// Adds a routing declaration.
    pub fn route(mut self, r: RouteSpec) -> ScenarioSpec {
        self.routes.push(r);
        self
    }

    /// Adds an actor block.
    pub fn actor(mut self, a: ActorSpec) -> ScenarioSpec {
        self.actors.push(a);
        self
    }

    /// Adds an acker block.
    pub fn acker(mut self, a: AckerSpec) -> ScenarioSpec {
        self.ackers.push(a);
        self
    }

    /// Adds a fault.
    pub fn fault(mut self, f: FaultSpec) -> ScenarioSpec {
        self.faults.push(f);
        self
    }

    /// Replaces the oracle section.
    pub fn oracle(mut self, o: OracleSpec) -> ScenarioSpec {
        self.oracle = o;
        self
    }

    /// Parses a scenario from TOML source.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Toml`] on syntax errors, [`ScenarioError::Spec`]
    /// on structural problems.
    pub fn from_toml_str(src: &str) -> ScenarioResult<ScenarioSpec> {
        let root = toml::parse(src)?;
        decode_scenario(&root)
    }

    /// Structural validation beyond what decoding enforces.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Spec`] naming the violation.
    pub fn validate(&self) -> ScenarioResult<()> {
        if self.managers.is_empty() {
            return Err(spec_err("scenario declares no managers"));
        }
        if self.actors.is_empty() {
            return Err(spec_err("scenario declares no actors"));
        }
        for a in &self.actors {
            if matches!(a.expect, Expect::Sampled) {
                let ok = matches!(
                    &a.condition,
                    ConditionSpec::Dest(d) if d.pickup_within_ms.is_some() && d.count == 1
                );
                if !ok {
                    return Err(spec_err(format!(
                        "actor `{}`: expect=\"sampled\" requires a single-destination \
                         condition with pickup_within_ms",
                        a.name
                    )));
                }
            }
            let sphere_expect = matches!(a.expect, Expect::Commit | Expect::Abort);
            let sphere_mode = matches!(a.mode, ActorMode::Sphere { .. });
            if sphere_expect != sphere_mode {
                return Err(spec_err(format!(
                    "actor `{}`: commit/abort expectations and sphere mode go together",
                    a.name
                )));
            }
            if sphere_mode && self.clock == ClockMode::Sim {
                return Err(spec_err(format!(
                    "actor `{}`: sphere mode requires clock = \"real\"",
                    a.name
                )));
            }
            if let ConditionSpec::Dest(d) = &a.condition {
                if d.count != 1 {
                    return Err(spec_err(format!(
                        "actor `{}`: a root dest condition cannot fan (count must be 1)",
                        a.name
                    )));
                }
            }
        }
        Ok(())
    }
}

// --------------------------------------------------------- toml decoding --

fn want_table<'v>(v: &'v Value, ctx: &str) -> ScenarioResult<&'v Value> {
    if v.as_table().is_some() {
        Ok(v)
    } else {
        Err(spec_err(format!("{ctx}: expected a table, got {}", v.type_name())))
    }
}

fn known_keys(v: &Value, allowed: &[&str], ctx: &str) -> ScenarioResult<()> {
    if let Some(t) = v.as_table() {
        for k in t.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(spec_err(format!("{ctx}: unknown key `{k}`")));
            }
        }
    }
    Ok(())
}

fn req_str(v: &Value, key: &str, ctx: &str) -> ScenarioResult<String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| spec_err(format!("{ctx}: missing string key `{key}`")))
}

fn opt_str(v: &Value, key: &str) -> Option<String> {
    v.get(key).and_then(Value::as_str).map(str::to_owned)
}

fn opt_u64(v: &Value, key: &str, ctx: &str) -> ScenarioResult<Option<u64>> {
    match v.get(key) {
        None => Ok(None),
        Some(val) => match val.as_int() {
            Some(n) if n >= 0 => Ok(Some(n as u64)),
            _ => Err(spec_err(format!(
                "{ctx}: `{key}` must be a non-negative integer"
            ))),
        },
    }
}

fn u64_or(v: &Value, key: &str, default: u64, ctx: &str) -> ScenarioResult<u64> {
    Ok(opt_u64(v, key, ctx)?.unwrap_or(default))
}

fn opt_u32(v: &Value, key: &str, ctx: &str) -> ScenarioResult<Option<u32>> {
    Ok(opt_u64(v, key, ctx)?.map(|n| n as u32))
}

fn f64_or(v: &Value, key: &str, default: f64, ctx: &str) -> ScenarioResult<f64> {
    match v.get(key) {
        None => Ok(default),
        Some(val) => val
            .as_float()
            .ok_or_else(|| spec_err(format!("{ctx}: `{key}` must be a number"))),
    }
}

fn bool_or(v: &Value, key: &str, default: bool, ctx: &str) -> ScenarioResult<bool> {
    match v.get(key) {
        None => Ok(default),
        Some(val) => val
            .as_bool()
            .ok_or_else(|| spec_err(format!("{ctx}: `{key}` must be a boolean"))),
    }
}

fn str_array(v: &Value, key: &str, ctx: &str) -> ScenarioResult<Vec<String>> {
    let arr = v
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| spec_err(format!("{ctx}: missing array key `{key}`")))?;
    let mut out = Vec::with_capacity(arr.len());
    for item in arr {
        out.push(
            item.as_str()
                .map(str::to_owned)
                .ok_or_else(|| spec_err(format!("{ctx}: `{key}` entries must be strings")))?,
        );
    }
    Ok(out)
}

fn blocks<'v>(root: &'v Value, key: &str) -> ScenarioResult<Vec<&'v Value>> {
    match root.get(key) {
        None => Ok(Vec::new()),
        Some(Value::Array(items)) => {
            let mut out = Vec::with_capacity(items.len());
            for (k, item) in items.iter().enumerate() {
                out.push(want_table(item, &format!("[[{key}]] #{k}"))?);
            }
            Ok(out)
        }
        Some(other) => Err(spec_err(format!(
            "`{key}` must be an array of tables, got {}",
            other.type_name()
        ))),
    }
}

fn decode_scenario(root: &Value) -> ScenarioResult<ScenarioSpec> {
    known_keys(
        root,
        &[
            "name", "seed", "clock", "managers", "queues", "channels", "routes", "actors",
            "ackers", "faults", "oracle",
        ],
        "scenario",
    )?;
    let name = req_str(root, "name", "scenario")?;
    let seed = u64_or(root, "seed", 1, "scenario")?;
    let clock = match opt_str(root, "clock").as_deref() {
        None | Some("sim") => ClockMode::Sim,
        Some("real") => ClockMode::Real,
        Some(other) => return Err(spec_err(format!("unknown clock `{other}`"))),
    };

    let mut spec = ScenarioSpec::new(name).seed(seed).clock(clock);
    for b in blocks(root, "managers")? {
        spec.managers.push(decode_manager(b)?);
    }
    for b in blocks(root, "queues")? {
        spec.queues.push(decode_queue(b)?);
    }
    for b in blocks(root, "channels")? {
        spec.channels.push(decode_channel(b)?);
    }
    for b in blocks(root, "routes")? {
        spec.routes.push(decode_route(b)?);
    }
    for b in blocks(root, "actors")? {
        spec.actors.push(decode_actor(b)?);
    }
    for b in blocks(root, "ackers")? {
        spec.ackers.push(decode_acker(b)?);
    }
    for b in blocks(root, "faults")? {
        spec.faults.push(decode_fault(b)?);
    }
    if let Some(o) = root.get("oracle") {
        spec.oracle = decode_oracle(want_table(o, "oracle")?)?;
    }
    Ok(spec)
}

fn decode_manager(v: &Value) -> ScenarioResult<ManagerSpec> {
    let ctx = "[[managers]]";
    known_keys(v, &["name", "journal", "tcp", "count", "offset"], ctx)?;
    let journal = match opt_str(v, "journal").as_deref() {
        None | Some("none") => JournalKind::None,
        Some("mem") => JournalKind::Mem,
        Some("faultable") => JournalKind::Faultable,
        Some(other) => return Err(spec_err(format!("{ctx}: unknown journal `{other}`"))),
    };
    Ok(ManagerSpec {
        name: req_str(v, "name", ctx)?,
        journal,
        tcp: bool_or(v, "tcp", false, ctx)?,
        count: u64_or(v, "count", 1, ctx)?,
        offset: u64_or(v, "offset", 0, ctx)?,
    })
}

fn decode_queue(v: &Value) -> ScenarioResult<QueueSpec> {
    let ctx = "[[queues]]";
    known_keys(v, &["manager", "name", "count", "offset"], ctx)?;
    Ok(QueueSpec {
        manager: req_str(v, "manager", ctx)?,
        name: req_str(v, "name", ctx)?,
        count: u64_or(v, "count", 1, ctx)?,
        offset: u64_or(v, "offset", 0, ctx)?,
    })
}

fn decode_channel(v: &Value) -> ScenarioResult<ChannelSpec> {
    let ctx = "[[channels]]";
    known_keys(
        v,
        &[
            "from", "to", "kind", "latency_ms", "jitter_ms", "drop_rate", "from_start", "count",
            "offset",
        ],
        ctx,
    )?;
    let kind = match opt_str(v, "kind").as_deref() {
        None | Some("link") => ChannelKind::Link {
            latency_ms: u64_or(v, "latency_ms", 0, ctx)?,
            jitter_ms: u64_or(v, "jitter_ms", 0, ctx)?,
            drop_rate: f64_or(v, "drop_rate", 0.0, ctx)?,
        },
        Some("tcp") => ChannelKind::Tcp,
        Some(other) => return Err(spec_err(format!("{ctx}: unknown channel kind `{other}`"))),
    };
    Ok(ChannelSpec {
        from: req_str(v, "from", ctx)?,
        to: req_str(v, "to", ctx)?,
        kind,
        from_start: bool_or(v, "from_start", true, ctx)?,
        count: u64_or(v, "count", 1, ctx)?,
        offset: u64_or(v, "offset", 0, ctx)?,
    })
}

fn decode_route(v: &Value) -> ScenarioResult<RouteSpec> {
    let ctx = "[[routes]]";
    known_keys(v, &["manager", "to", "via", "count", "offset"], ctx)?;
    Ok(RouteSpec {
        manager: req_str(v, "manager", ctx)?,
        to: opt_str(v, "to"),
        via: str_array(v, "via", ctx)?,
        count: u64_or(v, "count", 1, ctx)?,
        offset: u64_or(v, "offset", 0, ctx)?,
    })
}

fn decode_condition(v: &Value, ctx: &str) -> ScenarioResult<ConditionSpec> {
    let kind = opt_str(v, "kind").unwrap_or_else(|| "dest".to_owned());
    match kind.as_str() {
        "dest" => {
            known_keys(
                v,
                &[
                    "kind", "manager", "queue", "recipient", "pickup_within_ms",
                    "process_within_ms", "count", "offset",
                ],
                ctx,
            )?;
            Ok(ConditionSpec::Dest(DestSpec {
                manager: req_str(v, "manager", ctx)?,
                queue: req_str(v, "queue", ctx)?,
                recipient: opt_str(v, "recipient"),
                pickup_within_ms: opt_u64(v, "pickup_within_ms", ctx)?,
                process_within_ms: opt_u64(v, "process_within_ms", ctx)?,
                count: u64_or(v, "count", 1, ctx)?,
                offset: u64_or(v, "offset", 0, ctx)?,
            }))
        }
        "set" => {
            known_keys(
                v,
                &[
                    "kind", "members", "pickup_within_ms", "process_within_ms", "min_pickup",
                    "max_pickup", "min_process", "max_process",
                ],
                ctx,
            )?;
            let raw = v
                .get("members")
                .and_then(Value::as_array)
                .ok_or_else(|| spec_err(format!("{ctx}: set condition needs [[…members]]")))?;
            let mut members = Vec::with_capacity(raw.len());
            for (k, m) in raw.iter().enumerate() {
                members.push(decode_condition(m, &format!("{ctx}.members #{k}"))?);
            }
            Ok(ConditionSpec::Set(SetSpec {
                members,
                pickup_within_ms: opt_u64(v, "pickup_within_ms", ctx)?,
                process_within_ms: opt_u64(v, "process_within_ms", ctx)?,
                min_pickup: opt_u32(v, "min_pickup", ctx)?,
                max_pickup: opt_u32(v, "max_pickup", ctx)?,
                min_process: opt_u32(v, "min_process", ctx)?,
                max_process: opt_u32(v, "max_process", ctx)?,
            }))
        }
        other => Err(spec_err(format!("{ctx}: unknown condition kind `{other}`"))),
    }
}

fn decode_actor(v: &Value) -> ScenarioResult<ActorSpec> {
    let ctx = "[[actors]]";
    known_keys(
        v,
        &[
            "name", "manager", "count", "quick_count", "payload", "compensation", "mode",
            "sphere_timeout_ms", "expect", "evaluation_timeout_ms", "condition",
        ],
        ctx,
    )?;
    let name = req_str(v, "name", ctx)?;
    let ctx = &format!("actor `{name}`");
    let mode = match opt_str(v, "mode").as_deref() {
        None | Some("send") => ActorMode::Send,
        Some("sphere") => ActorMode::Sphere {
            timeout_ms: u64_or(v, "sphere_timeout_ms", 5_000, ctx)?,
        },
        Some(other) => return Err(spec_err(format!("{ctx}: unknown mode `{other}`"))),
    };
    let expect = match opt_str(v, "expect").as_deref() {
        None | Some("success") => Expect::Success,
        Some("failure") => Expect::Failure,
        Some("sampled") => Expect::Sampled,
        Some("send_error") => Expect::SendError,
        Some("commit") => Expect::Commit,
        Some("abort") => Expect::Abort,
        Some(other) => return Err(spec_err(format!("{ctx}: unknown expect `{other}`"))),
    };
    let condition = decode_condition(
        v.get("condition")
            .ok_or_else(|| spec_err(format!("{ctx}: missing [actors.condition]")))?,
        &format!("{ctx}.condition"),
    )?;
    Ok(ActorSpec {
        name,
        manager: req_str(v, "manager", ctx)?,
        count: u64_or(v, "count", 1, ctx)?,
        quick_count: opt_u64(v, "quick_count", ctx)?,
        payload: opt_str(v, "payload").unwrap_or_else(|| "payload-{i}".to_owned()),
        compensation: opt_str(v, "compensation"),
        mode,
        expect,
        evaluation_timeout_ms: opt_u64(v, "evaluation_timeout_ms", ctx)?,
        condition,
    })
}

fn decode_delay(v: &Value, ctx: &str) -> ScenarioResult<DelaySpec> {
    match opt_str(v, "kind").as_deref() {
        None | Some("fixed") => Ok(DelaySpec::Fixed {
            ms: u64_or(v, "ms", 0, ctx)?,
        }),
        Some("uniform") => Ok(DelaySpec::Uniform {
            min_ms: u64_or(v, "min_ms", 0, ctx)?,
            max_ms: u64_or(v, "max_ms", 0, ctx)?,
        }),
        Some("pareto") => Ok(DelaySpec::Pareto {
            scale_ms: f64_or(v, "scale_ms", 1.0, ctx)?,
            alpha: f64_or(v, "alpha", 1.5, ctx)?,
            cap_ms: u64_or(v, "cap_ms", u64::MAX, ctx)?,
        }),
        Some(other) => Err(spec_err(format!("{ctx}: unknown delay kind `{other}`"))),
    }
}

fn decode_acker(v: &Value) -> ScenarioResult<AckerSpec> {
    let ctx = "[[ackers]]";
    known_keys(
        v,
        &["manager", "queue", "recipient", "mode", "delay", "count", "offset"],
        ctx,
    )?;
    let mode = match opt_str(v, "mode").as_deref() {
        None | Some("read") => AckMode::Read,
        Some("process") => AckMode::Process,
        Some(other) => return Err(spec_err(format!("{ctx}: unknown ack mode `{other}`"))),
    };
    let delay = match v.get("delay") {
        None => DelaySpec::Fixed { ms: 0 },
        Some(d) => decode_delay(want_table(d, &format!("{ctx}.delay"))?, &format!("{ctx}.delay"))?,
    };
    Ok(AckerSpec {
        manager: req_str(v, "manager", ctx)?,
        queue: req_str(v, "queue", ctx)?,
        recipient: opt_str(v, "recipient"),
        mode,
        delay,
        count: u64_or(v, "count", 1, ctx)?,
        offset: u64_or(v, "offset", 0, ctx)?,
    })
}

fn decode_fault(v: &Value) -> ScenarioResult<FaultSpec> {
    let ctx = "[[faults]]";
    known_keys(
        v,
        &["point", "action", "n", "at_ms", "after_fraction", "when_depth"],
        ctx,
    )?;
    let action = match req_str(v, "action", ctx)?.as_str() {
        "partition" => FaultActionSpec::Partition,
        "heal" => FaultActionSpec::Heal,
        "drop_next" => FaultActionSpec::DropNext(u64_or(v, "n", 1, ctx)?),
        "kick_connections" => FaultActionSpec::KickConnections,
        "tear_journal_tail" => FaultActionSpec::TearJournalTail,
        "fail_storage" => FaultActionSpec::FailStorage,
        "heal_storage" => FaultActionSpec::HealStorage,
        "crash_rebuild" => FaultActionSpec::CrashRebuild,
        other => return Err(spec_err(format!("{ctx}: unknown action `{other}`"))),
    };
    let trigger = if let Some(at) = opt_u64(v, "at_ms", ctx)? {
        TriggerSpec::AtMs(at)
    } else if let Some(w) = v.get("when_depth") {
        let wctx = &format!("{ctx}.when_depth");
        known_keys(w, &["manager", "queue", "min_depth"], wctx)?;
        TriggerSpec::WhenDepth {
            manager: req_str(w, "manager", wctx)?,
            queue: req_str(w, "queue", wctx)?,
            min_depth: u64_or(w, "min_depth", 1, wctx)?,
        }
    } else {
        TriggerSpec::AfterFraction(f64_or(v, "after_fraction", 0.0, ctx)?)
    };
    Ok(FaultSpec {
        point: req_str(v, "point", ctx)?,
        action,
        trigger,
    })
}

fn decode_oracle(v: &Value) -> ScenarioResult<OracleSpec> {
    let ctx = "[oracle]";
    known_keys(
        v,
        &["dlq_empty", "destinations_drained", "metrics", "stages"],
        ctx,
    )?;
    let mut oracle = OracleSpec {
        dlq_empty: bool_or(v, "dlq_empty", true, ctx)?,
        destinations_drained: bool_or(v, "destinations_drained", true, ctx)?,
        metrics: Vec::new(),
        stages: Vec::new(),
    };
    for b in blocks(v, "metrics")? {
        let mctx = "[[oracle.metrics]]";
        known_keys(b, &["metric", "min"], mctx)?;
        oracle.metrics.push(MetricExpect {
            metric: req_str(b, "metric", mctx)?,
            min: u64_or(b, "min", 1, mctx)?,
        });
    }
    for b in blocks(v, "stages")? {
        let sctx = "[[oracle.stages]]";
        known_keys(b, &["stage"], sctx)?;
        oracle.stages.push(req_str(b, "stage", sctx)?);
    }
    Ok(oracle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_covers_plain_modulo_and_unknown() {
        assert_eq!(expand_idx("Q.DEV.{i}", 7), "Q.DEV.7");
        assert_eq!(expand_idx("Q.DEV.{i%4}", 7), "Q.DEV.3");
        assert_eq!(expand_msg("m{m}-i{i}", 2, 5), "m5-i2");
        assert_eq!(expand_idx("keep {braces}", 1), "keep {braces}");
        assert_eq!(expand_idx("{i%0}", 9), "9", "zero modulus is ignored");
    }

    #[test]
    fn decodes_a_full_scenario() {
        let src = r#"
name = "demo"
seed = 7
clock = "real"

[[managers]]
name = "QM.B{i}"
count = 2
tcp = true
journal = "mem"

[[queues]]
manager = "QM.B{i}"
name = "Q.SYNC"
count = 2

[[channels]]
from = "QM.B0"
to = "QM.B1"
kind = "tcp"
from_start = false

[[routes]]
manager = "QM.B0"
to = "QM.B1"
via = ["SYSTEM.XMIT.QM.B1"]

[[actors]]
name = "sender"
manager = "QM.B0"
count = 10
quick_count = 2
payload = "p-{i}"
compensation = "c-{i}"
expect = "failure"

[actors.condition]
kind = "set"
pickup_within_ms = 500

[[actors.condition.members]]
manager = "QM.B{m}"
queue = "Q.SYNC"
count = 2

[[ackers]]
manager = "QM.B1"
queue = "Q.SYNC"
mode = "process"
[ackers.delay]
kind = "uniform"
min_ms = 1
max_ms = 5

[[faults]]
point = "crash:QM.B0"
action = "crash_rebuild"
[faults.when_depth]
manager = "QM.B0"
queue = "SYSTEM.XMIT.QM.B1"
min_depth = 3

[oracle]
dlq_empty = true
[[oracle.metrics]]
metric = "cond.sent"
min = 10
[[oracle.stages]]
stage = "comp-released"
"#;
        let spec = ScenarioSpec::from_toml_str(src).unwrap();
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.clock, ClockMode::Real);
        assert_eq!(spec.managers[0].count, 2);
        assert!(spec.managers[0].tcp);
        assert_eq!(spec.managers[0].journal, JournalKind::Mem);
        assert!(!spec.channels[0].from_start);
        let actor = &spec.actors[0];
        assert_eq!(actor.resolved_count(true), 2);
        assert_eq!(actor.resolved_count(false), 10);
        assert_eq!(actor.expect, Expect::Failure);
        match &actor.condition {
            ConditionSpec::Set(s) => {
                assert_eq!(s.pickup_within_ms, Some(500));
                assert_eq!(s.members.len(), 1);
                match &s.members[0] {
                    ConditionSpec::Dest(d) => assert_eq!(d.count, 2),
                    other => panic!("expected dest fan, got {other:?}"),
                }
            }
            other => panic!("expected set, got {other:?}"),
        }
        assert!(matches!(spec.ackers[0].mode, AckMode::Process));
        assert!(matches!(
            spec.ackers[0].delay,
            DelaySpec::Uniform { min_ms: 1, max_ms: 5 }
        ));
        assert!(matches!(
            spec.faults[0].trigger,
            TriggerSpec::WhenDepth { min_depth: 3, .. }
        ));
        assert_eq!(spec.oracle.metrics[0].metric, "cond.sent");
        assert_eq!(spec.oracle.stages[0], "comp-released");
        spec.validate().unwrap();
    }

    #[test]
    fn rejects_unknown_keys_and_bad_enums() {
        assert!(ScenarioSpec::from_toml_str("name = \"x\"\nbogus = 1").is_err());
        let e = ScenarioSpec::from_toml_str(
            "name = \"x\"\n[[actors]]\nname = \"a\"\nmanager = \"Q\"\nexpect = \"maybe\"\n[actors.condition]\nmanager = \"Q\"\nqueue = \"Q\"",
        )
        .unwrap_err();
        assert!(e.to_string().contains("unknown expect"), "{e}");
    }

    #[test]
    fn validation_ties_spheres_to_real_clock() {
        let spec = ScenarioSpec::new("s")
            .manager(ManagerSpec::new("QM1"))
            .actor(
                ActorSpec::new("a", "QM1", 1, DestSpec::new("QM1", "Q"))
                    .sphere(1_000)
                    .expect(Expect::Commit),
            );
        let e = spec.validate().unwrap_err();
        assert!(e.to_string().contains("real"), "{e}");
    }

    #[test]
    fn validation_requires_pickup_window_for_sampled() {
        let spec = ScenarioSpec::new("s")
            .manager(ManagerSpec::new("QM1"))
            .actor(ActorSpec::new("a", "QM1", 1, DestSpec::new("QM1", "Q")).expect(Expect::Sampled));
        assert!(spec.validate().is_err());
    }
}
