//! A small dependency-free TOML-subset deserializer, in the spirit of
//! `cond-lint`'s hand-rolled lexer: enough of the grammar to express
//! scenario specs, with line-numbered errors and nothing else.
//!
//! Supported: comments (`#`), bare/quoted keys, `[table]` and nested
//! `[a.b]` headers, `[[array-of-tables]]` (including nested
//! `[[a.b]]` under the most recent `[[a]]` element), basic strings with
//! the common escapes, integers (with `_` separators), floats, booleans,
//! homogeneous-or-not arrays, and inline tables `{k = v, …}`.
//!
//! Not supported (and not needed by scenario specs): dotted keys in
//! assignment position, multi-line strings, literal strings, dates,
//! hex/octal/binary integers.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array of values.
    Array(Vec<Value>),
    /// A table (standard, inline, or array-of-tables element).
    Table(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a float (integers widen), if numeric.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a table, if it is one.
    pub fn as_table(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }

    /// Looks up `key` in a table value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_table().and_then(|t| t.get(key))
    }

    /// A short name for the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
            Value::Table(_) => "table",
        }
    }
}

/// A parse error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line the error was detected on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "toml line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

fn err(line: usize, message: impl Into<String>) -> TomlError {
    TomlError {
        line,
        message: message.into(),
    }
}

/// Parses a TOML document into its root table.
///
/// # Errors
///
/// [`TomlError`] with the offending line on any syntax violation,
/// duplicate key, or unsupported construct.
pub fn parse(src: &str) -> Result<Value, TomlError> {
    let mut root: BTreeMap<String, Value> = BTreeMap::new();
    // The table path currently being filled, e.g. ["oracle", "metrics"];
    // segments indexing into array-of-tables always address the last
    // element.
    let mut current: Vec<String> = Vec::new();

    for (idx, raw_line) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let Some(path_str) = rest.strip_suffix("]]") else {
                return Err(err(lineno, "unterminated [[table]] header"));
            };
            let path = parse_path(path_str, lineno)?;
            push_array_table(&mut root, &path, lineno)?;
            current = path;
        } else if let Some(rest) = line.strip_prefix('[') {
            let Some(path_str) = rest.strip_suffix(']') else {
                return Err(err(lineno, "unterminated [table] header"));
            };
            let path = parse_path(path_str, lineno)?;
            ensure_table(&mut root, &path, lineno)?;
            current = path;
        } else {
            let Some(eq) = line.find('=') else {
                return Err(err(lineno, format!("expected `key = value`, got `{line}`")));
            };
            let key = parse_key(line[..eq].trim(), lineno)?;
            let mut chars: Vec<char> = line[eq + 1..].trim().chars().collect();
            let value = parse_value(&mut chars, &mut 0, lineno)?;
            let table = navigate(&mut root, &current, lineno)?;
            if table.contains_key(&key) {
                return Err(err(lineno, format!("duplicate key `{key}`")));
            }
            table.insert(key, value);
        }
    }
    Ok(Value::Table(root))
}

/// Removes a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_path(s: &str, lineno: usize) -> Result<Vec<String>, TomlError> {
    let mut out = Vec::new();
    for part in s.split('.') {
        out.push(parse_key(part.trim(), lineno)?);
    }
    Ok(out)
}

fn parse_key(s: &str, lineno: usize) -> Result<String, TomlError> {
    if let Some(inner) = s.strip_prefix('"').and_then(|r| r.strip_suffix('"')) {
        return Ok(inner.to_owned());
    }
    if s.is_empty() {
        return Err(err(lineno, "empty key"));
    }
    if s.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '-') {
        Ok(s.to_owned())
    } else {
        Err(err(lineno, format!("invalid bare key `{s}`")))
    }
}

/// Walks `path` from the root, creating intermediate tables, and returns
/// the table to assign keys into. A path segment naming an array of
/// tables addresses its most recent element.
fn navigate<'a>(
    root: &'a mut BTreeMap<String, Value>,
    path: &[String],
    lineno: usize,
) -> Result<&'a mut BTreeMap<String, Value>, TomlError> {
    let mut table = root;
    for seg in path {
        let entry = table
            .entry(seg.clone())
            .or_insert_with(|| Value::Table(BTreeMap::new()));
        table = match entry {
            Value::Table(t) => t,
            Value::Array(items) => match items.last_mut() {
                Some(Value::Table(t)) => t,
                _ => return Err(err(lineno, format!("`{seg}` is not a table array"))),
            },
            other => {
                return Err(err(
                    lineno,
                    format!("`{seg}` is a {}, not a table", other.type_name()),
                ))
            }
        };
    }
    Ok(table)
}

fn ensure_table(
    root: &mut BTreeMap<String, Value>,
    path: &[String],
    lineno: usize,
) -> Result<(), TomlError> {
    navigate(root, path, lineno).map(|_| ())
}

/// Appends a fresh element to the array of tables at `path` (creating
/// the array if needed); parents resolve like [`navigate`].
fn push_array_table(
    root: &mut BTreeMap<String, Value>,
    path: &[String],
    lineno: usize,
) -> Result<(), TomlError> {
    let Some((last, parents)) = path.split_last() else {
        return Err(err(lineno, "empty [[table]] header"));
    };
    let parent = navigate(root, parents, lineno)?;
    let entry = parent
        .entry(last.clone())
        .or_insert_with(|| Value::Array(Vec::new()));
    match entry {
        Value::Array(items) => {
            items.push(Value::Table(BTreeMap::new()));
            Ok(())
        }
        other => Err(err(
            lineno,
            format!("`{last}` is a {}, not a table array", other.type_name()),
        )),
    }
}

/// Parses one value starting at `chars[*pos]`, leaving `*pos` just past
/// it (trailing whitespace consumed).
fn parse_value(chars: &mut Vec<char>, pos: &mut usize, lineno: usize) -> Result<Value, TomlError> {
    skip_ws(chars, pos);
    match chars.get(*pos) {
        None => Err(err(lineno, "missing value")),
        Some('"') => parse_string(chars, pos, lineno),
        Some('[') => parse_array(chars, pos, lineno),
        Some('{') => parse_inline_table(chars, pos, lineno),
        Some(_) => parse_scalar(chars, pos, lineno),
    }
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while chars.get(*pos).is_some_and(|c| c.is_whitespace()) {
        *pos += 1;
    }
}

fn parse_string(
    chars: &[char],
    pos: &mut usize,
    lineno: usize,
) -> Result<Value, TomlError> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match chars.get(*pos) {
            None => return Err(err(lineno, "unterminated string")),
            Some('"') => {
                *pos += 1;
                return Ok(Value::Str(out));
            }
            Some('\\') => {
                *pos += 1;
                let c = match chars.get(*pos) {
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some('r') => '\r',
                    Some('"') => '"',
                    Some('\\') => '\\',
                    other => {
                        return Err(err(
                            lineno,
                            format!("unsupported escape `\\{}`", other.copied().unwrap_or(' ')),
                        ))
                    }
                };
                out.push(c);
                *pos += 1;
            }
            Some(c) => {
                out.push(*c);
                *pos += 1;
            }
        }
    }
}

fn parse_array(
    chars: &mut Vec<char>,
    pos: &mut usize,
    lineno: usize,
) -> Result<Value, TomlError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    loop {
        skip_ws(chars, pos);
        match chars.get(*pos) {
            None => return Err(err(lineno, "unterminated array")),
            Some(']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            Some(',') => {
                *pos += 1;
            }
            Some(_) => items.push(parse_value(chars, pos, lineno)?),
        }
    }
}

fn parse_inline_table(
    chars: &mut Vec<char>,
    pos: &mut usize,
    lineno: usize,
) -> Result<Value, TomlError> {
    *pos += 1; // '{'
    let mut table = BTreeMap::new();
    loop {
        skip_ws(chars, pos);
        match chars.get(*pos) {
            None => return Err(err(lineno, "unterminated inline table")),
            Some('}') => {
                *pos += 1;
                return Ok(Value::Table(table));
            }
            Some(',') => {
                *pos += 1;
            }
            Some(_) => {
                let start = *pos;
                while chars
                    .get(*pos)
                    .is_some_and(|c| *c != '=' && *c != ',' && *c != '}')
                {
                    *pos += 1;
                }
                if chars.get(*pos) != Some(&'=') {
                    return Err(err(lineno, "inline table entry missing `=`"));
                }
                let key_str: String = chars[start..*pos].iter().collect();
                let key = parse_key(key_str.trim(), lineno)?;
                *pos += 1; // '='
                let value = parse_value(chars, pos, lineno)?;
                if table.insert(key.clone(), value).is_some() {
                    return Err(err(lineno, format!("duplicate key `{key}`")));
                }
            }
        }
    }
}

fn parse_scalar(
    chars: &[char],
    pos: &mut usize,
    lineno: usize,
) -> Result<Value, TomlError> {
    let start = *pos;
    while chars
        .get(*pos)
        .is_some_and(|c| !c.is_whitespace() && *c != ',' && *c != ']' && *c != '}')
    {
        *pos += 1;
    }
    let word: String = chars[start..*pos].iter().collect();
    match word.as_str() {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let digits: String = word.chars().filter(|c| *c != '_').collect();
    if digits.contains('.') || digits.contains('e') || digits.contains('E') {
        if let Ok(v) = digits.parse::<f64>() {
            return Ok(Value::Float(v));
        }
    }
    if let Ok(v) = digits.parse::<i64>() {
        return Ok(Value::Int(v));
    }
    Err(err(lineno, format!("unrecognized value `{word}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_tables() {
        let doc = r#"
name = "demo"            # trailing comment
seed = 1_000
rate = 0.25
quick = true

[oracle]
dlq_empty = true

[oracle.limits]
max = 10
"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("demo"));
        assert_eq!(v.get("seed").unwrap().as_int(), Some(1000));
        assert_eq!(v.get("rate").unwrap().as_float(), Some(0.25));
        assert_eq!(v.get("quick").unwrap().as_bool(), Some(true));
        let oracle = v.get("oracle").unwrap();
        assert_eq!(oracle.get("dlq_empty").unwrap().as_bool(), Some(true));
        assert_eq!(
            oracle.get("limits").unwrap().get("max").unwrap().as_int(),
            Some(10)
        );
    }

    #[test]
    fn parses_arrays_of_tables_and_nested_aot() {
        let doc = r#"
[[actors]]
name = "a"

[[actors.condition.members]]
queue = "Q.1"

[[actors.condition.members]]
queue = "Q.2"

[[actors]]
name = "b"
"#;
        let v = parse(doc).unwrap();
        let actors = v.get("actors").unwrap().as_array().unwrap();
        assert_eq!(actors.len(), 2);
        let members = actors[0]
            .get("condition")
            .unwrap()
            .get("members")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(members.len(), 2);
        assert_eq!(members[1].get("queue").unwrap().as_str(), Some("Q.2"));
        assert_eq!(actors[1].get("name").unwrap().as_str(), Some("b"));
    }

    #[test]
    fn parses_inline_tables_and_arrays() {
        let doc = r#"
via = ["QM.R1", "QM.R2"]
fault = { at_ms = 500, action = "partition", point = "link:A->B" }
nums = [1, 2, 3]
"#;
        let v = parse(doc).unwrap();
        let via = v.get("via").unwrap().as_array().unwrap();
        assert_eq!(via[1].as_str(), Some("QM.R2"));
        let fault = v.get("fault").unwrap();
        assert_eq!(fault.get("at_ms").unwrap().as_int(), Some(500));
        assert_eq!(fault.get("point").unwrap().as_str(), Some("link:A->B"));
        assert_eq!(
            v.get("nums").unwrap().as_array().unwrap().len(),
            3
        );
    }

    #[test]
    fn string_escapes_and_hash_inside_strings() {
        let v = parse("s = \"a # not comment\\n\"").unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a # not comment\n"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("ok = 1\nbroken").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse("x = \"unterminated").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse("a = 1\na = 2").unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn rejects_bad_headers() {
        assert!(parse("[unclosed").is_err());
        assert!(parse("[[unclosed]").is_err());
        assert!(parse("k = nonsense?!").is_err());
    }
}
