//! The verdict oracle: after a run, assert that every declared message
//! reached **exactly one** terminal outcome — success, compensation
//! (failure), or annihilation — with counts matching the scenario's
//! declarations, and that the world drained cleanly.

use std::fmt;

use crate::compile::Compiled;
use crate::spec::{ActorMode, Expect};

/// One named pass/fail assertion with its evidence.
#[derive(Debug, Clone)]
pub struct OracleCheck {
    /// Check name, e.g. `actor:keeper` or `conservation`.
    pub name: String,
    /// Whether the check held.
    pub pass: bool,
    /// Human-readable evidence (counts, depths, …).
    pub detail: String,
}

/// The oracle's full verdict over a run.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// Every assertion the oracle made.
    pub checks: Vec<OracleCheck>,
}

impl OracleReport {
    /// Whether every check held.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Number of failed checks.
    pub fn failed_count(&self) -> usize {
        self.checks.iter().filter(|c| !c.pass).count()
    }

    fn check(&mut self, name: impl Into<String>, pass: bool, detail: impl Into<String>) {
        self.checks.push(OracleCheck {
            name: name.into(),
            pass,
            detail: detail.into(),
        });
    }
}

impl fmt::Display for OracleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.checks {
            writeln!(
                f,
                "[{}] {}: {}",
                if c.pass { "PASS" } else { "FAIL" },
                c.name,
                c.detail
            )?;
        }
        write!(
            f,
            "oracle: {}/{} checks passed",
            self.checks.len() - self.failed_count(),
            self.checks.len()
        )
    }
}

/// Per-actor outcome counts the executor accumulates.
#[derive(Debug, Clone, Default)]
pub(crate) struct ActorTally {
    /// Sends (or sphere rounds) that were accepted.
    pub(crate) sent: u64,
    /// Sends rejected at the send call itself.
    pub(crate) send_errors: u64,
    /// Success verdicts observed via outcome notifications.
    pub(crate) success: u64,
    /// Failure verdicts observed via outcome notifications.
    pub(crate) failure: u64,
    /// Sends whose outcome never arrived inside the settle budget.
    pub(crate) undecided: u64,
    /// Committed sphere rounds.
    pub(crate) committed: u64,
    /// Aborted sphere rounds.
    pub(crate) aborted: u64,
    /// For `expect = "sampled"`: the exact success count implied by the
    /// seeded acknowledgment delays and the pickup window.
    pub(crate) expected_success: Option<u64>,
}

/// Run-wide tallies the executor hands to the oracle.
#[derive(Debug, Clone, Default)]
pub(crate) struct Tally {
    /// Aligned with [`Compiled::actors`].
    pub(crate) per_actor: Vec<ActorTally>,
    /// Compensation messages consumed by the terminal sweep.
    pub(crate) comps_swept: u64,
}

/// Runs every oracle check against the settled world.
pub(crate) fn evaluate(world: &Compiled, tally: &Tally) -> OracleReport {
    let mut report = OracleReport::default();

    // Per-actor declared expectations.
    for (actor, t) in world.actors.iter().zip(&tally.per_actor) {
        let name = format!("actor:{}", actor.spec.name);
        let planned = actor.count;
        let detail = format!(
            "planned={planned} sent={} send_errors={} success={} failure={} undecided={} \
             committed={} aborted={}",
            t.sent, t.send_errors, t.success, t.failure, t.undecided, t.committed, t.aborted
        );
        let pass = match actor.spec.expect {
            Expect::Success => {
                t.sent == planned && t.success == planned && t.failure == 0 && t.undecided == 0
            }
            Expect::Failure => {
                t.sent == planned && t.failure == planned && t.success == 0 && t.undecided == 0
            }
            Expect::Sampled => match t.expected_success {
                Some(want) => {
                    t.sent == planned
                        && t.success == want
                        && t.failure == planned - want
                        && t.undecided == 0
                }
                None => false,
            },
            Expect::SendError => t.send_errors == planned && t.sent == 0,
            Expect::Commit => t.sent == planned && t.committed == planned && t.aborted == 0,
            Expect::Abort => t.sent == planned && t.aborted == planned && t.committed == 0,
        };
        report.check(name, pass, detail);
    }

    // Exactly-one-outcome conservation over every tracked conditional
    // send: each either errored at send, or reached exactly one of
    // success / failure. Undecided messages fail the run.
    let mut sent = 0_u64;
    let mut decided = 0_u64;
    let mut undecided = 0_u64;
    for (actor, t) in world.actors.iter().zip(&tally.per_actor) {
        if matches!(actor.spec.mode, ActorMode::Send) {
            sent += t.sent;
            decided += t.success + t.failure;
            undecided += t.undecided;
        }
    }
    report.check(
        "conservation",
        decided == sent && undecided == 0,
        format!("sent={sent} decided={decided} undecided={undecided}"),
    );

    // The messengers must have nothing left in flight, and every outcome
    // notification must have been consumed (exactly-once delivery of
    // verdicts to the application).
    for (name, messenger) in &world.messengers {
        let pending = messenger.pending_count();
        report.check(
            format!("pending:{name}"),
            pending == 0,
            format!("{pending} conditional messages still pending"),
        );
        let outcome_q = messenger.config().outcome_queue.clone();
        let depth = queue_depth(world, name, &outcome_q);
        report.check(
            format!("outcomes-consumed:{name}"),
            depth == Some(0),
            format!("{outcome_q} depth {depth:?}"),
        );
    }

    // Dead-letter queues must stay empty unless the spec opts out.
    if world.spec_oracle().dlq_empty {
        for (name, _) in &world.managers {
            let depth = queue_depth(world, name, mq::DEAD_LETTER_QUEUE);
            report.check(
                format!("dlq:{name}"),
                depth == Some(0),
                format!("dead-letter depth {depth:?}"),
            );
        }
    }

    // Every declared application queue must be drained after the sweep:
    // originals read or annihilated, compensations consumed.
    if world.spec_oracle().destinations_drained {
        for (name, rt) in &world.managers {
            for q in &rt.queues {
                let depth = queue_depth(world, name, q);
                report.check(
                    format!("drained:{name}/{q}"),
                    depth == Some(0),
                    format!("depth {depth:?}"),
                );
            }
        }
    }

    // Declared metric floors.
    let snapshot = world.obs.snapshot();
    for m in &world.spec_oracle().metrics {
        let got = snapshot.counter(&m.metric);
        report.check(
            format!("metric:{}", m.metric),
            got >= m.min,
            format!("{got} >= {}", m.min),
        );
    }

    // Declared lifecycle stages must have been traced. The seen-mask is
    // consulted (not the retained events): at 1M messages the bounded
    // ring has long since evicted the early-life stages.
    if !world.spec_oracle().stages.is_empty() {
        let trace = world.obs.trace();
        for stage in &world.spec_oracle().stages {
            let seen = mq::TraceStage::ALL
                .iter()
                .find(|s| s.to_string() == *stage)
                .is_some_and(|s| trace.stage_seen(*s));
            report.check(
                format!("stage:{stage}"),
                seen,
                if seen { "traced" } else { "never traced" }.to_owned(),
            );
        }
    }

    report.check(
        "comps-swept",
        true,
        format!("{} compensations consumed by the sweep", tally.comps_swept),
    );

    report
}

fn queue_depth(world: &Compiled, manager: &str, queue: &str) -> Option<u64> {
    let rt = world.managers.get(manager)?;
    let q = rt.qmgr.queue(queue).ok()?;
    Some(q.depth() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_formats_and_counts() {
        let mut r = OracleReport::default();
        r.check("a", true, "ok");
        r.check("b", false, "bad");
        assert!(!r.passed());
        assert_eq!(r.failed_count(), 1);
        let text = r.to_string();
        assert!(text.contains("[PASS] a"), "{text}");
        assert!(text.contains("[FAIL] b"), "{text}");
        assert!(text.contains("1/2"), "{text}");
    }
}
