//! Scenario-engine error type: one enum covering parse, spec, compile,
//! and execution failures, with `From` conversions from every layer the
//! engine drives.

use std::fmt;

use crate::toml::TomlError;

/// Any failure while parsing, compiling, or executing a scenario.
#[derive(Debug)]
pub enum ScenarioError {
    /// The TOML document failed to parse.
    Toml(TomlError),
    /// The parsed document (or a builder-constructed spec) is invalid:
    /// unknown keys, missing fields, dangling references.
    Spec(String),
    /// The underlying messaging layer failed.
    Mq(mq::MqError),
    /// The conditional-messaging layer failed.
    Cond(condmsg::CondError),
    /// A dependency-sphere operation failed.
    Sphere(String),
    /// The executor hit a condition it could not drive to completion
    /// (delivery never settled, a verdict never arrived, …).
    Engine(String),
}

/// Result alias for scenario operations.
pub type ScenarioResult<T> = Result<T, ScenarioError>;

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Toml(e) => write!(f, "{e}"),
            ScenarioError::Spec(reason) => write!(f, "invalid scenario spec: {reason}"),
            ScenarioError::Mq(e) => write!(f, "messaging error: {e}"),
            ScenarioError::Cond(e) => write!(f, "conditional-messaging error: {e}"),
            ScenarioError::Sphere(reason) => write!(f, "dependency-sphere error: {reason}"),
            ScenarioError::Engine(reason) => write!(f, "scenario execution error: {reason}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Toml(e) => Some(e),
            ScenarioError::Mq(e) => Some(e),
            ScenarioError::Cond(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TomlError> for ScenarioError {
    fn from(e: TomlError) -> Self {
        ScenarioError::Toml(e)
    }
}

impl From<mq::MqError> for ScenarioError {
    fn from(e: mq::MqError) -> Self {
        ScenarioError::Mq(e)
    }
}

impl From<condmsg::CondError> for ScenarioError {
    fn from(e: condmsg::CondError) -> Self {
        ScenarioError::Cond(e)
    }
}

impl From<dsphere::SphereError> for ScenarioError {
    fn from(e: dsphere::SphereError) -> Self {
        ScenarioError::Sphere(e.to_string())
    }
}

/// Shorthand for a [`ScenarioError::Spec`].
pub(crate) fn spec_err(reason: impl Into<String>) -> ScenarioError {
    ScenarioError::Spec(reason.into())
}

/// Shorthand for a [`ScenarioError::Engine`].
pub(crate) fn engine_err(reason: impl Into<String>) -> ScenarioError {
    ScenarioError::Engine(reason.into())
}
