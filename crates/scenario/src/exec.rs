//! Driving a compiled scenario to completion.
//!
//! Two execution strategies share one send path and one oracle:
//!
//! * **Real time** ([`ClockMode::Real`]): acknowledging receivers run as
//!   threads sampling their latency distribution against the system
//!   clock, dependency spheres commit inline, and faults fire from send
//!   indexes, wall-clock times, or queue-depth triggers.
//! * **Simulated time** ([`ClockMode::Sim`]): every message is sent at
//!   one virtual instant, acknowledgment reads are scheduled as a
//!   deterministic event timeline from the seeded delay samples, and the
//!   executor advances the clock through the timeline — so a
//!   million-message day of traffic settles in seconds, with deadline
//!   verdicts firing from armed timers at exact virtual times.
//!
//! Either way the run ends the same: every tracked message's outcome is
//! collected, destination queues are swept (consuming compensations and
//! triggering lazy annihilation), and the [`crate::oracle`] checks that
//! declared expectations held exactly.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use condmsg::{CondMessageId, ConditionalReceiver, MessageKind, MessageOutcome, SendOptions};
use mq::transport::tcp::TcpAcceptor;
use mq::{FaultAction, FaultPlane, QueueManager, Wait};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simtime::{Millis, Time};

use crate::compile::{
    compile, connect_edge, apply_route, build_condition, ChannelDecl, Compiled, CompiledFault,
    PointKind, ResolvedTrigger, RouteDecl,
};
use crate::error::{engine_err, ScenarioResult};
use crate::oracle::{self, ActorTally, OracleReport, Tally};
use crate::pacer::{ticks_for_ms, Pacer};
use crate::spec::{
    expand_idx, AckMode, ActorMode, ClockMode, ConditionSpec, DelaySpec, Expect, FaultActionSpec,
    ScenarioSpec,
};

/// Metrics surfaced in every [`RunReport`].
const KEY_METRICS: &[&str] = &[
    "cond.sent",
    "cond.fanout",
    "cond.verdict.success",
    "cond.verdict.failure",
    "cond.comp.released",
    "cond.recv.annihilated",
    "dsphere.committed",
    "dsphere.aborted",
    "mq.relay.forwarded",
];

/// Extra settle time past a condition's own deadlines, covering ack
/// transit and verdict notification under chaos.
const SETTLE_SLACK_MS: u64 = 20_000;

/// What a finished run looked like.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scenario name.
    pub name: String,
    /// Whether the quick populations ran.
    pub quick: bool,
    /// Conditional sends accepted (including sphere member sends).
    pub sent: u64,
    /// Sends rejected at the send call.
    pub send_errors: u64,
    /// Success verdicts observed.
    pub success: u64,
    /// Failure verdicts observed.
    pub failure: u64,
    /// Committed sphere rounds.
    pub spheres_committed: u64,
    /// Aborted sphere rounds.
    pub spheres_aborted: u64,
    /// Compensation messages consumed by the terminal sweep.
    pub comps_swept: u64,
    /// Send-to-verdict latency per tracked message, scenario-clock ms.
    pub verdict_latency_ms: Vec<u64>,
    /// Key run-wide metric counters.
    pub metrics: Vec<(String, u64)>,
    /// The oracle's verdict.
    pub oracle: OracleReport,
}

/// Compiles and runs `spec`, returning the report. `quick` selects the
/// actors' reduced populations.
///
/// # Errors
///
/// Spec/compile errors, harness failures, and engine errors when the run
/// cannot be driven to completion (a wedged delivery, an unbindable
/// address after crash-rebuild, …). Oracle *failures* are not errors —
/// they are reported in [`RunReport::oracle`].
pub fn run(spec: &ScenarioSpec, quick: bool) -> ScenarioResult<RunReport> {
    let mut world = compile(spec, quick)?;
    let result = match world.clock_mode {
        ClockMode::Real => run_real(spec, &mut world, quick),
        ClockMode::Sim => run_sim(spec, &mut world, quick),
    };
    for rt in world.managers.values() {
        rt.qmgr.shutdown();
    }
    result
}

/// One accepted conditional send we track to its verdict.
struct SendRecord {
    actor_idx: usize,
    /// Message index within the actor (the `{i}` binding).
    msg_idx: u64,
    id: CondMessageId,
    sent_at: Time,
}

fn sample_delay_ms(rng: &mut StdRng, delay: &DelaySpec) -> u64 {
    match delay {
        DelaySpec::Fixed { ms } => *ms,
        DelaySpec::Uniform { min_ms, max_ms } => {
            if max_ms > min_ms {
                rng.gen_range(*min_ms..=*max_ms)
            } else {
                *min_ms
            }
        }
        DelaySpec::Pareto {
            scale_ms,
            alpha,
            cap_ms,
        } => {
            let u: f64 = 1.0 - rng.gen_range(0.0..1.0);
            let u = u.max(1e-12);
            let d = scale_ms * u.powf(-1.0 / alpha.max(1e-6));
            (d as u64).min(*cap_ms)
        }
    }
}

fn acker_rng(seed: u64, acker_idx: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(acker_idx as u64 + 1)))
}

// ------------------------------------------------------------- faults --

fn to_mq_action(action: FaultActionSpec) -> ScenarioResult<FaultAction> {
    Ok(match action {
        FaultActionSpec::Partition => FaultAction::Partition,
        FaultActionSpec::Heal => FaultAction::Heal,
        FaultActionSpec::DropNext(n) => FaultAction::DropNext(n),
        FaultActionSpec::KickConnections => FaultAction::KickConnections,
        FaultActionSpec::TearJournalTail => FaultAction::TearJournalTail,
        FaultActionSpec::FailStorage => FaultAction::FailStorage,
        FaultActionSpec::HealStorage => FaultAction::HealStorage,
        FaultActionSpec::CrashRebuild => {
            return Err(engine_err("crash_rebuild is not a transport fault"))
        }
    })
}

fn fire_fault(world: &mut Compiled, fault: &CompiledFault) -> ScenarioResult<()> {
    match &fault.point {
        PointKind::Crash { manager } => crash_rebuild(world, &manager.clone()),
        PointKind::Link { from, to } => {
            let link = world
                .channels
                .iter()
                .find(|c| c.decl.from == *from && c.decl.to == *to && c.link.is_some())
                .and_then(|c| c.link.clone())
                .ok_or_else(|| engine_err(format!("no live link {from}->{to} to fault")))?;
            let plane: &dyn FaultPlane = link.as_ref();
            plane.apply_fault(to_mq_action(fault.action)?)?;
            Ok(())
        }
        PointKind::Tcp { manager } => {
            let acc = world
                .managers
                .get(manager)
                .and_then(|m| m.acceptor.clone())
                .ok_or_else(|| engine_err(format!("no live acceptor on {manager} to fault")))?;
            let plane: &dyn FaultPlane = acc.as_ref();
            plane.apply_fault(to_mq_action(fault.action)?)?;
            Ok(())
        }
        PointKind::Journal { manager } => {
            let j = world
                .managers
                .get(manager)
                .and_then(|m| m.faultable.clone())
                .ok_or_else(|| engine_err(format!("no faultable journal on {manager}")))?;
            let plane: &dyn FaultPlane = j.as_ref();
            plane.apply_fault(to_mq_action(fault.action)?)?;
            Ok(())
        }
    }
}

/// Crashes a relay manager and rebuilds it from its journal: same name,
/// same listen address, declared queues re-ensured, every outbound edge
/// (including deferred ones) reconnected, and routing declarations
/// reapplied. Inbound TCP peers re-dial the same address on their own
/// backoff; custody of in-flight envelopes survives via the journal.
fn crash_rebuild(world: &mut Compiled, name: &str) -> ScenarioResult<()> {
    let mut rt = world
        .managers
        .remove(name)
        .ok_or_else(|| engine_err(format!("crash of unknown manager `{name}`")))?;
    if let Some(acc) = rt.acceptor.take() {
        acc.shutdown();
    }
    rt.qmgr.crash();
    // Outbound movers hold the dead manager; drop them — the rebuild
    // reconnects every declared outbound edge below.
    world.channels.retain(|c| c.decl.from != name);

    let qmgr = QueueManager::builder(name)
        .clock(world.clock.clone())
        .obs(world.obs.clone())
        .journal(rt.journal.clone())
        .build()?;
    for q in &rt.queues {
        qmgr.ensure_queue(q)?;
    }
    let acceptor = match rt.addr {
        Some(addr) => {
            // The old socket may linger briefly; retry the exact address
            // so inbound peers heal without re-resolution.
            let pacer = Pacer::new();
            let mut bound: Option<Arc<TcpAcceptor>> = None;
            for _ in 0..ticks_for_ms(10_000) {
                match TcpAcceptor::bind(&qmgr, &addr.to_string()) {
                    Ok(a) => {
                        bound = Some(a);
                        break;
                    }
                    Err(_) => pacer.tick(),
                }
            }
            Some(bound.ok_or_else(|| {
                engine_err(format!("could not rebind {addr} after crash of {name}"))
            })?)
        }
        None => None,
    };
    rt.qmgr = qmgr;
    rt.acceptor = acceptor;
    world.managers.insert(name.to_owned(), rt);

    let decls: Vec<ChannelDecl> = world
        .decls
        .iter()
        .filter(|d| d.from == name)
        .cloned()
        .collect();
    for decl in &decls {
        let ch = connect_edge(&world.managers, decl)?;
        world.channels.push(ch);
    }
    let routes: Vec<RouteDecl> = world
        .routes
        .iter()
        .filter(|r| r.manager == name)
        .cloned()
        .collect();
    for route in &routes {
        apply_route(&world.managers, route)?;
    }
    Ok(())
}

fn queue_depth(world: &Compiled, manager: &str, queue: &str) -> u64 {
    world
        .managers
        .get(manager)
        .and_then(|rt| rt.qmgr.queue(queue).ok())
        .map_or(0, |q| q.depth() as u64)
}

// ---------------------------------------------------------- send path --

/// Fires every not-yet-fired send-indexed fault due at global send
/// index `g` (`at <= g`). Returns an error if a fault cannot land.
fn fire_due_send_faults(
    world: &mut Compiled,
    fired: &mut [bool],
    g: u64,
) -> ScenarioResult<()> {
    for k in 0..fired.len() {
        if fired[k] {
            continue;
        }
        let due = matches!(world.faults[k].trigger, ResolvedTrigger::AtSend(at) if at <= g);
        if due {
            fired[k] = true;
            let fault = world.faults[k].clone();
            fire_fault(world, &fault)?;
        }
    }
    Ok(())
}

/// Runs every actor's send loop in declaration order, firing due
/// send-indexed faults before each send. Sphere rounds resolve inline;
/// plain sends are recorded for the settle phase.
fn do_sends(
    world: &mut Compiled,
    tally: &mut Tally,
    records: &mut Vec<SendRecord>,
    fired: &mut [bool],
) -> ScenarioResult<()> {
    let pacer = Pacer::new();
    let mut g = 0_u64;
    for actor_idx in 0..world.actors.len() {
        let actor = world.actors[actor_idx].clone();
        for i in 0..actor.count {
            fire_due_send_faults(world, fired, g)?;
            g += 1;
            let payload = expand_idx(&actor.spec.payload, i);
            let comp = actor
                .spec
                .compensation
                .as_ref()
                .map(|c| Bytes::from(expand_idx(c, i)));
            let cond = build_condition(&actor.spec.condition, i);
            let opts = SendOptions {
                evaluation_timeout: actor.spec.evaluation_timeout_ms.map(Millis),
                ..SendOptions::default()
            };
            match actor.spec.mode {
                ActorMode::Send => {
                    let messenger = world
                        .messengers
                        .get(&actor.spec.manager)
                        .ok_or_else(|| engine_err("actor manager lost its messenger"))?
                        .clone();
                    let sent_at = world.clock.now();
                    match messenger.send_with(payload, comp, &cond, opts) {
                        Ok(id) => {
                            tally.per_actor[actor_idx].sent += 1;
                            records.push(SendRecord {
                                actor_idx,
                                msg_idx: i,
                                id,
                                sent_at,
                            });
                        }
                        Err(_) => tally.per_actor[actor_idx].send_errors += 1,
                    }
                }
                ActorMode::Sphere { timeout_ms } => {
                    let service = world
                        .spheres
                        .get(&actor.spec.manager)
                        .ok_or_else(|| engine_err("sphere actor lost its service"))?
                        .clone();
                    let mut sphere = service.begin_with_timeout(Millis(timeout_ms));
                    let sent = match comp {
                        Some(c) => sphere.send_message_with_compensation(payload, c, &cond),
                        None => sphere.send_message(payload, &cond),
                    };
                    if sent.is_err() {
                        tally.per_actor[actor_idx].send_errors += 1;
                        continue;
                    }
                    tally.per_actor[actor_idx].sent += 1;
                    let budget =
                        ticks_for_ms(timeout_ms + actor.horizon_ms + SETTLE_SLACK_MS);
                    let mut outcome = None;
                    for _ in 0..budget {
                        match sphere.try_commit() {
                            Ok(Some(o)) => {
                                outcome = Some(o);
                                break;
                            }
                            Ok(None) => pacer.tick(),
                            Err(e) => {
                                return Err(engine_err(format!(
                                    "sphere round {i} of `{}` failed: {e}",
                                    actor.spec.name
                                )))
                            }
                        }
                    }
                    match outcome {
                        Some(o) if o.is_committed() => tally.per_actor[actor_idx].committed += 1,
                        Some(_) => tally.per_actor[actor_idx].aborted += 1,
                        None => tally.per_actor[actor_idx].undecided += 1,
                    }
                }
            }
        }
    }
    fire_due_send_faults(world, fired, u64::MAX)?;
    Ok(())
}

// -------------------------------------------------------- settle/sweep --

fn settle_records(
    world: &Compiled,
    tally: &mut Tally,
    records: &[SendRecord],
    latencies: &mut Vec<u64>,
    wait_for: impl Fn(&crate::compile::ActorRt) -> Wait,
) {
    for rec in records {
        let actor = &world.actors[rec.actor_idx];
        let Some(messenger) = world.messengers.get(&actor.spec.manager) else {
            tally.per_actor[rec.actor_idx].undecided += 1;
            continue;
        };
        match messenger.take_outcome(rec.id, wait_for(actor)) {
            Ok(Some(n)) => {
                match n.outcome {
                    MessageOutcome::Success => tally.per_actor[rec.actor_idx].success += 1,
                    MessageOutcome::Failure => tally.per_actor[rec.actor_idx].failure += 1,
                }
                latencies.push(n.decided_at.since(rec.sent_at).as_u64());
            }
            Ok(None) | Err(_) => tally.per_actor[rec.actor_idx].undecided += 1,
        }
    }
}

/// Drains every declared application queue: compensations are consumed,
/// and reads trigger the lazy annihilation sweep (reads return `None`
/// while matched original/compensation pairs vanish, so the loop keys on
/// depth, not on read results).
fn sweep_queues(world: &Compiled, tally: &mut Tally) -> ScenarioResult<()> {
    let pacer = Pacer::new();
    for (name, rt) in &world.managers {
        for q in &rt.queues {
            let recipient = world
                .ack_plan
                .get(&(name.clone(), q.clone()))
                .and_then(|idx| world.ackers[*idx].recipient.clone());
            let mut recv = match &recipient {
                Some(r) => ConditionalReceiver::with_identity(rt.qmgr.clone(), r.clone())?,
                None => ConditionalReceiver::new(rt.qmgr.clone())?,
            };
            let mut budget = ticks_for_ms(30_000);
            loop {
                let depth = rt.qmgr.queue(q).map(|qq| qq.depth()).unwrap_or(0);
                if depth == 0 || budget == 0 {
                    break;
                }
                match recv.read_message(q, Wait::NoWait) {
                    Ok(Some(m)) => {
                        if m.kind() == MessageKind::Compensation {
                            tally.comps_swept += 1;
                        }
                    }
                    Ok(None) => {
                        // Annihilation in progress or a comp still in
                        // transit: give the world a beat.
                        budget -= 1;
                        pacer.tick();
                    }
                    Err(_) => break,
                }
            }
        }
    }
    Ok(())
}

fn finish(
    spec: &ScenarioSpec,
    world: &Compiled,
    quick: bool,
    tally: Tally,
    latencies: Vec<u64>,
) -> RunReport {
    let snapshot = world.obs.snapshot();
    let metrics = KEY_METRICS
        .iter()
        .map(|m| ((*m).to_owned(), snapshot.counter(m)))
        .collect();
    let oracle = oracle::evaluate(world, &tally);
    let mut report = RunReport {
        name: spec.name.clone(),
        quick,
        sent: 0,
        send_errors: 0,
        success: 0,
        failure: 0,
        spheres_committed: 0,
        spheres_aborted: 0,
        comps_swept: tally.comps_swept,
        verdict_latency_ms: latencies,
        metrics,
        oracle,
    };
    for t in &tally.per_actor {
        report.sent += t.sent;
        report.send_errors += t.send_errors;
        report.success += t.success;
        report.failure += t.failure;
        report.spheres_committed += t.committed;
        report.spheres_aborted += t.aborted;
    }
    report
}

// ----------------------------------------------------------- real time --

struct AckerThreads {
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
    error: Arc<parking_lot::Mutex<Option<String>>>,
}

impl AckerThreads {
    fn start(world: &Compiled, seed: u64) -> AckerThreads {
        let stop = Arc::new(AtomicBool::new(false));
        let error = Arc::new(parking_lot::Mutex::new(None::<String>));
        let mut threads = Vec::new();
        for (idx, acker) in world.ackers.iter().enumerate() {
            let Some(rt) = world.managers.get(&acker.manager) else {
                continue;
            };
            let qmgr = rt.qmgr.clone();
            let clock = world.clock.clone();
            let acker = acker.clone();
            let stop = stop.clone();
            let err_slot = error.clone();
            let mut rng = acker_rng(seed, idx);
            let handle = std::thread::Builder::new()
                .name(format!("scenario-acker-{}", acker.queue))
                .spawn(move || {
                    let recv = match &acker.recipient {
                        Some(r) => ConditionalReceiver::with_identity(qmgr, r.clone()),
                        None => ConditionalReceiver::new(qmgr),
                    };
                    let mut recv = match recv {
                        Ok(r) => r,
                        Err(e) => {
                            *err_slot.lock() = Some(format!("acker on {}: {e}", acker.queue));
                            return;
                        }
                    };
                    while !stop.load(Ordering::SeqCst) {
                        let d = sample_delay_ms(&mut rng, &acker.delay);
                        if d > 0 {
                            clock.sleep(Millis(d));
                        }
                        let result = match acker.mode {
                            AckMode::Read => recv
                                .read_message(&acker.queue, Wait::Timeout(Millis(100)))
                                .map(|_| ()),
                            AckMode::Process => recv.begin_tx().and_then(|()| {
                                match recv.read_message(&acker.queue, Wait::Timeout(Millis(100)))
                                {
                                    Ok(Some(_)) => recv.commit_tx(),
                                    Ok(None) => recv.rollback_tx(),
                                    Err(e) => {
                                        let _ = recv.rollback_tx();
                                        Err(e)
                                    }
                                }
                            }),
                        };
                        if let Err(e) = result {
                            *err_slot.lock() = Some(format!("acker on {}: {e}", acker.queue));
                            return;
                        }
                    }
                });
            match handle {
                Ok(h) => threads.push(h),
                Err(e) => *error.lock() = Some(format!("spawn acker: {e}")),
            }
        }
        AckerThreads {
            stop,
            threads,
            error,
        }
    }

    fn stop_and_join(self) -> ScenarioResult<()> {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads {
            let _ = t.join();
        }
        match self.error.lock().take() {
            Some(e) => Err(engine_err(e)),
            None => Ok(()),
        }
    }
}

fn run_real(spec: &ScenarioSpec, world: &mut Compiled, quick: bool) -> ScenarioResult<RunReport> {
    let mut tally = Tally {
        per_actor: vec![ActorTally::default(); world.actors.len()],
        comps_swept: 0,
    };
    let mut records = Vec::new();
    let mut fired = vec![false; world.faults.len()];
    let ackers = AckerThreads::start(world, spec.seed);

    let send_result = do_sends(world, &mut tally, &mut records, &mut fired);

    // Time- and depth-triggered faults, in declaration order.
    let pacer = Pacer::new();
    let mut fault_result = Ok(());
    if send_result.is_ok() {
        for k in 0..world.faults.len() {
            if fired[k] {
                continue;
            }
            let fault = world.faults[k].clone();
            let ready = match &fault.trigger {
                ResolvedTrigger::AtSend(_) => true,
                ResolvedTrigger::AtMs(at) => {
                    let now = world.clock.now().as_millis();
                    if *at > now {
                        world.clock.sleep(Millis(at - now));
                    }
                    true
                }
                ResolvedTrigger::WhenDepth {
                    manager,
                    queue,
                    min_depth,
                } => pacer.wait_until(ticks_for_ms(60_000), || {
                    queue_depth(world, manager, queue) >= *min_depth
                }),
            };
            if !ready {
                fault_result = Err(engine_err(format!(
                    "fault on {:?} never triggered: depth threshold not reached",
                    fault.point
                )));
                break;
            }
            fired[k] = true;
            if let Err(e) = fire_fault(world, &fault) {
                fault_result = Err(e);
                break;
            }
        }
    }

    if send_result.is_ok() && fault_result.is_ok() {
        let mut latencies = Vec::new();
        settle_records(world, &mut tally, &records, &mut latencies, |actor| {
            Wait::Timeout(Millis(actor.horizon_ms + SETTLE_SLACK_MS))
        });
        ackers.stop_and_join()?;
        sweep_queues(world, &mut tally)?;
        Ok(finish(spec, world, quick, tally, latencies))
    } else {
        let _ = ackers.stop_and_join();
        Err(send_result.err().unwrap_or_else(|| {
            fault_result
                .err()
                .unwrap_or_else(|| engine_err("scenario failed"))
        }))
    }
}

// ------------------------------------------------------ simulated time --

/// A scheduled acknowledgment read in the virtual timeline.
struct ReadEvent {
    /// Absolute virtual time of the read.
    at_ms: u64,
    acker_idx: usize,
}

fn run_sim(spec: &ScenarioSpec, world: &mut Compiled, quick: bool) -> ScenarioResult<RunReport> {
    let sim = world
        .sim
        .clone()
        .ok_or_else(|| engine_err("sim run without a sim clock"))?;
    if world.faults.iter().any(|f| {
        matches!(f.trigger, ResolvedTrigger::WhenDepth { .. })
    }) {
        return Err(engine_err(
            "when_depth fault triggers need clock = \"real\"",
        ));
    }

    let mut tally = Tally {
        per_actor: vec![ActorTally::default(); world.actors.len()],
        comps_swept: 0,
    };
    let mut records = Vec::new();
    let mut fired = vec![false; world.faults.len()];

    // Phase 1: every message is sent at one virtual instant T0, with
    // send-indexed faults interleaved. Nothing advances the clock here,
    // so every pickup/process deadline is anchored at exactly T0.
    let t0 = world.clock.now().as_millis();
    do_sends(world, &mut tally, &mut records, &mut fired)?;

    // Count originals landing on each destination queue, and note which
    // actor owns the queue (sampled expectations are per actor, so two
    // actors sharing a queue would make attribution ambiguous).
    let mut q_sent: HashMap<(String, String), u64> = HashMap::new();
    let mut q_owner: HashMap<(String, String), usize> = HashMap::new();
    for rec in &records {
        let actor = &world.actors[rec.actor_idx];
        // Leaves are re-derived from the spec rather than kept per-send:
        // with a million records, storing each instantiated tree would
        // dwarf the run itself.
        let cond = build_condition(&actor.spec.condition, rec.msg_idx);
        for leaf in cond.leaves() {
            let key = (
                leaf.address().manager.clone(),
                leaf.address().queue.clone(),
            );
            *q_sent.entry(key.clone()).or_insert(0) += 1;
            if let Some(prev) = q_owner.insert(key.clone(), rec.actor_idx) {
                if prev != rec.actor_idx
                    && (world.actors[prev].spec.expect == Expect::Sampled
                        || actor.spec.expect == Expect::Sampled)
                {
                    return Err(engine_err(format!(
                        "queue {}/{} is shared by sampled actors; attribution is ambiguous",
                        key.0, key.1
                    )));
                }
            }
        }
    }

    // Phase 2: delivery barrier. Movers run in thread time; the sim
    // clock advances only when delivery stalls (a mover parked on a
    // virtual-latency sleep), and total skew is tracked so deadline
    // windows are never silently burned.
    let min_window_ms = world
        .actors
        .iter()
        .filter(|a| a.spec.expect == Expect::Sampled)
        .map(|a| a.horizon_ms)
        .min()
        .unwrap_or(u64::MAX);
    let pacer = Pacer::new();
    let mut skew_ms = 0_u64;
    {
        let mut stall = 0_u32;
        let mut last_total = u64::MAX;
        for _ in 0..ticks_for_ms(300_000) {
            let mut remaining = 0_u64;
            for ((mgr, q), want) in &q_sent {
                let have = queue_depth(world, mgr, q);
                remaining += want.saturating_sub(have);
            }
            if remaining == 0 {
                break;
            }
            pacer.tick();
            if remaining == last_total {
                stall += 1;
                if stall >= 5 {
                    sim.advance(Millis(1));
                    skew_ms += 1;
                    stall = 0;
                    if skew_ms * 2 >= min_window_ms {
                        return Err(engine_err(
                            "delivery stalled long enough to burn pickup windows",
                        ));
                    }
                }
            } else {
                stall = 0;
            }
            last_total = remaining;
        }
    }

    // Phase 3: build the deterministic acknowledgment timeline. Each
    // acked queue gets `q_sent` delay samples from its acker's seeded
    // distribution; for sampled actors, delays at or past the pickup
    // window mean the message is never read (it fails by deadline), and
    // the exact expected success count is recorded for the oracle.
    let mut events: Vec<ReadEvent> = Vec::new();
    let mut rngs: Vec<StdRng> = (0..world.ackers.len())
        .map(|idx| acker_rng(spec.seed, idx))
        .collect();
    for ((mgr, q), n) in &q_sent {
        let Some(&acker_idx) = world.ack_plan.get(&(mgr.clone(), q.clone())) else {
            continue; // no acker: every message here fails by deadline
        };
        let mut delays: Vec<u64> = (0..*n)
            .map(|_| sample_delay_ms(&mut rngs[acker_idx], &world.ackers[acker_idx].delay))
            .collect();
        delays.sort_unstable();
        let owner = q_owner.get(&(mgr.clone(), q.clone())).copied();
        let sampled_window = owner.and_then(|a| {
            let actor = &world.actors[a];
            if actor.spec.expect == Expect::Sampled {
                match &actor.spec.condition {
                    ConditionSpec::Dest(d) => d.pickup_within_ms,
                    ConditionSpec::Set(_) => None,
                }
            } else {
                None
            }
        });
        for d in delays {
            if let Some(window) = sampled_window {
                if d >= window {
                    continue; // never read; deadline failure expected
                }
                if let Some(a) = owner {
                    let t = &mut tally.per_actor[a];
                    t.expected_success = Some(t.expected_success.unwrap_or(0) + 1);
                }
            }
            events.push(ReadEvent {
                at_ms: t0 + d,
                acker_idx,
            });
        }
    }
    // Sampled actors with zero expected successes still need the field
    // set, or the oracle treats them as unattributed.
    for (actor, t) in world.actors.iter().zip(tally.per_actor.iter_mut()) {
        if actor.spec.expect == Expect::Sampled && t.expected_success.is_none() {
            t.expected_success = Some(0);
        }
    }
    // Time-triggered faults join the same timeline as pseudo-events.
    let mut timeline: Vec<(u64, Result<usize, usize>)> = Vec::with_capacity(events.len());
    for (k, ev) in events.iter().enumerate() {
        timeline.push((ev.at_ms, Ok(k)));
    }
    for k in 0..world.faults.len() {
        if let ResolvedTrigger::AtMs(at) = world.faults[k].trigger {
            if !fired[k] {
                timeline.push((t0 + at, Err(k)));
            }
        }
    }
    timeline.sort_by_key(|(at, _)| *at);

    // Phase 4: drive the timeline in 250 ms buckets. Advancing to the
    // bucket *floor* means reads happen at or slightly before their
    // sampled instant — never after — so a read planned inside a window
    // can never slip past its deadline from bucketing alone.
    const BUCKET_MS: u64 = 250;
    let mut receivers: Vec<Option<ConditionalReceiver>> = Vec::new();
    for acker in &world.ackers {
        let recv = match world.managers.get(&acker.manager) {
            Some(rt) => match &acker.recipient {
                Some(r) => Some(ConditionalReceiver::with_identity(rt.qmgr.clone(), r.clone())?),
                None => Some(ConditionalReceiver::new(rt.qmgr.clone())?),
            },
            None => None,
        };
        receivers.push(recv);
    }
    let mut cursor = 0_usize;
    while cursor < timeline.len() {
        let bucket_floor = (timeline[cursor].0 / BUCKET_MS) * BUCKET_MS;
        if bucket_floor > world.clock.now().as_millis() {
            sim.advance_to(Time(bucket_floor));
        }
        while cursor < timeline.len() && timeline[cursor].0 < bucket_floor + BUCKET_MS {
            match timeline[cursor].1 {
                Ok(ev_idx) => {
                    let acker_idx = events[ev_idx].acker_idx;
                    let acker = world.ackers[acker_idx].clone();
                    if let Some(recv) = receivers[acker_idx].as_mut() {
                        perform_read(recv, &acker)?;
                    }
                }
                Err(fault_idx) => {
                    fired[fault_idx] = true;
                    let fault = world.faults[fault_idx].clone();
                    fire_fault(world, &fault)?;
                }
            }
            cursor += 1;
        }
        quiesce_acks(world, &pacer);
    }
    drop(receivers);

    // Phase 5: advance past every deadline so pending verdicts fire,
    // compensations release, and annihilation candidates land.
    let horizon = world
        .actors
        .iter()
        .map(|a| a.horizon_ms + a.spec.evaluation_timeout_ms.unwrap_or(0))
        .max()
        .unwrap_or(0);
    sim.advance_to(Time(t0 + horizon + 2_000));
    quiesce_acks(world, &pacer);

    // Phase 6: collect outcomes (already decided — NoWait with a short
    // grace for notification threads), sweep, and judge.
    let mut latencies = Vec::new();
    settle_records(world, &mut tally, &records, &mut latencies, |_| Wait::NoWait);
    sweep_queues(world, &mut tally)?;
    Ok(finish(spec, world, quick, tally, latencies))
}

fn perform_read(
    recv: &mut ConditionalReceiver,
    acker: &crate::compile::AckerRt,
) -> ScenarioResult<()> {
    match acker.mode {
        AckMode::Read => {
            recv.read_message(&acker.queue, Wait::NoWait)?;
        }
        AckMode::Process => {
            recv.begin_tx()?;
            match recv.read_message(&acker.queue, Wait::NoWait) {
                Ok(Some(_)) => recv.commit_tx()?,
                Ok(None) => recv.rollback_tx()?,
                Err(e) => {
                    let _ = recv.rollback_tx();
                    return Err(e.into());
                }
            }
        }
    }
    Ok(())
}

/// Waits (in thread time, no virtual advance) until every transmission
/// queue and every sender's ack queue is empty and stays empty for a few
/// ticks — i.e. all acknowledgments born so far have been evaluated.
fn quiesce_acks(world: &Compiled, pacer: &Pacer) {
    let mut stable = 0_u32;
    let mut budget = ticks_for_ms(30_000);
    while stable < 3 && budget > 0 {
        let mut busy = 0_u64;
        for rt in world.managers.values() {
            for q in rt.qmgr.queue_names() {
                if q.starts_with("SYSTEM.XMIT.") {
                    busy += queue_depth(world, rt.qmgr.name(), &q);
                }
            }
        }
        for (name, messenger) in &world.messengers {
            busy += queue_depth(world, name, &messenger.config().ack_queue);
        }
        if busy == 0 {
            stable += 1;
        } else {
            stable = 0;
        }
        budget -= 1;
        pacer.tick();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AckerSpec, ActorSpec, ChannelSpec, DestSpec, ManagerSpec, QueueSpec};

    #[test]
    fn sample_delay_is_deterministic_and_bounded() {
        let spec = DelaySpec::Pareto {
            scale_ms: 100.0,
            alpha: 1.3,
            cap_ms: 5_000,
        };
        let a: Vec<u64> = {
            let mut rng = acker_rng(7, 0);
            (0..64).map(|_| sample_delay_ms(&mut rng, &spec)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = acker_rng(7, 0);
            (0..64).map(|_| sample_delay_ms(&mut rng, &spec)).collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().all(|d| *d <= 5_000));
        assert!(a.iter().any(|d| *d >= 100), "{a:?}");

        let mut rng = acker_rng(7, 1);
        assert_eq!(
            sample_delay_ms(&mut rng, &DelaySpec::Fixed { ms: 42 }),
            42
        );
        let u = sample_delay_ms(
            &mut rng,
            &DelaySpec::Uniform {
                min_ms: 5,
                max_ms: 9,
            },
        );
        assert!((5..=9).contains(&u));
    }

    #[test]
    fn sim_success_scenario_end_to_end() {
        let spec = ScenarioSpec::new("unit-sim")
            .seed(11)
            .manager(ManagerSpec::new("QM.S"))
            .manager(ManagerSpec::new("QM.D"))
            .queue(QueueSpec::new("QM.D", "Q.APP"))
            .channel(ChannelSpec::link("QM.S", "QM.D"))
            .channel(ChannelSpec::link("QM.D", "QM.S"))
            .actor(ActorSpec::new(
                "ok",
                "QM.S",
                5,
                DestSpec::new("QM.D", "Q.APP").pickup_within_ms(10_000),
            ))
            .acker(AckerSpec::new("QM.D", "Q.APP").delay(crate::spec::DelaySpec::Fixed {
                ms: 50,
            }));
        let report = run(&spec, false).unwrap();
        assert_eq!(report.sent, 5);
        assert_eq!(report.success, 5);
        assert_eq!(report.failure, 0);
        assert!(report.oracle.passed(), "{}", report.oracle);
    }

    #[test]
    fn sim_failure_and_annihilation_scenario() {
        let spec = ScenarioSpec::new("unit-fail")
            .seed(3)
            .manager(ManagerSpec::new("QM.S"))
            .manager(ManagerSpec::new("QM.D"))
            .queue(QueueSpec::new("QM.D", "Q.NOBODY"))
            .channel(ChannelSpec::link("QM.S", "QM.D"))
            .actor(
                ActorSpec::new(
                    "doomed",
                    "QM.S",
                    4,
                    DestSpec::new("QM.D", "Q.NOBODY").pickup_within_ms(400),
                )
                .compensation("undo-{i}")
                .expect(Expect::Failure),
            );
        let report = run(&spec, false).unwrap();
        assert_eq!(report.failure, 4);
        assert_eq!(report.success, 0);
        assert!(report.oracle.passed(), "{}", report.oracle);
    }
}
