//! Exactly-once delivery under pipelined batching: property tests driving
//! the real channel mover against an adversarial scripted transport, plus
//! an end-to-end TCP run with mid-window connection kills.
//!
//! The delivery contract being checked: with a window of batches in
//! flight, any interleaving of coalesced ack watermarks, connection
//! deaths before or after a batch physically landed, and
//! reconnect-with-retransmit must deliver every message to the receiving
//! manager exactly once — the sender's per-batch sessions plus the
//! receiver's `accept_envelope` dedup seam absorb every duplicate the
//! retransmissions create.

use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use proptest::prelude::*;

use mq::channel::Channel;
use mq::transport::tcp::{TcpAcceptor, TcpConfig, TcpTransport};
use mq::{
    BatchOutcome, BatchTicket, Message, PipelineProgress, PipelinedTransport, QueueAddress,
    QueueManager, SubmitError, Transport, Wait,
};
use simtime::SystemClock;

const DEST_QUEUE: &str = "IN";

/// One network fate, consumed per submitted batch. When the script runs
/// dry the transport acks everything immediately, so every run converges.
#[derive(Debug, Clone, Copy)]
enum Fate {
    /// Deliver and ack every pending batch with one coalesced watermark.
    AckAll,
    /// Hold the batch: its ack arrives later, coalesced into a
    /// subsequent `AckAll` (the reordered/interleaved-watermark case).
    Hold,
    /// Deliver the first `n` pending batches to the receiver but kill
    /// the connection before any ack leaves: the sender must roll back
    /// and retransmit, and the receiver's dedup must drop the copies.
    DeliverThenKill(u8),
    /// Kill the connection with every pending batch undelivered: the
    /// retransmit after reconnect is the only copy.
    Kill,
}

fn arb_fate() -> impl Strategy<Value = Fate> {
    prop_oneof![
        3 => Just(Fate::AckAll),
        3 => Just(Fate::Hold),
        2 => (0u8..4).prop_map(Fate::DeliverThenKill),
        2 => Just(Fate::Kill),
    ]
}

struct NetState {
    epoch: u64,
    next_seq: u64,
    acked: u64,
    connected: bool,
    /// Submitted batches whose fate is still open, in seq order.
    pending: VecDeque<(u64, Vec<Message>)>,
    script: VecDeque<Fate>,
}

/// An in-process [`PipelinedTransport`] whose network behaves per the
/// proptest-generated script, delivering into the receiving manager
/// through the public `accept_envelope` dedup seam.
struct ScriptedTransport {
    to: Arc<QueueManager>,
    state: Mutex<NetState>,
    changed: Condvar,
    stopped: AtomicBool,
}

impl fmt::Debug for ScriptedTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScriptedTransport").finish()
    }
}

impl ScriptedTransport {
    fn new(to: Arc<QueueManager>, script: Vec<Fate>) -> Arc<ScriptedTransport> {
        Arc::new(ScriptedTransport {
            to,
            state: Mutex::new(NetState {
                epoch: 1,
                next_seq: 0,
                acked: 0,
                connected: true,
                pending: VecDeque::new(),
                script: script.into(),
            }),
            changed: Condvar::new(),
            stopped: AtomicBool::new(false),
        })
    }

    fn deliver(&self, batch: &[Message]) {
        for msg in batch {
            // Duplicates come back as RelayOutcome::Duplicate; a stopped
            // manager would surface as missing messages in the final
            // exactly-once assertion, so the outcome itself is not
            // checked here.
            let _ = self.to.accept_envelope(msg.clone());
        }
    }

    fn snapshot(state: &NetState) -> PipelineProgress {
        PipelineProgress {
            epoch: state.epoch,
            acked: state.acked,
            connected: state.connected,
        }
    }
}

impl Transport for ScriptedTransport {
    fn peer(&self) -> String {
        self.to.name().to_owned()
    }

    fn send_batch(&self, _batch: &[Message]) -> BatchOutcome {
        unreachable!("pipelined transport: the mover must use submit()")
    }

    fn wait_ready(&self, _timeout: Duration) -> bool {
        if self.stopped.load(Ordering::SeqCst) {
            return false;
        }
        // Reconnect instantly: a new epoch, watermark reset, pending
        // wiped (the old connection's unacked bytes are gone).
        let mut st = self.state.lock();
        if !st.connected {
            st.epoch += 1;
            st.acked = 0;
            st.connected = true;
            st.pending.clear();
            self.changed.notify_all();
        }
        true
    }

    fn shutdown(&self) {
        self.stopped.store(true, Ordering::SeqCst);
        self.state.lock().connected = false;
        self.changed.notify_all();
    }

    fn pipeline(&self) -> Option<&dyn PipelinedTransport> {
        Some(self)
    }
}

impl PipelinedTransport for ScriptedTransport {
    fn submit(&self, batch: &[Message]) -> Result<BatchTicket, SubmitError> {
        if self.stopped.load(Ordering::SeqCst) {
            return Err(SubmitError::Unavailable);
        }
        let mut st = self.state.lock();
        if !st.connected {
            return Err(SubmitError::Unavailable);
        }
        st.next_seq += 1;
        let ticket = BatchTicket {
            epoch: st.epoch,
            seq: st.next_seq,
        };
        st.pending.push_back((ticket.seq, batch.to_vec()));
        match st.script.pop_front().unwrap_or(Fate::AckAll) {
            Fate::Hold => {}
            Fate::AckAll => {
                let drained: Vec<_> = st.pending.drain(..).collect();
                if let Some(&(last, _)) = drained.last() {
                    st.acked = last;
                }
                drop(st);
                for (_, msgs) in &drained {
                    self.deliver(msgs);
                }
                self.changed.notify_all();
                return Ok(ticket);
            }
            Fate::DeliverThenKill(n) => {
                let n = (n as usize).min(st.pending.len());
                let landed: Vec<_> = st.pending.drain(..n).collect();
                st.pending.clear();
                st.connected = false;
                drop(st);
                // Landed but never acked: the sender will retransmit
                // these after reconnect and dedup must absorb them.
                for (_, msgs) in &landed {
                    self.deliver(msgs);
                }
                self.changed.notify_all();
                return Ok(ticket);
            }
            Fate::Kill => {
                st.pending.clear();
                st.connected = false;
                drop(st);
                self.changed.notify_all();
                return Ok(ticket);
            }
        }
        Ok(ticket)
    }

    fn progress(&self) -> PipelineProgress {
        ScriptedTransport::snapshot(&self.state.lock())
    }

    fn wait_progress(&self, seen: PipelineProgress, timeout: Duration) -> PipelineProgress {
        let mut st = self.state.lock();
        if ScriptedTransport::snapshot(&st) == seen && !self.stopped.load(Ordering::SeqCst) {
            self.changed.wait_for(&mut st, timeout);
        }
        // A held batch's ack eventually arrives: when the mover is still
        // waiting on unchanged progress, deliver and ack the oldest
        // pending batch (one per park, so late acks interleave with any
        // further submits instead of landing all at once).
        if ScriptedTransport::snapshot(&st) == seen && st.connected {
            if let Some((seq, msgs)) = st.pending.pop_front() {
                st.acked = seq;
                drop(st);
                self.deliver(&msgs);
                self.changed.notify_all();
                return self.progress();
            }
        }
        ScriptedTransport::snapshot(&st)
    }

    fn poke(&self) {
        self.changed.notify_all();
    }

    fn window(&self) -> usize {
        // Small enough that kills regularly strand a partially-acked
        // window, large enough to keep several batches in flight.
        4
    }
}

fn wait_for<F: Fn() -> bool>(what: &str, deadline: Duration, f: F) {
    let until = std::time::Instant::now() + deadline;
    while !f() {
        assert!(std::time::Instant::now() < until, "timed out: {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Drains the destination queue and asserts each label 0..n arrived
/// exactly once.
fn assert_exactly_once(b: &Arc<QueueManager>, n: u32) {
    let mut seen = HashSet::new();
    while let Ok(Some(msg)) = b.get(DEST_QUEUE, Wait::NoWait) {
        let label: u32 = msg
            .payload_str()
            .and_then(|s| s.parse().ok())
            .expect("numeric label payload");
        assert!(
            seen.insert(label),
            "label {label} delivered more than once"
        );
    }
    assert_eq!(seen.len() as u32, n, "labels missing: {:?}", {
        let mut missing: Vec<u32> = (0..n).filter(|l| !seen.contains(l)).collect();
        missing.truncate(10);
        missing
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The real pipelined mover against a scripted network: coalesced
    /// watermarks, held acks, kills before and after batches landed,
    /// instant reconnects. Every message must reach the receiver exactly
    /// once, no matter the script.
    #[test]
    fn pipelined_mover_is_exactly_once_under_any_network_script(
        script in proptest::collection::vec(arb_fate(), 0..24),
        n in 8u32..48,
    ) {
        let clock = SystemClock::new();
        let a = QueueManager::builder("QA").clock(clock.clone()).build().unwrap();
        let b = QueueManager::builder("QB").clock(clock).build().unwrap();
        b.create_queue(DEST_QUEUE).unwrap();
        let transport = ScriptedTransport::new(b.clone(), script);
        let channel = Channel::connect_transport(&a, "QB", transport).unwrap();
        for label in 0..n {
            a.put_to(
                &QueueAddress::new("QB", DEST_QUEUE),
                Message::text(label.to_string()).build(),
            )
            .unwrap();
        }
        wait_for("all labels delivered", Duration::from_secs(10), || {
            b.queue(DEST_QUEUE).unwrap().depth() as u32 == n
        });
        drop(channel);
        assert_exactly_once(&b, n);
    }

    /// Watermark algebra: `covers` is final and monotonic, `pending` and
    /// `covers` are mutually exclusive, and neither survives an epoch
    /// change or (for `pending`) a disconnect.
    #[test]
    fn watermark_covers_and_pending_are_consistent(
        t_epoch in 0u64..4,
        t_seq in 1u64..64,
        p_epoch in 0u64..4,
        acked in 0u64..64,
        advance in 0u64..64,
        connected in any::<bool>(),
    ) {
        let ticket = BatchTicket { epoch: t_epoch, seq: t_seq };
        let progress = PipelineProgress { epoch: p_epoch, acked, connected };
        // A batch is never both committed and awaited.
        prop_assert!(!(progress.covers(ticket) && progress.pending(ticket)));
        // Coverage ignores liveness: an observed watermark is final.
        let dead = PipelineProgress { connected: false, ..progress };
        prop_assert_eq!(progress.covers(ticket), dead.covers(ticket));
        // A dead connection pends nothing.
        prop_assert!(!dead.pending(ticket));
        // The watermark only moves forward: coverage is monotonic.
        let later = PipelineProgress { acked: acked + advance, ..progress };
        if progress.covers(ticket) {
            prop_assert!(later.covers(ticket));
        }
        // Another epoch's watermark says nothing about this ticket.
        let other = PipelineProgress { epoch: p_epoch + 1, ..progress };
        prop_assert!(!other.covers(ticket));
    }
}

/// End-to-end over real sockets: a channel pipelines batches to a TCP
/// acceptor while the test repeatedly kills the connection mid-window.
/// Reconnect + retransmit + receiver dedup must land every message
/// exactly once.
#[test]
fn tcp_mid_window_kills_stay_exactly_once() {
    let clock = SystemClock::new();
    let a = QueueManager::builder("QA")
        .clock(clock.clone())
        .build()
        .unwrap();
    let b = QueueManager::builder("QB").clock(clock).build().unwrap();
    b.create_queue(DEST_QUEUE).unwrap();
    let acceptor = TcpAcceptor::bind(&b, "127.0.0.1:0").unwrap();
    let transport = TcpTransport::connect(
        "QA",
        acceptor.local_addr(),
        TcpConfig::default(),
        a.obs().metrics(),
    )
    .unwrap();
    let channel = Channel::connect_transport(&a, "QB", transport.clone()).unwrap();

    let n: u32 = 400;
    for label in 0..n {
        a.put_to(
            &QueueAddress::new("QB", DEST_QUEUE),
            Message::text(label.to_string()).build(),
        )
        .unwrap();
        // Chop the connection every 50 puts: some kills strand a full
        // window of unacked batches, forcing rollback + retransmit. Wait
        // for a live connection first — a kill while the supervisor is
        // still dialing would tear down nothing.
        if label % 50 == 49 {
            wait_for("connection up before kill", Duration::from_secs(5), || {
                transport.is_connected()
            });
            transport.kill_connection();
        }
    }
    wait_for("all labels delivered over TCP", Duration::from_secs(20), || {
        b.queue(DEST_QUEUE).unwrap().depth() as u32 == n
    });
    let snap = a.obs().metrics().snapshot();
    assert!(
        snap.counter("mq.transport.reconnects") >= 1,
        "the kills must have forced at least one reconnect"
    );
    drop(channel);
    drop(acceptor);
    assert_exactly_once(&b, n);
}
