//! Model-based property tests for the queue substrate: random operation
//! sequences (puts, gets, transactions, rollbacks, crashes) run against
//! both the real queue manager and a tiny in-memory reference model of the
//! intended semantics; the visible state must agree at every checkpoint.
//!
//! The model captures the contract the conditional-messaging layer relies
//! on: priority-then-FIFO delivery, all-or-nothing transactions, rollback
//! redelivery at the front, and persistence across crash/recovery for
//! exactly the stable persistent messages.

use std::sync::Arc;

use mq::journal::MemJournal;
use mq::{ManagerConfig, Message, Priority, QueueManager, Wait};
use proptest::prelude::*;
use simtime::SimClock;

const QUEUE: &str = "Q";

#[derive(Debug, Clone)]
enum Op {
    /// Non-transactional put.
    Put {
        label: u32,
        priority: u8,
        persistent: bool,
    },
    /// Non-transactional destructive get.
    Get,
    /// A transaction: staged puts and gets, then commit or rollback.
    Tx {
        puts: Vec<(u32, u8, bool)>,
        gets: usize,
        commit: bool,
    },
    /// Crash the manager and recover from the journal.
    CrashRecover,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u32>(), 0u8..=9, any::<bool>())
            .prop_map(|(label, priority, persistent)| Op::Put { label, priority, persistent }),
        4 => Just(Op::Get),
        3 => (
            proptest::collection::vec((any::<u32>(), 0u8..=9, any::<bool>()), 0..3),
            0usize..3,
            any::<bool>(),
        )
            .prop_map(|(puts, gets, commit)| Op::Tx { puts, gets, commit }),
        1 => Just(Op::CrashRecover),
    ]
}

/// Reference model: an entry is `(label, priority, persistent)`.
#[derive(Debug, Default, Clone)]
struct Model {
    /// In delivery order within each band; index = priority.
    bands: Vec<Vec<(u32, bool)>>,
}

impl Model {
    fn new() -> Model {
        Model {
            bands: vec![Vec::new(); 10],
        }
    }

    fn put_back(&mut self, label: u32, priority: u8, persistent: bool) {
        self.bands[priority as usize].push((label, persistent));
    }

    fn put_front(&mut self, label: u32, priority: u8, persistent: bool) {
        self.bands[priority as usize].insert(0, (label, persistent));
    }

    /// Highest priority first, FIFO within priority.
    fn take(&mut self) -> Option<(u32, u8, bool)> {
        for p in (0..10usize).rev() {
            if !self.bands[p].is_empty() {
                let (label, persistent) = self.bands[p].remove(0);
                return Some((label, p as u8, persistent));
            }
        }
        None
    }

    fn crash(&mut self) {
        for band in &mut self.bands {
            band.retain(|(_, persistent)| *persistent);
        }
    }

    /// Delivery-order snapshot of labels.
    fn snapshot(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for p in (0..10usize).rev() {
            out.extend(self.bands[p].iter().map(|(label, _)| *label));
        }
        out
    }
}

fn build_manager(journal: &Arc<MemJournal>) -> Arc<QueueManager> {
    let qm = QueueManager::builder("QM1")
        .clock(SimClock::new())
        .journal(journal.clone())
        .config(ManagerConfig {
            // Keep rollbacks redelivering indefinitely so the model stays
            // simple (no dead-lettering).
            backout_threshold: u32::MAX,
            ..ManagerConfig::default()
        })
        .build()
        .unwrap();
    qm.ensure_queue(QUEUE).unwrap();
    qm
}

fn message(label: u32, priority: u8, persistent: bool) -> Message {
    Message::text(label.to_string())
        .property("label", i64::from(label))
        .priority(Priority::new(priority))
        .persistent(persistent)
        .build()
}

fn snapshot(qm: &Arc<QueueManager>) -> Vec<u32> {
    qm.queue(QUEUE)
        .unwrap()
        .browse()
        .iter()
        .map(|m| m.i64_property("label").unwrap() as u32)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn queue_manager_agrees_with_model(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let journal = MemJournal::new();
        let mut qm = build_manager(&journal);
        let mut model = Model::new();

        for op in ops {
            match op {
                Op::Put { label, priority, persistent } => {
                    qm.put(QUEUE, message(label, priority, persistent)).unwrap();
                    model.put_back(label, priority, persistent);
                }
                Op::Get => {
                    let real = qm.get(QUEUE, Wait::NoWait).unwrap();
                    let expected = model.take();
                    match (&real, &expected) {
                        (None, None) => {}
                        (Some(m), Some((label, priority, persistent))) => {
                            prop_assert_eq!(m.i64_property("label"), Some(i64::from(*label)));
                            prop_assert_eq!(m.priority().level(), *priority);
                            prop_assert_eq!(m.is_persistent(), *persistent);
                        }
                        other => prop_assert!(false, "get mismatch: {other:?}"),
                    }
                }
                Op::Tx { puts, gets, commit } => {
                    let mut session = qm.session();
                    session.begin().unwrap();
                    let mut consumed: Vec<(u32, u8, bool)> = Vec::new();
                    for _ in 0..gets {
                        let real = session.get(QUEUE, Wait::NoWait).unwrap();
                        let expected = model.take();
                        match (&real, &expected) {
                            (None, None) => {}
                            (Some(m), Some((label, priority, persistent))) => {
                                prop_assert_eq!(
                                    m.i64_property("label"),
                                    Some(i64::from(*label))
                                );
                                consumed.push((*label, *priority, *persistent));
                            }
                            other => prop_assert!(false, "tx get mismatch: {other:?}"),
                        }
                    }
                    for (label, priority, persistent) in &puts {
                        session
                            .put(QUEUE, message(*label, *priority, *persistent))
                            .unwrap();
                    }
                    if commit {
                        session.commit().unwrap();
                        for (label, priority, persistent) in &puts {
                            model.put_back(*label, *priority, *persistent);
                        }
                        // consumed stay consumed
                    } else {
                        session.rollback().unwrap();
                        // Requeued at the front in reverse consumption
                        // order restores original positions.
                        for (label, priority, persistent) in consumed.into_iter().rev() {
                            model.put_front(label, priority, persistent);
                        }
                    }
                }
                Op::CrashRecover => {
                    qm.crash();
                    qm = build_manager(&journal);
                    model.crash();
                }
            }
            prop_assert_eq!(snapshot(&qm), model.snapshot());
        }

        // Final full drain must agree element by element.
        loop {
            let real = qm.get(QUEUE, Wait::NoWait).unwrap();
            let expected = model.take();
            match (&real, &expected) {
                (None, None) => break,
                (Some(m), Some((label, _, _))) => {
                    prop_assert_eq!(m.i64_property("label"), Some(i64::from(*label)));
                }
                other => prop_assert!(false, "drain mismatch: {other:?}"),
            }
        }
    }

    /// Journal compaction is semantically invisible: compact + crash +
    /// recover yields the same persistent contents as crash + recover.
    #[test]
    fn compaction_is_invisible(
        labels in proptest::collection::vec((any::<u32>(), 0u8..=9, any::<bool>()), 0..20),
        consume in 0usize..10,
    ) {
        let journal = MemJournal::new();
        let qm = build_manager(&journal);
        for (label, priority, persistent) in &labels {
            qm.put(QUEUE, message(*label, *priority, *persistent)).unwrap();
        }
        for _ in 0..consume {
            let _ = qm.get(QUEUE, Wait::NoWait).unwrap();
        }
        let reference = snapshot(&qm)
            .into_iter()
            .zip(qm.queue(QUEUE).unwrap().browse())
            .filter(|(_, m)| m.is_persistent())
            .map(|(label, _)| label)
            .collect::<Vec<_>>();
        qm.compact().unwrap();
        qm.crash();
        let qm2 = build_manager(&journal);
        prop_assert_eq!(snapshot(&qm2), reference);
    }
}
