//! The message model: identifiers, typed properties, headers and payload.
//!
//! Mirrors the JMS/MQSeries message shape the paper layers on: an opaque
//! payload plus a bag of typed, selectable properties and delivery headers
//! (priority, persistence, expiry, correlation id, reply-to address).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use bytes::Bytes;
use rand::RngCore;
use simtime::{Millis, Time};

/// Globally unique message identifier (128 random bits).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageId(u128);

impl MessageId {
    /// Generates a fresh random identifier.
    pub fn generate() -> MessageId {
        let mut bytes = [0u8; 16];
        rand::thread_rng().fill_bytes(&mut bytes);
        MessageId(u128::from_be_bytes(bytes))
    }

    /// Reconstructs an identifier from its raw value (used by the codec).
    pub fn from_u128(v: u128) -> MessageId {
        MessageId(v)
    }

    /// Returns the raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }
}

impl fmt::Debug for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MessageId({self})")
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Delivery priority, `0` (lowest) through `9` (highest), default `4`.
///
/// Matches the JMS priority range; higher-priority messages are delivered
/// ahead of lower-priority ones, FIFO within a priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(u8);

impl Priority {
    /// Lowest priority.
    pub const MIN: Priority = Priority(0);
    /// JMS default priority.
    pub const DEFAULT: Priority = Priority(4);
    /// Highest priority.
    pub const MAX: Priority = Priority(9);

    /// Creates a priority, clamping to the valid `0..=9` range.
    pub fn new(level: u8) -> Priority {
        Priority(level.min(9))
    }

    /// Returns the priority level.
    pub fn level(self) -> u8 {
        self.0
    }
}

impl Default for Priority {
    fn default() -> Self {
        Priority::DEFAULT
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A typed property value, selectable via [`crate::selector`].
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyValue {
    /// UTF-8 string.
    Str(String),
    /// 64-bit signed integer.
    I64(i64),
    /// 64-bit float.
    F64(f64),
    /// Boolean.
    Bool(bool),
}

impl PropertyValue {
    /// Returns the string value, if this is a string property.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            PropertyValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer value, if this is an integer property.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            PropertyValue::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float value (integers widen), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            PropertyValue::F64(v) => Some(*v),
            PropertyValue::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the boolean value, if this is a boolean property.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            PropertyValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for PropertyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyValue::Str(s) => write!(f, "{s}"),
            PropertyValue::I64(v) => write!(f, "{v}"),
            PropertyValue::F64(v) => write!(f, "{v}"),
            PropertyValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for PropertyValue {
    fn from(v: &str) -> Self {
        PropertyValue::Str(v.to_owned())
    }
}
impl From<String> for PropertyValue {
    fn from(v: String) -> Self {
        PropertyValue::Str(v)
    }
}
impl From<i64> for PropertyValue {
    fn from(v: i64) -> Self {
        PropertyValue::I64(v)
    }
}
impl From<u64> for PropertyValue {
    fn from(v: u64) -> Self {
        PropertyValue::I64(v as i64)
    }
}
impl From<f64> for PropertyValue {
    fn from(v: f64) -> Self {
        PropertyValue::F64(v)
    }
}
impl From<bool> for PropertyValue {
    fn from(v: bool) -> Self {
        PropertyValue::Bool(v)
    }
}

/// Fully qualified address of a queue: `queue manager / queue name`.
///
/// Used for cross-queue-manager routing (paper: a recipient's conditional
/// messaging system must know the *sender's queue manager* to direct
/// acknowledgments back to `DS.ACK.Q`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueueAddress {
    /// Name of the owning queue manager.
    pub manager: String,
    /// Queue name within that manager.
    pub queue: String,
}

impl QueueAddress {
    /// Creates an address from manager and queue names.
    pub fn new(manager: impl Into<String>, queue: impl Into<String>) -> QueueAddress {
        QueueAddress {
            manager: manager.into(),
            queue: queue.into(),
        }
    }

    /// Parses a `"manager/queue"` string.
    pub fn parse(s: &str) -> Option<QueueAddress> {
        let (m, q) = s.split_once('/')?;
        if m.is_empty() || q.is_empty() {
            return None;
        }
        Some(QueueAddress::new(m, q))
    }
}

impl fmt::Display for QueueAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.manager, self.queue)
    }
}

/// A message: payload, typed properties and delivery headers.
///
/// Construct with [`Message::builder`]. Most fields are immutable after
/// construction; the broker stamps `put_time`, absolute `expiry` and
/// `redelivery_count` during delivery.
#[derive(Debug, Clone)]
pub struct Message {
    id: MessageId,
    payload: Bytes,
    properties: BTreeMap<String, PropertyValue>,
    priority: Priority,
    persistent: bool,
    /// Time-to-live requested by the sender; converted to an absolute
    /// `expiry` when the message is enqueued.
    ttl: Option<Millis>,
    /// Absolute expiry stamped at enqueue time.
    expiry: Option<Time>,
    correlation_id: Option<String>,
    reply_to: Option<QueueAddress>,
    put_time: Option<Time>,
    redelivery_count: u32,
    /// Cached encoded wire image, filled lazily by `Message::wire_bytes`
    /// (in `codec.rs`). Clones share the cell; every mutator swaps in a
    /// fresh one (copy-on-write invalidation), so a stale image can never
    /// be observed. Excluded from equality.
    wire: Arc<OnceLock<Bytes>>,
}

impl PartialEq for Message {
    fn eq(&self, other: &Message) -> bool {
        // All logical fields; the derived impl would also drag in the
        // wire-image cache, which is an encoding artifact, not state.
        self.id == other.id
            && self.payload == other.payload
            && self.properties == other.properties
            && self.priority == other.priority
            && self.persistent == other.persistent
            && self.ttl == other.ttl
            && self.expiry == other.expiry
            && self.correlation_id == other.correlation_id
            && self.reply_to == other.reply_to
            && self.put_time == other.put_time
            && self.redelivery_count == other.redelivery_count
    }
}

impl Message {
    /// Starts building a message with the given payload bytes.
    pub fn builder(payload: impl Into<Bytes>) -> MessageBuilder {
        MessageBuilder::new(payload)
    }

    /// Builds a text message (UTF-8 payload), the common case in examples.
    pub fn text(s: impl AsRef<str>) -> MessageBuilder {
        MessageBuilder::new(Bytes::copy_from_slice(s.as_ref().as_bytes()))
    }

    /// The unique message id.
    pub fn id(&self) -> MessageId {
        self.id
    }

    /// The opaque payload.
    pub fn payload(&self) -> &Bytes {
        &self.payload
    }

    /// The payload interpreted as UTF-8, if valid.
    pub fn payload_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.payload).ok()
    }

    /// Looks up a property by name.
    pub fn property(&self, name: &str) -> Option<&PropertyValue> {
        self.properties.get(name)
    }

    /// Shorthand for a string property's value.
    pub fn str_property(&self, name: &str) -> Option<&str> {
        self.property(name).and_then(PropertyValue::as_str)
    }

    /// Shorthand for an integer property's value.
    pub fn i64_property(&self, name: &str) -> Option<i64> {
        self.property(name).and_then(PropertyValue::as_i64)
    }

    /// Shorthand for a boolean property's value.
    pub fn bool_property(&self, name: &str) -> Option<bool> {
        self.property(name).and_then(PropertyValue::as_bool)
    }

    /// Iterates over all properties in name order.
    pub fn properties(&self) -> impl Iterator<Item = (&str, &PropertyValue)> {
        self.properties.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sets a property on an existing message (used by the conditional
    /// messaging layer to stamp control information, paper §2.3).
    pub fn set_property(&mut self, name: impl Into<String>, value: impl Into<PropertyValue>) {
        self.invalidate_wire();
        self.properties.insert(name.into(), value.into());
    }

    /// Removes a property, returning its previous value (used by channels to
    /// strip transmission envelopes).
    pub fn remove_property(&mut self, name: &str) -> Option<PropertyValue> {
        self.invalidate_wire();
        self.properties.remove(name)
    }

    /// Delivery priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Whether the message survives queue-manager restart.
    pub fn is_persistent(&self) -> bool {
        self.persistent
    }

    /// The sender-requested time-to-live, if any.
    pub fn ttl(&self) -> Option<Millis> {
        self.ttl
    }

    /// Absolute expiry time stamped at enqueue, if any.
    pub fn expiry(&self) -> Option<Time> {
        self.expiry
    }

    /// Returns `true` if the message is expired at `now`.
    pub fn is_expired(&self, now: Time) -> bool {
        matches!(self.expiry, Some(e) if now >= e)
    }

    /// Correlation id linking this message to another.
    pub fn correlation_id(&self) -> Option<&str> {
        self.correlation_id.as_deref()
    }

    /// Address replies should be sent to.
    pub fn reply_to(&self) -> Option<&QueueAddress> {
        self.reply_to.as_ref()
    }

    /// Broker timestamp of the most recent enqueue.
    pub fn put_time(&self) -> Option<Time> {
        self.put_time
    }

    /// How many times delivery of this message has been rolled back.
    pub fn redelivery_count(&self) -> u32 {
        self.redelivery_count
    }

    /// Approximate in-memory size, used for stats and max-length checks.
    pub fn size(&self) -> usize {
        self.payload.len()
            + self
                .properties
                .iter()
                .map(|(k, v)| {
                    k.len()
                        + match v {
                            PropertyValue::Str(s) => s.len(),
                            _ => 8,
                        }
                })
                .sum::<usize>()
    }

    // --- crate-internal mutation used by the broker ---

    /// The lazily-filled wire-image cell; see [`Message::wire_bytes`] in
    /// `codec.rs` for the fill side.
    pub(crate) fn wire_cache(&self) -> &OnceLock<Bytes> {
        &self.wire
    }

    /// Detaches this message from any wire image cached so far. Clones
    /// made before the mutation keep the old (still-correct) image via
    /// their own `Arc` handle.
    fn invalidate_wire(&mut self) {
        self.wire = Arc::new(OnceLock::new());
    }

    pub(crate) fn stamp_enqueue(&mut self, now: Time) {
        self.invalidate_wire();
        self.put_time = Some(now);
        if self.expiry.is_none() {
            if let Some(ttl) = self.ttl {
                self.expiry = Some(now + ttl);
            }
        }
    }

    pub(crate) fn bump_redelivery(&mut self) {
        self.invalidate_wire();
        self.redelivery_count += 1;
    }

    /// Caps the message's lifetime at `t` unless a tighter expiry is
    /// already set (per-queue retention policy; see
    /// [`crate::QueueConfig::retention`]).
    pub(crate) fn apply_retention(&mut self, t: Time) {
        if self.expiry.is_none_or(|e| e > t) {
            self.invalidate_wire();
            self.expiry = Some(t);
        }
    }

    /// Strips TTL and absolute expiry. Used when a message is diverted to
    /// the dead-letter queue for audit: an expired envelope must not
    /// evaporate off the DLQ before an operator can inspect it.
    pub(crate) fn clear_expiry(&mut self) {
        self.invalidate_wire();
        self.ttl = None;
        self.expiry = None;
    }

    /// Reconstructs a message from raw parts (codec/journal use only).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        id: MessageId,
        payload: Bytes,
        properties: BTreeMap<String, PropertyValue>,
        priority: Priority,
        persistent: bool,
        ttl: Option<Millis>,
        expiry: Option<Time>,
        correlation_id: Option<String>,
        reply_to: Option<QueueAddress>,
        put_time: Option<Time>,
        redelivery_count: u32,
    ) -> Message {
        Message {
            id,
            payload,
            properties,
            priority,
            persistent,
            ttl,
            expiry,
            correlation_id,
            reply_to,
            put_time,
            redelivery_count,
            wire: Arc::new(OnceLock::new()),
        }
    }
}

/// Builder for [`Message`].
///
/// # Examples
///
/// ```
/// use mq::{Message, Priority};
///
/// let msg = Message::text("flight UA-17 inbound")
///     .property("kind", "flight")
///     .property("altitude", 31_000i64)
///     .priority(Priority::new(7))
///     .persistent(true)
///     .build();
/// assert_eq!(msg.str_property("kind"), Some("flight"));
/// ```
#[derive(Debug, Clone)]
pub struct MessageBuilder {
    payload: Bytes,
    properties: BTreeMap<String, PropertyValue>,
    priority: Priority,
    persistent: bool,
    ttl: Option<Millis>,
    correlation_id: Option<String>,
    reply_to: Option<QueueAddress>,
}

impl MessageBuilder {
    fn new(payload: impl Into<Bytes>) -> MessageBuilder {
        MessageBuilder {
            payload: payload.into(),
            properties: BTreeMap::new(),
            priority: Priority::DEFAULT,
            persistent: false,
            ttl: None,
            correlation_id: None,
            reply_to: None,
        }
    }

    /// Adds a typed property.
    pub fn property(mut self, name: impl Into<String>, value: impl Into<PropertyValue>) -> Self {
        self.properties.insert(name.into(), value.into());
        self
    }

    /// Sets the delivery priority (default [`Priority::DEFAULT`]).
    pub fn priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Marks the message persistent (journaled; survives restart).
    pub fn persistent(mut self, yes: bool) -> Self {
        self.persistent = yes;
        self
    }

    /// Sets a time-to-live; the broker computes the absolute expiry at
    /// enqueue time (paper: the `MsgExpiry` condition attribute).
    pub fn ttl(mut self, ttl: Millis) -> Self {
        self.ttl = Some(ttl);
        self
    }

    /// Sets the correlation id.
    pub fn correlation_id(mut self, id: impl Into<String>) -> Self {
        self.correlation_id = Some(id.into());
        self
    }

    /// Sets the reply-to address.
    pub fn reply_to(mut self, addr: QueueAddress) -> Self {
        self.reply_to = Some(addr);
        self
    }

    /// Finalizes the message with a freshly generated id.
    pub fn build(self) -> Message {
        Message {
            id: MessageId::generate(),
            payload: self.payload,
            properties: self.properties,
            priority: self.priority,
            persistent: self.persistent,
            ttl: self.ttl,
            expiry: None,
            correlation_id: self.correlation_id,
            reply_to: self.reply_to,
            put_time: None,
            redelivery_count: 0,
            wire: Arc::new(OnceLock::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_roundtrip() {
        let a = MessageId::generate();
        let b = MessageId::generate();
        assert_ne!(a, b);
        assert_eq!(MessageId::from_u128(a.as_u128()), a);
        assert_eq!(a.to_string().len(), 32);
    }

    #[test]
    fn priority_clamps() {
        assert_eq!(Priority::new(12), Priority::MAX);
        assert_eq!(Priority::new(0), Priority::MIN);
        assert_eq!(Priority::default(), Priority::DEFAULT);
        assert_eq!(Priority::new(3).level(), 3);
    }

    #[test]
    fn builder_sets_all_fields() {
        let msg = Message::text("hello")
            .property("a", 1i64)
            .property("b", "two")
            .property("c", true)
            .property("d", 2.5f64)
            .priority(Priority::new(8))
            .persistent(true)
            .ttl(Millis(500))
            .correlation_id("corr-1")
            .reply_to(QueueAddress::new("QM1", "REPLY.Q"))
            .build();
        assert_eq!(msg.payload_str(), Some("hello"));
        assert_eq!(msg.i64_property("a"), Some(1));
        assert_eq!(msg.str_property("b"), Some("two"));
        assert_eq!(msg.bool_property("c"), Some(true));
        assert_eq!(msg.property("d").and_then(PropertyValue::as_f64), Some(2.5));
        assert_eq!(msg.priority().level(), 8);
        assert!(msg.is_persistent());
        assert_eq!(msg.ttl(), Some(Millis(500)));
        assert_eq!(msg.correlation_id(), Some("corr-1"));
        assert_eq!(msg.reply_to().unwrap().queue, "REPLY.Q");
        assert_eq!(msg.redelivery_count(), 0);
        assert!(msg.put_time().is_none());
    }

    #[test]
    fn enqueue_stamps_put_time_and_expiry() {
        let mut msg = Message::text("x").ttl(Millis(100)).build();
        msg.stamp_enqueue(Time(50));
        assert_eq!(msg.put_time(), Some(Time(50)));
        assert_eq!(msg.expiry(), Some(Time(150)));
        assert!(!msg.is_expired(Time(149)));
        assert!(msg.is_expired(Time(150)));

        // Re-enqueue (redelivery) does not extend the expiry.
        msg.stamp_enqueue(Time(200));
        assert_eq!(msg.expiry(), Some(Time(150)));
    }

    #[test]
    fn message_without_ttl_never_expires() {
        let mut msg = Message::text("x").build();
        msg.stamp_enqueue(Time(10));
        assert!(!msg.is_expired(Time::MAX));
    }

    #[test]
    fn queue_address_parse_and_display() {
        let addr = QueueAddress::parse("QM1/ORDERS.Q").unwrap();
        assert_eq!(addr.manager, "QM1");
        assert_eq!(addr.queue, "ORDERS.Q");
        assert_eq!(addr.to_string(), "QM1/ORDERS.Q");
        assert!(QueueAddress::parse("no-slash").is_none());
        assert!(QueueAddress::parse("/q").is_none());
        assert!(QueueAddress::parse("m/").is_none());
    }

    #[test]
    fn property_value_conversions() {
        assert_eq!(PropertyValue::from(3i64).as_i64(), Some(3));
        assert_eq!(PropertyValue::from(3u64).as_i64(), Some(3));
        assert_eq!(PropertyValue::from(3i64).as_f64(), Some(3.0));
        assert_eq!(PropertyValue::from("s").as_str(), Some("s"));
        assert_eq!(PropertyValue::from(true).as_bool(), Some(true));
        assert_eq!(PropertyValue::from(1.5f64).as_f64(), Some(1.5));
        assert_eq!(PropertyValue::Str("x".into()).as_i64(), None);
    }

    #[test]
    fn set_property_overwrites() {
        let mut msg = Message::text("x").property("k", 1i64).build();
        msg.set_property("k", 2i64);
        assert_eq!(msg.i64_property("k"), Some(2));
        assert_eq!(msg.properties().count(), 1);
    }

    #[test]
    fn size_accounts_for_payload_and_properties() {
        let msg = Message::text("12345").property("abc", "xyz").build();
        assert_eq!(msg.size(), 5 + 3 + 3);
    }

    #[test]
    fn message_is_send_sync() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<Message>();
    }
}
