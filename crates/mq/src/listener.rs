//! Push-based message consumption (the JMS `MessageListener` analog).
//!
//! A [`Listener`] runs a background thread that delivers each arriving
//! message to a callback. Delivery is transactional: the callback runs
//! inside a messaging transaction holding the consumed message, and its
//! [`Disposition`] decides between commit (message consumed, staged puts
//! released) and rollback (message redelivered, counting toward the
//! backout threshold). A panicking callback rolls back too — a poison
//! message therefore ends up on the dead-letter queue instead of wedging
//! the listener.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use simtime::Millis;

use crate::error::MqResult;
use crate::message::Message;
use crate::qmgr::QueueManager;
use crate::queue::Wait;
use crate::session::Session;
use crate::stats::Counter;

/// What the listener should do with the delivered message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Commit the delivery transaction (message consumed).
    Commit,
    /// Roll back: the message returns to the queue and is redelivered
    /// (dead-lettered past the backout threshold).
    Rollback,
}

/// The delivery callback: receives the message and a session holding the
/// open delivery transaction (replies/forwards staged on it commit
/// atomically with the consumption).
pub type Callback = dyn FnMut(&Message, &mut Session) -> Disposition + Send;

/// Per-listener statistics.
#[derive(Debug, Default)]
pub struct ListenerStats {
    /// Deliveries committed.
    pub delivered: Counter,
    /// Deliveries rolled back (by disposition or panic).
    pub rolled_back: Counter,
    /// Callback panics caught.
    pub panics: Counter,
    /// Signalled after every disposition so waiters can park instead of
    /// sleep-polling.
    changed: Condvar,
    changed_lock: Mutex<()>,
}

impl ListenerStats {
    /// Blocks until `pred` holds, woken by the listener after each
    /// disposition (commit, rollback or caught panic) instead of
    /// sleep-polling. Panics with `what` after 5 s — this is a test/await
    /// helper, not a production synchronization primitive.
    pub fn wait_until<F: Fn() -> bool>(&self, what: &str, pred: F) {
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut guard = self.changed_lock.lock();
        while !pred() {
            let now = Instant::now();
            assert!(now < deadline, "timed out waiting for: {what}");
            self.changed.wait_for(&mut guard, deadline - now);
        }
    }

    fn note_disposition(&self) {
        let _guard = self.changed_lock.lock();
        self.changed.notify_all();
    }
}

/// A running push consumer; stops (and joins) on drop.
pub struct Listener {
    queue: String,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    stats: Arc<ListenerStats>,
}

impl fmt::Debug for Listener {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Listener")
            .field("queue", &self.queue)
            .field("delivered", &self.stats.delivered.get())
            .finish()
    }
}

impl Listener {
    /// Spawns a listener on `queue`.
    ///
    /// # Errors
    ///
    /// [`crate::MqError::QueueNotFound`] when the queue does not exist.
    pub fn spawn(
        qmgr: Arc<QueueManager>,
        queue: impl Into<String>,
        mut callback: Box<Callback>,
    ) -> MqResult<Listener> {
        let queue = queue.into();
        let watched = qmgr.queue(&queue)?; // validate up front
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ListenerStats::default());
        let stop2 = stop.clone();
        let stats2 = stats.clone();
        let queue2 = queue.clone();
        let handle = std::thread::Builder::new()
            .name(format!("mq-listener-{queue}"))
            .spawn(move || {
                while !stop2.load(Ordering::SeqCst) {
                    if !qmgr.is_running() {
                        return;
                    }
                    // Park on the queue's condvar while idle: no session
                    // (or transaction churn) until a message is available.
                    match watched.wait_nonempty(Wait::Timeout(Millis(50))) {
                        Ok(true) => {}
                        Ok(false) => continue, // recheck the stop flag
                        Err(_) => return,      // manager stopped
                    }
                    let mut session = qmgr.session();
                    if session.begin().is_err() {
                        return;
                    }
                    let msg = match session.get(&queue2, Wait::NoWait) {
                        Ok(Some(m)) => m,
                        Ok(None) => {
                            // Raced with another consumer.
                            let _ = session.rollback_for_retry();
                            continue;
                        }
                        Err(_) => return, // manager stopped
                    };
                    // Catch panics so a poison message rolls back (and
                    // eventually dead-letters) instead of killing the
                    // listener thread.
                    let disposition =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            callback(&msg, &mut session)
                        }));
                    match disposition {
                        Ok(Disposition::Commit) => {
                            if session.commit().is_ok() {
                                stats2.delivered.incr();
                            }
                        }
                        Ok(Disposition::Rollback) => {
                            let _ = session.rollback();
                            stats2.rolled_back.incr();
                        }
                        Err(_) => {
                            let _ = session.rollback();
                            stats2.rolled_back.incr();
                            stats2.panics.incr();
                        }
                    }
                    stats2.note_disposition();
                }
            })
            .expect("failed to spawn listener thread");
        Ok(Listener {
            queue,
            stop,
            handle: Some(handle),
            stats,
        })
    }

    /// The queue this listener consumes.
    pub fn queue(&self) -> &str {
        &self.queue
    }

    /// Listener statistics.
    pub fn stats(&self) -> &ListenerStats {
        &self.stats
    }

    /// Stops the listener and waits for its thread to exit.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qmgr::{ManagerConfig, DEAD_LETTER_QUEUE};
    use parking_lot::Mutex;

    #[test]
    fn listener_delivers_messages_in_order() {
        let qmgr = QueueManager::builder("QM1").build().unwrap();
        qmgr.create_queue("IN").unwrap();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let mut listener = Listener::spawn(
            qmgr.clone(),
            "IN",
            Box::new(move |msg, _session| {
                seen2.lock().push(msg.payload_str().unwrap().to_owned());
                Disposition::Commit
            }),
        )
        .unwrap();
        for i in 0..10 {
            qmgr.put("IN", Message::text(format!("m{i}")).build())
                .unwrap();
        }
        listener
            .stats()
            .wait_until("10 deliveries", || seen.lock().len() == 10);
        listener.stop();
        assert_eq!(
            *seen.lock(),
            (0..10).map(|i| format!("m{i}")).collect::<Vec<_>>()
        );
        assert_eq!(listener.stats().delivered.get(), 10);
        assert_eq!(qmgr.queue("IN").unwrap().depth(), 0);
    }

    #[test]
    fn staged_replies_commit_with_the_delivery() {
        let qmgr = QueueManager::builder("QM1").build().unwrap();
        qmgr.create_queue("IN").unwrap();
        qmgr.create_queue("OUT").unwrap();
        let _listener = Listener::spawn(
            qmgr.clone(),
            "IN",
            Box::new(|msg, session| {
                let reply = Message::text(format!("re: {}", msg.payload_str().unwrap())).build();
                session.put("OUT", reply).expect("stage reply");
                Disposition::Commit
            }),
        )
        .unwrap();
        qmgr.put("IN", Message::text("ping").build()).unwrap();
        _listener
            .stats()
            .wait_until("reply", || qmgr.queue("OUT").unwrap().depth() == 1);
        let reply = qmgr.get("OUT", Wait::NoWait).unwrap().unwrap();
        assert_eq!(reply.payload_str(), Some("re: ping"));
    }

    #[test]
    fn rollback_redelivers_until_dead_lettered() {
        let qmgr = QueueManager::builder("QM1")
            .config(ManagerConfig {
                backout_threshold: 2,
                ..ManagerConfig::default()
            })
            .build()
            .unwrap();
        qmgr.create_queue("IN").unwrap();
        let attempts = Arc::new(Counter::default());
        let attempts2 = attempts.clone();
        let _listener = Listener::spawn(
            qmgr.clone(),
            "IN",
            Box::new(move |_msg, _session| {
                attempts2.incr();
                Disposition::Rollback
            }),
        )
        .unwrap();
        qmgr.put("IN", Message::text("poison").build()).unwrap();
        _listener.stats().wait_until("dead letter", || {
            qmgr.queue(DEAD_LETTER_QUEUE).unwrap().depth() == 1
        });
        assert!(
            attempts.get() >= 3,
            "initial + redeliveries: {}",
            attempts.get()
        );
        assert_eq!(qmgr.queue("IN").unwrap().depth(), 0);
    }

    #[test]
    fn panicking_callback_rolls_back_and_survives() {
        let qmgr = QueueManager::builder("QM1")
            .config(ManagerConfig {
                backout_threshold: 1,
                ..ManagerConfig::default()
            })
            .build()
            .unwrap();
        qmgr.create_queue("IN").unwrap();
        let listener = Listener::spawn(
            qmgr.clone(),
            "IN",
            Box::new(|msg, _session| {
                if msg.payload_str() == Some("boom") {
                    panic!("callback exploded");
                }
                Disposition::Commit
            }),
        )
        .unwrap();
        qmgr.put("IN", Message::text("boom").build()).unwrap();
        qmgr.put("IN", Message::text("fine").build()).unwrap();
        listener
            .stats()
            .wait_until("panic handled + good message delivered", || {
                listener.stats().panics.get() >= 1 && listener.stats().delivered.get() >= 1
            });
        listener.stats().wait_until("poison dead-lettered", || {
            qmgr.queue(DEAD_LETTER_QUEUE).unwrap().depth() == 1
        });
    }

    #[test]
    fn spawn_on_missing_queue_fails() {
        let qmgr = QueueManager::builder("QM1").build().unwrap();
        assert!(Listener::spawn(qmgr, "NOPE", Box::new(|_, _| Disposition::Commit)).is_err());
    }

    #[test]
    fn stop_is_idempotent() {
        let qmgr = QueueManager::builder("QM1").build().unwrap();
        qmgr.create_queue("IN").unwrap();
        let mut listener =
            Listener::spawn(qmgr, "IN", Box::new(|_, _| Disposition::Commit)).unwrap();
        listener.stop();
        listener.stop();
        assert_eq!(listener.queue(), "IN");
    }
}
