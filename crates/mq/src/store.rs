//! The in-memory message store behind a [`crate::Queue`]: an id-keyed map
//! of live messages plus every secondary structure that makes queue reads
//! cheap — priority bands for delivery order, a correlation-id exact-match
//! index, per-property value-band indexes for selector point reads, an
//! expiry heap for TTL sweeps, and the pending-get table that keeps
//! transactionally-consumed messages visible to checkpoints.
//!
//! The store is the *cache* side of the storage inversion: the journal is
//! the primary copy of persistent state, and everything here can be
//! rebuilt from a checkpoint plus the journal tail. Consequently the store
//! never journals anything itself; the owning queue drives journaling and
//! the store only maintains structure invariants:
//!
//! * `entries` is authoritative for liveness — `entries.len()` is the
//!   queue depth.
//! * Band, correlation and property-index deques may hold **stale ids**
//!   (messages removed through another path); readers skip and prune them
//!   lazily, so removal stays O(1).
//! * Every live message has a **sequence number**: back-inserts count up
//!   from the midpoint, front-inserts (rollback requeues) count down, so
//!   "lowest seq wins within a priority band" reproduces exact FIFO
//!   delivery order — the property that lets an index bucket pick the
//!   same message a full band scan would.
//! * `pending` holds messages provisionally consumed by open transactions
//!   (journal-covered-later gets). They are invisible to reads but are
//!   included in checkpoint snapshots: the journal records that would
//!   rebuild them are truncated by the checkpoint, so the snapshot must
//!   carry them or a crash before commit would lose them.

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

use simtime::Time;

use crate::message::{Message, MessageId, PropertyValue};

/// Number of priority bands (JMS priorities 0–9).
pub(crate) const PRIORITY_BANDS: usize = 10;

/// Seed of the FNV-1a hash used for property value bands.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One live message plus its delivery-order sequence number.
pub(crate) struct Entry {
    pub(crate) msg: Arc<Message>,
    pub(crate) seq: u64,
}

/// Key of one secondary-index bucket: property name + canonical value band.
type PropKey = (String, u64);

/// Canonical value band of a property value, consistent with selector
/// equality: two values that can compare `=` true always land in the same
/// band (bands may collide further — candidates are always re-verified
/// against the full selector).
///
/// Numerics are banded by their `f64` bit pattern (with `-0.0` folded
/// into `0.0`) because the selector compares `I64` against `F64` through
/// `f64`; strings and booleans are tagged so `'1'`, `1` and `TRUE` never
/// share a band.
pub(crate) fn value_band(v: &PropertyValue) -> u64 {
    match v {
        PropertyValue::Str(s) => fnv(b's', s.as_bytes()),
        PropertyValue::Bool(b) => fnv(b'b', &[u8::from(*b)]),
        PropertyValue::I64(i) => numeric_band(*i as f64),
        PropertyValue::F64(f) => numeric_band(*f),
    }
}

fn numeric_band(f: f64) -> u64 {
    let f = if f == 0.0 { 0.0 } else { f };
    fnv(b'n', &f.to_bits().to_le_bytes())
}

fn fnv(tag: u8, bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    hash ^= u64::from(tag);
    hash = hash.wrapping_mul(FNV_PRIME);
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Takes the `Message` out of a store handle: free when no browse snapshot
/// shares it, a deep clone only when one does.
pub(crate) fn unshare(msg: Arc<Message>) -> Message {
    Arc::try_unwrap(msg).unwrap_or_else(|shared| (*shared).clone())
}

/// The id-keyed message map with all secondary indexes. Owned by a queue
/// behind its mutex; every method here assumes that exclusion.
pub(crate) struct MessageStore {
    /// One FIFO band of message ids per priority level; may contain stale
    /// ids (messages already removed), skipped lazily.
    pub(crate) bands: [VecDeque<MessageId>; PRIORITY_BANDS],
    /// The live messages. `entries.len()` is the queue depth.
    pub(crate) entries: HashMap<MessageId, Entry>,
    /// Correlation id → enqueued message ids (FIFO; may contain stale ids).
    pub(crate) by_correlation: HashMap<String, VecDeque<MessageId>>,
    /// (property name, value band) → enqueued message ids (FIFO; may
    /// contain stale ids). Complete over live messages when
    /// `index_properties` is on: every property of every inserted message
    /// is indexed, so an absent bucket proves no live message matches an
    /// equality constraint on that (name, value).
    by_property: HashMap<PropKey, VecDeque<MessageId>>,
    /// Min-heap of (expiry millis, id): the TTL sweep pops ripe entries
    /// instead of scanning the queue. May hold stale ids.
    expiry_heap: BinaryHeap<std::cmp::Reverse<(u64, u128)>>,
    /// Messages provisionally consumed by open transactions, still owed
    /// to checkpoint snapshots (see module docs).
    pending: HashMap<MessageId, Arc<Message>>,
    /// Whether `by_property` is maintained (per-queue config).
    index_properties: bool,
    /// Next sequence number for back-inserts (counts up).
    next_back_seq: u64,
    /// Next sequence number for front-inserts (counts down).
    next_front_seq: u64,
    /// Bumped on every insert (and on close) so blocking consumers can
    /// detect arrivals between releasing the lock and parking.
    version: u64,
    pub(crate) open: bool,
}

impl std::fmt::Debug for MessageStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MessageStore")
            .field("depth", &self.entries.len())
            .field("pending", &self.pending.len())
            .field("indexed", &self.index_properties)
            .finish()
    }
}

const SEQ_MIDPOINT: u64 = u64::MAX / 2;

impl MessageStore {
    pub(crate) fn new(index_properties: bool) -> MessageStore {
        MessageStore {
            bands: Default::default(),
            entries: HashMap::new(),
            by_correlation: HashMap::new(),
            by_property: HashMap::new(),
            expiry_heap: BinaryHeap::new(),
            pending: HashMap::new(),
            index_properties,
            next_back_seq: SEQ_MIDPOINT,
            next_front_seq: SEQ_MIDPOINT - 1,
            version: 0,
            open: true,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Monotonic arrival counter; see the `version` field.
    pub(crate) fn version(&self) -> u64 {
        self.version
    }

    /// Bumps the arrival counter without an insert (close/wake paths).
    pub(crate) fn bump_version(&mut self) {
        self.version = self.version.wrapping_add(1);
    }

    pub(crate) fn get(&self, id: MessageId) -> Option<&Entry> {
        self.entries.get(&id)
    }

    /// Inserts a message at the back (normal put) or front (rollback
    /// requeue) of its priority band, indexing every property.
    // lint: custody(msg)
    pub(crate) fn insert(&mut self, msg: Message, front: bool) {
        let id = msg.id();
        // A rollback requeue returns a pending transactional get; the
        // pending copy is superseded by the live one.
        self.pending.remove(&id);
        let seq = if front {
            let s = self.next_front_seq;
            self.next_front_seq = self.next_front_seq.wrapping_sub(1);
            s
        } else {
            let s = self.next_back_seq;
            self.next_back_seq = self.next_back_seq.wrapping_add(1);
            s
        };
        let band = usize::from(msg.priority().level()).min(PRIORITY_BANDS - 1);
        if front {
            // A front insert is a rollback requeue: the message's earlier
            // life on this queue left stale band/index entries behind.
            // Scrub them first so a *live* id never appears twice (stale
            // ids of dead messages are fine — they prune lazily).
            self.bands[band].retain(|x| *x != id);
            self.bands[band].push_front(id);
        } else {
            self.bands[band].push_back(id);
        }
        if let Some(corr) = msg.correlation_id() {
            let ids = self.by_correlation.entry(corr.to_owned()).or_default();
            if front {
                ids.retain(|x| *x != id);
                ids.push_front(id);
            } else {
                ids.push_back(id);
            }
        }
        if self.index_properties {
            for (name, value) in msg.properties() {
                let ids = self
                    .by_property
                    .entry((name.to_owned(), value_band(value)))
                    .or_default();
                if front {
                    ids.retain(|x| *x != id);
                    ids.push_front(id);
                } else {
                    ids.push_back(id);
                }
            }
        }
        if let Some(expiry) = msg.expiry() {
            self.expiry_heap
                .push(std::cmp::Reverse((expiry.0, id.as_u128())));
        }
        self.entries.insert(id, Entry {
            msg: Arc::new(msg),
            seq,
        });
        self.version = self.version.wrapping_add(1);
    }

    /// Removes a message from the live map and its correlation index
    /// (band, property-index and heap entries go stale, pruned lazily).
    pub(crate) fn detach_arc(&mut self, id: MessageId) -> Option<Arc<Message>> {
        let entry = self.entries.remove(&id)?;
        if let Some(corr) = entry.msg.correlation_id() {
            if let Some(ids) = self.by_correlation.get_mut(corr) {
                ids.retain(|x| *x != id);
                if ids.is_empty() {
                    self.by_correlation.remove(corr);
                }
            }
        }
        Some(entry.msg)
    }

    /// Removes a message, handing back an owned copy.
    pub(crate) fn detach(&mut self, id: MessageId) -> Option<Message> {
        self.detach_arc(id).map(unshare)
    }

    /// Removes a message into the pending-get table: invisible to reads,
    /// but still part of checkpoint snapshots until finalized (commit /
    /// dead-letter) or reinserted (rollback).
    pub(crate) fn detach_pending(&mut self, id: MessageId) -> Option<Message> {
        let arc = self.detach_arc(id)?;
        self.pending.insert(id, arc.clone());
        Some(unshare(arc))
    }

    /// Drops a pending transactional get after its covering record
    /// (`TxCommit`, dead-letter) is durable.
    pub(crate) fn finalize_pending(&mut self, id: MessageId) {
        self.pending.remove(&id);
    }

    /// How many transactional gets are currently in flight.
    #[cfg(test)]
    pub(crate) fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The ids currently indexed under one equality constraint, or `None`
    /// when no live message carries that (name, value band). Correlation
    /// ids use the exact-match correlation index; other names use the
    /// value-band index. Buckets may contain stale ids and over-approximate
    /// (band collisions), never under-approximate.
    pub(crate) fn hint_bucket(&self, name: &str, value: &PropertyValue) -> Option<&VecDeque<MessageId>> {
        if name == "correlation_id" {
            // Correlation ids are strings; an equality against any other
            // type can never hold, which the caller maps to "no match".
            return value.as_str().and_then(|s| self.by_correlation.get(s));
        }
        self.by_property.get(&(name.to_owned(), value_band(value)))
    }

    /// Replaces one index bucket with its pruned survivors (empty deque
    /// removes the bucket). `correlation_id` routes to the correlation
    /// index like [`MessageStore::hint_bucket`].
    pub(crate) fn replace_bucket(
        &mut self,
        name: &str,
        value: &PropertyValue,
        ids: VecDeque<MessageId>,
    ) {
        if name == "correlation_id" {
            let Some(key) = value.as_str() else { return };
            if ids.is_empty() {
                self.by_correlation.remove(key);
            } else {
                self.by_correlation.insert(key.to_owned(), ids);
            }
            return;
        }
        let key = (name.to_owned(), value_band(value));
        if ids.is_empty() {
            self.by_property.remove(&key);
        } else {
            self.by_property.insert(key, ids);
        }
    }

    /// Pops ids whose recorded expiry is at or before `now`. Returned ids
    /// may be stale or re-stamped; the caller re-checks liveness and
    /// `Message::is_expired` before acting.
    pub(crate) fn ripe_expired(&mut self, now: Time) -> Vec<MessageId> {
        let mut ripe = Vec::new();
        while let Some(std::cmp::Reverse((at, id))) = self.expiry_heap.peek().copied() {
            if at > now.0 {
                break;
            }
            self.expiry_heap.pop();
            let id = MessageId::from_u128(id);
            if self.entries.contains_key(&id) {
                ripe.push(id);
            }
        }
        ripe
    }

    /// Live persistent messages in delivery order (priority, then FIFO),
    /// followed by persistent pending transactional gets — exactly the
    /// set a checkpoint snapshot must re-journal.
    pub(crate) fn snapshot_persistent(&self) -> Vec<Arc<Message>> {
        let mut out = Vec::new();
        for band in self.bands.iter().rev() {
            for id in band {
                if let Some(entry) = self.entries.get(id) {
                    if entry.msg.is_persistent() {
                        out.push(Arc::clone(&entry.msg));
                    }
                }
            }
        }
        for msg in self.pending.values() {
            if msg.is_persistent() {
                out.push(Arc::clone(msg));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Priority;

    fn msg(text: &str) -> Message {
        Message::text(text).build()
    }

    #[test]
    fn depth_tracks_insert_and_detach() {
        let mut s = MessageStore::new(true);
        let m = msg("a");
        let id = m.id();
        s.insert(m, false);
        assert_eq!(s.len(), 1);
        assert!(s.detach(id).is_some());
        assert!(s.detach(id).is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn version_bumps_on_insert() {
        let mut s = MessageStore::new(false);
        let v0 = s.version();
        s.insert(msg("a"), false);
        assert_ne!(s.version(), v0);
    }

    #[test]
    fn seq_orders_front_before_back() {
        let mut s = MessageStore::new(false);
        let back = msg("back");
        let front = msg("front");
        let (bid, fid) = (back.id(), front.id());
        s.insert(back, false);
        s.insert(front, true);
        let bseq = s.get(bid).map(|e| e.seq);
        let fseq = s.get(fid).map(|e| e.seq);
        assert!(fseq < bseq, "front insert must sort before back insert");
    }

    #[test]
    fn property_bucket_over_approximates_and_prunes() {
        let mut s = MessageStore::new(true);
        let m1 = Message::text("m1").property("k", 7i64).build();
        let m2 = Message::text("m2").property("k", 7.0f64).build();
        let (id1, id2) = (m1.id(), m2.id());
        s.insert(m1, false);
        s.insert(m2, false);
        // 7 and 7.0 compare equal in selectors, so they share a band.
        let bucket = s.hint_bucket("k", &PropertyValue::I64(7)).cloned();
        assert_eq!(bucket, Some(VecDeque::from(vec![id1, id2])));
        assert!(s.hint_bucket("k", &PropertyValue::I64(8)).is_none());
        s.detach(id1);
        // Stale id survives until a reader prunes the bucket.
        let pruned: VecDeque<MessageId> = s
            .hint_bucket("k", &PropertyValue::F64(7.0))
            .into_iter()
            .flatten()
            .copied()
            .filter(|id| s.get(*id).is_some())
            .collect();
        s.replace_bucket("k", &PropertyValue::F64(7.0), pruned);
        let bucket = s.hint_bucket("k", &PropertyValue::I64(7)).cloned();
        assert_eq!(bucket, Some(VecDeque::from(vec![id2])));
    }

    #[test]
    fn zero_bands_fold_signed_zero() {
        assert_eq!(
            value_band(&PropertyValue::F64(-0.0)),
            value_band(&PropertyValue::I64(0))
        );
        // Same number, different types: one band.
        assert_eq!(
            value_band(&PropertyValue::I64(5)),
            value_band(&PropertyValue::F64(5.0))
        );
        // Same bytes, different types: distinct bands.
        assert_ne!(
            value_band(&PropertyValue::Str("true".into())),
            value_band(&PropertyValue::Bool(true))
        );
    }

    #[test]
    fn pending_messages_hidden_but_snapshotted() {
        let mut s = MessageStore::new(true);
        let live = Message::text("live").persistent(true).build();
        let taken = Message::text("taken").persistent(true).build();
        let volatile = msg("volatile");
        let taken_id = taken.id();
        s.insert(live, false);
        s.insert(taken, false);
        s.insert(volatile, false);
        assert!(s.detach_pending(taken_id).is_some());
        assert_eq!(s.len(), 2, "pending get leaves the live map");
        assert_eq!(s.pending_len(), 1);
        let snap = s.snapshot_persistent();
        assert_eq!(snap.len(), 2, "snapshot = live persistent + pending");
        assert!(snap.iter().any(|m| m.id() == taken_id));
        s.finalize_pending(taken_id);
        assert_eq!(s.snapshot_persistent().len(), 1);
    }

    #[test]
    fn reinsert_clears_pending_copy() {
        let mut s = MessageStore::new(false);
        let m = Message::text("m").persistent(true).build();
        let id = m.id();
        s.insert(m, false);
        let back = s.detach_pending(id).expect("live");
        s.insert(back, true); // rollback requeue
        assert_eq!(s.pending_len(), 0);
        assert_eq!(s.snapshot_persistent().len(), 1);
    }

    #[test]
    fn ripe_expired_pops_in_order_and_skips_stale() {
        let mut s = MessageStore::new(false);
        let early = Message::text("early").ttl(simtime::Millis(5)).build();
        let late = Message::text("late").ttl(simtime::Millis(50)).build();
        let (early_id, late_id) = (early.id(), late.id());
        let mut e = early;
        e.stamp_enqueue(Time(0));
        let mut l = late;
        l.stamp_enqueue(Time(0));
        s.insert(e, false);
        s.insert(l, false);
        assert!(s.ripe_expired(Time(1)).is_empty());
        assert_eq!(s.ripe_expired(Time(10)), vec![early_id]);
        // Detached before ripening: not reported.
        s.detach(late_id);
        assert!(s.ripe_expired(Time(100)).is_empty());
    }

    #[test]
    fn snapshot_preserves_delivery_order() {
        let mut s = MessageStore::new(false);
        let low = Message::text("low")
            .priority(Priority::new(1))
            .persistent(true)
            .build();
        let high = Message::text("high")
            .priority(Priority::new(8))
            .persistent(true)
            .build();
        s.insert(low, false);
        s.insert(high, false);
        let snap = s.snapshot_persistent();
        assert_eq!(snap[0].payload_str(), Some("high"));
        assert_eq!(snap[1].payload_str(), Some("low"));
    }
}
