//! The observability subsystem: one [`Obs`] handle bundling the metrics
//! registry and the message-lifecycle trace log.
//!
//! Every [`crate::QueueManager`] owns an `Obs` (or shares one supplied via
//! [`crate::QueueManagerBuilder::obs`], so several managers in a simulated
//! distributed deployment report into a single registry and timeline). The
//! layers above reach it through `manager.obs()`:
//!
//! * `mq` registers queue and transaction counters, queue-depth gauges and
//!   journal-append latency at construction time;
//! * the [`crate::transport`] layer reports wire traffic as
//!   `mq.transport.*` (bytes, batches, reconnects, heartbeat misses,
//!   handshake failures, dedup drops, per-batch latency) and the simulated
//!   link's transfer fates as `mq.net.*`;
//! * `condmsg` adds send/fan-out/ack/verdict/compensation metrics and
//!   records the per-message lifecycle trace;
//! * `dsphere` adds sphere outcome metrics and sphere demarcation events.
//!
//! Hot paths only touch pre-registered atomic cells ([`crate::Counter`],
//! [`crate::Gauge`], [`crate::Histogram`]) — registration, with its map
//! inserts and allocation, happens once per component.

use std::sync::Arc;

use crate::stats::{MetricsRegistry, MetricsSnapshot};
use crate::trace::TraceLog;

/// Every metric name the workspace may register, with `*` standing for
/// an interpolated segment (queue names may themselves contain dots).
///
/// This is the single source of truth the `cond-lint` registry pass
/// checks every `counter`/`gauge`/`histogram`/`register_*` call site
/// against; a misspelled or undeclared name is a lint error carrying
/// both the emission site and this declaration.
// lint: registry metric-name
pub const METRIC_REGISTRY: &[&str] = &[
    // condmsg sender/evaluation pipeline.
    "cond.sent",
    "cond.fanout",
    "cond.pump.iterations",
    "cond.ack.read",
    "cond.ack.processed",
    "cond.ack.lag_ms",
    "cond.ack.batch_size",
    "cond.verdict.success",
    "cond.verdict.failure",
    "cond.verdict.timeout",
    "cond.comp.released",
    "cond.comp.consumed",
    "cond.notify.success",
    "cond.pending.depth",
    "cond.deferred.depth",
    "cond.eval.incremental_updates",
    "cond.eval.timer_fires",
    "cond.analyze.runs",
    "cond.analyze.warnings",
    "cond.analyze.rejected",
    // condmsg receiver.
    "cond.recv.originals",
    "cond.recv.read_acks",
    "cond.recv.processed_acks",
    "cond.recv.comp_delivered",
    "cond.recv.comp_deferred",
    "cond.recv.annihilated",
    // Dependency-spheres.
    "dsphere.begun",
    "dsphere.committed",
    "dsphere.aborted",
    "dsphere.active",
    // Per-queue cells.
    "mq.queue.*.enqueued",
    "mq.queue.*.dequeued",
    "mq.queue.*.expired",
    "mq.queue.*.redelivered",
    "mq.queue.*.dead_lettered",
    "mq.queue.*.browses",
    "mq.queue.*.depth",
    // Queue-manager cells.
    "mq.tx.committed",
    "mq.tx.rolled_back",
    "mq.forwarded",
    "mq.received_remote",
    // Journal.
    "mq.journal.append_micros",
    "mq.journal.appends",
    "mq.journal.fsyncs",
    "mq.journal.group_waits",
    "mq.journal.batch_size",
    // Relay federation.
    "mq.relay.delivered_local",
    "mq.relay.forwarded",
    "mq.relay.duplicates",
    "mq.relay.dead_lettered",
    "mq.relay.hops",
    // Simulated network link.
    "mq.net.attempts",
    "mq.net.delivered",
    "mq.net.dropped",
    "mq.net.refused",
    // TCP transport.
    "mq.transport.bytes_sent",
    "mq.transport.bytes_received",
    "mq.transport.batches_sent",
    "mq.transport.batches_received",
    "mq.transport.messages_sent",
    "mq.transport.messages_received",
    "mq.transport.connects",
    "mq.transport.reconnects",
    "mq.transport.handshake_failures",
    "mq.transport.heartbeats",
    "mq.transport.heartbeat_misses",
    "mq.transport.dedup_dropped",
    "mq.transport.batch_micros",
    // Pipelined reactor data plane.
    "mq.transport.acks_received",
    "mq.transport.send_stalls",
    "mq.transport.window_depth",
    "mq.transport.window_rollbacks",
    // Codec: full message encodes (the zero-copy send path caches the
    // wire image, so throughput tests assert one encode per message).
    "mq.codec.encodes",
];

/// The wire names of every [`crate::trace::TraceStage`], as rendered by
/// its `Display` impl (which is the registry sink for this kind).
// lint: registry trace-stage
pub const TRACE_STAGE_REGISTRY: &[&str] = &[
    "send",
    "fan-out",
    "read-ack",
    "process-ack",
    "verdict",
    "success-notify",
    "comp-released",
    "comp-consumed",
    "annihilated",
    "comp-delivered",
    "comp-deferred",
    "sphere-begin",
    "sphere-commit",
    "sphere-abort",
    "relay-forwarded",
    "relay-dead-lettered",
];

/// Every on-storage [`crate::journal::JournalRecord`] tag byte. The
/// record's wire encode/decode impls are the registry sinks; adding a
/// record variant without extending this table is a lint error.
// lint: registry journal-tag
pub const JOURNAL_TAG_REGISTRY: &[u8] = &[0, 1, 2, 3, 4, 5, 6, 7, 8];

/// Every transport frame-kind tag byte (`FrameKind::as_u8`/`from_u8`
/// are the sinks). Tag 0 is reserved and never valid on the wire.
// lint: registry frame-kind
pub const FRAME_KIND_REGISTRY: &[u8] = &[1, 2, 3, 4, 5, 6, 7];

/// Shared observability state: named metrics + lifecycle trace.
#[derive(Debug, Default)]
pub struct Obs {
    metrics: MetricsRegistry,
    trace: TraceLog,
}

impl Obs {
    /// Creates a fresh observability hub with an empty registry and an
    /// enabled trace log of default capacity.
    pub fn new() -> Arc<Obs> {
        Arc::new(Obs::default())
    }

    /// Creates a hub whose trace ring retains at most `trace_capacity`
    /// events.
    pub fn with_trace_capacity(trace_capacity: usize) -> Arc<Obs> {
        Arc::new(Obs {
            metrics: MetricsRegistry::new(),
            trace: TraceLog::with_capacity(trace_capacity),
        })
    }

    /// The named-metric registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The lifecycle trace log.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Convenience: a point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceStage;
    use simtime::Time;

    #[test]
    fn obs_bundles_metrics_and_trace() {
        let obs = Obs::new();
        obs.metrics().counter("x").incr();
        obs.trace()
            .record(Time(1), TraceStage::Send, Some(1), None, "");
        assert_eq!(obs.snapshot().counter("x"), 1);
        assert_eq!(obs.trace().len(), 1);
    }

    #[test]
    fn custom_trace_capacity() {
        let obs = Obs::with_trace_capacity(2);
        for i in 0..3 {
            obs.trace()
                .record(Time(i), TraceStage::Send, None, None, "");
        }
        assert_eq!(obs.trace().len(), 2);
        assert_eq!(obs.trace().dropped(), 1);
    }
}
