//! The observability subsystem: one [`Obs`] handle bundling the metrics
//! registry and the message-lifecycle trace log.
//!
//! Every [`crate::QueueManager`] owns an `Obs` (or shares one supplied via
//! [`crate::QueueManagerBuilder::obs`], so several managers in a simulated
//! distributed deployment report into a single registry and timeline). The
//! layers above reach it through `manager.obs()`:
//!
//! * `mq` registers queue and transaction counters, queue-depth gauges and
//!   journal-append latency at construction time;
//! * the [`crate::transport`] layer reports wire traffic as
//!   `mq.transport.*` (bytes, batches, reconnects, heartbeat misses,
//!   handshake failures, dedup drops, per-batch latency) and the simulated
//!   link's transfer fates as `mq.net.*`;
//! * `condmsg` adds send/fan-out/ack/verdict/compensation metrics and
//!   records the per-message lifecycle trace;
//! * `dsphere` adds sphere outcome metrics and sphere demarcation events.
//!
//! Hot paths only touch pre-registered atomic cells ([`crate::Counter`],
//! [`crate::Gauge`], [`crate::Histogram`]) — registration, with its map
//! inserts and allocation, happens once per component.

use std::sync::Arc;

use crate::stats::{MetricsRegistry, MetricsSnapshot};
use crate::trace::TraceLog;

/// Shared observability state: named metrics + lifecycle trace.
#[derive(Debug, Default)]
pub struct Obs {
    metrics: MetricsRegistry,
    trace: TraceLog,
}

impl Obs {
    /// Creates a fresh observability hub with an empty registry and an
    /// enabled trace log of default capacity.
    pub fn new() -> Arc<Obs> {
        Arc::new(Obs::default())
    }

    /// Creates a hub whose trace ring retains at most `trace_capacity`
    /// events.
    pub fn with_trace_capacity(trace_capacity: usize) -> Arc<Obs> {
        Arc::new(Obs {
            metrics: MetricsRegistry::new(),
            trace: TraceLog::with_capacity(trace_capacity),
        })
    }

    /// The named-metric registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The lifecycle trace log.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Convenience: a point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceStage;
    use simtime::Time;

    #[test]
    fn obs_bundles_metrics_and_trace() {
        let obs = Obs::new();
        obs.metrics().counter("x").incr();
        obs.trace()
            .record(Time(1), TraceStage::Send, Some(1), None, "");
        assert_eq!(obs.snapshot().counter("x"), 1);
        assert_eq!(obs.trace().len(), 1);
    }

    #[test]
    fn custom_trace_capacity() {
        let obs = Obs::with_trace_capacity(2);
        for i in 0..3 {
            obs.trace()
                .record(Time(i), TraceStage::Send, None, None, "");
        }
        assert_eq!(obs.trace().len(), 2);
        assert_eq!(obs.trace().dropped(), 1);
    }
}
