//! Relay federation: multi-hop routing of in-transit envelopes across a
//! cluster of queue managers.
//!
//! A single channel connects two managers; a *federation* is a graph of
//! such channels where no manager needs a direct channel to every other.
//! An envelope addressed to manager `C` may arrive at `B` first — `B`
//! must then act as a **relay**: re-resolve the destination through its
//! routing table (explicit route group or default next-hop route) and
//! re-enqueue the envelope on the matching outbound transmission queue.
//! This module is that relay decision, plus the two guarantees that make
//! multi-hop forwarding safe:
//!
//! * **Auditable custody handoff.** Accepting an in-transit envelope and
//!   re-enqueuing it downstream is journaled as one atomic
//!   [`JournalRecord::RelayCustody`] record — a crash between accept and
//!   re-enqueue rolls back to "never accepted", and the upstream
//!   sender's retry re-runs the relay decision. The record carries
//!   origin, destination and hop count, so the journal reads as a chain
//!   of custody.
//! * **Federation-wide exactly-once.** Every arriving envelope is
//!   checked against a manager-level sliding-window [`Deduper`] keyed by
//!   *(origin manager, message id)* — a key that is stable across hops,
//!   transports and sender retries, unlike the per-connection sequence
//!   numbers of any one channel. The window is reseeded from the journal
//!   on recovery, so a restart during a sender's retry cannot
//!   double-deliver.
//!
//! Loop prevention is a hop-count header ([`RELAY_HOPS_PROPERTY`])
//! stamped on each forward; exhausting it — or arriving with an expired
//! TTL, or addressing a manager no route covers — dead-letters the
//! envelope with a [`crate::DLQ_REASON_PROPERTY`] naming the relay
//! failure. Misaddressed envelopes are *never* accepted as local
//! delivery and never silently dropped.

use std::collections::{HashSet, VecDeque};

use crate::journal::JournalRecord;
use crate::message::{Message, MessageId};
use crate::qmgr::{QueueManager, DEAD_LETTER_QUEUE, DLQ_REASON_PROPERTY};
use crate::trace::TraceStage;
use crate::MqResult;

/// Property naming the queue manager that first wrapped the message for
/// transmission — the stable half of the federation-wide idempotency
/// key. Stamped once at the origin and preserved across every hop *and*
/// on final delivery (the audit trail that lets recovery rebuild dedup
/// keys from journaled messages).
pub const RELAY_ORIGIN_PROPERTY: &str = "sys.relay.origin";

/// Property counting custody handoffs an in-transit envelope has taken.
/// Absent means zero (a first-hop envelope); each relay forward
/// increments it, and exceeding the manager's `max_relay_hops`
/// dead-letters the envelope — a routing loop burns hops instead of
/// circulating forever.
pub const RELAY_HOPS_PROPERTY: &str = "sys.relay.hops";

/// Default ceiling on relay hops ([`crate::ManagerConfig::max_relay_hops`]).
pub const DEFAULT_MAX_RELAY_HOPS: u32 = 16;

/// Default sliding-window size of the manager-level delivery deduper
/// ([`crate::ManagerConfig::dedup_window`]).
pub const DEFAULT_DEDUP_WINDOW: usize = 16 * 1024;

/// What the relay decided to do with one arriving envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RelayOutcome {
    /// The envelope was addressed here and was delivered to a local
    /// queue (or dead-lettered by the unknown-queue path).
    DeliveredLocal,
    /// The envelope's idempotency key was already seen; it was dropped
    /// without any state change.
    Duplicate,
    /// The envelope was addressed elsewhere and was re-enqueued on the
    /// named outbound transmission queue.
    Forwarded(String),
    /// The envelope had no viable next hop (unknown destination manager,
    /// hop count exhausted, TTL expired) and was dead-lettered with the
    /// contained reason.
    DeadLettered(String),
}

/// FNV-1a over the origin-manager name: cheap, deterministic, and stable
/// across restarts — exactly what a journal-reseedable dedup key needs.
fn origin_hash(origin: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in origin.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Sliding-window deduplicator keyed by *(origin manager, message id)*.
///
/// The set answers "seen before?", the deque evicts FIFO once the window
/// is full. One instance lives per queue manager (not per connection):
/// every transport feeding the manager shares it, which is what makes
/// the exactly-once property hold across hops and reconnects.
#[derive(Debug)]
pub(crate) struct Deduper {
    window: usize,
    set: HashSet<(u64, MessageId)>,
    order: VecDeque<(u64, MessageId)>,
}

impl Deduper {
    /// Creates a deduper remembering the last `window` keys (min 1).
    pub(crate) fn new(window: usize) -> Deduper {
        let window = window.max(1);
        Deduper {
            window,
            set: HashSet::with_capacity(window.min(4096)),
            order: VecDeque::with_capacity(window.min(4096)),
        }
    }

    /// The federation-wide idempotency key of one message: the hash of
    /// its origin manager (empty string when it never crossed a channel)
    /// plus its id.
    pub(crate) fn key_of(msg: &Message) -> (u64, MessageId) {
        let origin = msg.str_property(RELAY_ORIGIN_PROPERTY).unwrap_or("");
        (origin_hash(origin), msg.id())
    }

    /// Whether `key` is inside the remembered window.
    pub(crate) fn seen(&self, key: &(u64, MessageId)) -> bool {
        self.set.contains(key)
    }

    /// Remembers `key`, evicting the oldest remembered key if full.
    pub(crate) fn record(&mut self, key: (u64, MessageId)) {
        if !self.set.insert(key) {
            return;
        }
        self.order.push_back(key);
        while self.order.len() > self.window {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
    }

    /// The remembered keys, oldest first — what a checkpoint snapshots so
    /// recovery can reseed the window even after the arrival records that
    /// built it have been truncated away.
    pub(crate) fn snapshot(&self) -> Vec<(u64, MessageId)> {
        self.order.iter().copied().collect()
    }

    /// Resizes the window, evicting oldest keys if it shrank.
    pub(crate) fn set_window(&mut self, window: usize) {
        self.window = window.max(1);
        while self.order.len() > self.window {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
    }
}

impl QueueManager {
    /// Accepts one envelope arriving from a channel transport: the single
    /// seam every transport converges on.
    ///
    /// The decision, in order:
    /// 1. **Dedup** — the *(origin, id)* key inside the window means this
    ///    is a sender retry of an already-accepted envelope; drop it with
    ///    no state change and report [`RelayOutcome::Duplicate`].
    /// 2. **Local** — addressed to this manager (or carrying no
    ///    destination-manager header): strip transmission headers and
    ///    deliver through [`QueueManager::deliver_from_channel`].
    /// 3. **Relay** — addressed elsewhere: forward toward the
    ///    destination or dead-letter with a reason
    ///    ([`QueueManager::relay_envelope`]).
    ///
    /// The key is recorded only after the accept succeeded, so a journal
    /// failure leaves the envelope unacked and retryable.
    ///
    /// # Errors
    ///
    /// [`crate::MqError::ManagerStopped`]; local put/journal failures.
    // lint: custody(msg, err-reverts)
    pub fn accept_envelope(&self, mut msg: Message) -> MqResult<RelayOutcome> {
        self.check_running()?;
        let key = Deduper::key_of(&msg);
        if self.delivery_dedup.lock().seen(&key) {
            self.relay_stats.duplicates.incr();
            // lint: custody-ok(duplicate delivery; the original was already accepted)
            return Ok(RelayOutcome::Duplicate);
        }
        let dest = msg
            .str_property(crate::qmgr::XMIT_DEST_MANAGER_PROPERTY)
            .map(str::to_owned);
        let outcome = match dest {
            Some(dest) if dest != self.name() => {
                self.stats().received_remote.incr();
                self.relay_envelope(msg, &dest)?
            }
            _ => {
                let queue = msg
                    .remove_property(crate::qmgr::XMIT_DEST_QUEUE_PROPERTY)
                    .and_then(|v| v.as_str().map(str::to_owned))
                    .unwrap_or_default();
                let hops = msg.i64_property(RELAY_HOPS_PROPERTY).unwrap_or(0).max(0);
                self.deliver_from_channel(&queue, msg)?;
                self.relay_stats.delivered_local.incr();
                self.relay_stats.hops.record(hops as u64);
                RelayOutcome::DeliveredLocal
            }
        };
        self.delivery_dedup.lock().record(key);
        Ok(outcome)
    }

    /// Resizes the manager-level delivery dedup window (used by TCP
    /// acceptors configured with an explicit window).
    pub fn set_dedup_window(&self, window: usize) {
        self.delivery_dedup.lock().set_window(window);
    }

    /// Relays one in-transit envelope addressed to `dest` (≠ self):
    /// checks hop budget and TTL, resolves the next hop through the
    /// routing table, journals the custody transfer as one atomic
    /// [`JournalRecord::RelayCustody`] record and re-enqueues the
    /// envelope on the outbound transmission queue. Any failure of those
    /// checks dead-letters the envelope with a reason — never a silent
    /// drop, never local acceptance.
    ///
    /// # Errors
    ///
    /// Journal append or local put failures.
    // lint: custody(msg, err-reverts)
    pub(crate) fn relay_envelope(&self, mut msg: Message, dest: &str) -> MqResult<RelayOutcome> {
        let hops = msg.i64_property(RELAY_HOPS_PROPERTY).unwrap_or(0).max(0) as u32;
        self.relay_stats.hops.record(u64::from(hops));
        let max_hops = self.config().max_relay_hops;
        if hops >= max_hops {
            return self.relay_dead_letter(
                msg,
                format!("relay hop count exhausted ({hops}/{max_hops}) en route to {dest}"),
            );
        }
        if msg.is_expired(self.clock().now()) {
            return self.relay_dead_letter(msg, format!("relay ttl expired en route to {dest}"));
        }
        let Some(xmit) = self.route_for_message(dest, msg.id()) else {
            return self.relay_dead_letter(msg, format!("no route to manager {dest}"));
        };
        let next_hops = hops + 1;
        msg.set_property(RELAY_HOPS_PROPERTY, i64::from(next_hops));
        let xmit_queue = self.queue(&xmit)?;
        // Gate read-held across [custody append + re-enqueue]: a checkpoint
        // cannot truncate the RelayCustody record while the envelope is
        // missing from its snapshot of the transmission queue.
        let gate = self.mutation_gate().read();
        if msg.is_persistent() && self.journal().is_durable() {
            let origin = msg
                .str_property(RELAY_ORIGIN_PROPERTY)
                .unwrap_or_default()
                .to_owned();
            // One record covers accept + re-enqueue: the atomic custody
            // handoff. Replay restores the envelope onto the
            // transmission queue, exactly as a committed Put would.
            self.journal().append(&JournalRecord::RelayCustody {
                xmit_queue: xmit.clone(),
                origin,
                dest_manager: dest.to_owned(),
                hops: next_hops,
                message: msg.clone(),
            })?;
        }
        self.relay_stats.forwarded.incr();
        self.stats().forwarded.incr();
        self.obs().trace().record(
            self.clock().now(),
            TraceStage::RelayForwarded,
            None,
            None,
            format!("dest={dest} via={xmit} hops={next_hops}"),
        );
        xmit_queue.put_committed(msg)?;
        drop(gate);
        xmit_queue.notify_arrival();
        Ok(RelayOutcome::Forwarded(xmit))
    }

    /// Dead-letters an envelope the relay cannot forward, stamping
    /// [`DLQ_REASON_PROPERTY`] with the relay failure. Transmission
    /// headers are left on the message so the DLQ entry shows where it
    /// was trying to go.
    // lint: custody(msg, err-reverts)
    fn relay_dead_letter(&self, mut msg: Message, reason: String) -> MqResult<RelayOutcome> {
        self.relay_stats.dead_lettered.incr();
        self.obs().trace().record(
            self.clock().now(),
            TraceStage::RelayDeadLettered,
            None,
            None,
            reason.clone(),
        );
        msg.set_property(DLQ_REASON_PROPERTY, reason.as_str());
        // The DLQ copy is an audit record: an already-expired envelope
        // must stay inspectable, not evaporate off the DLQ too.
        msg.clear_expiry();
        self.put(DEAD_LETTER_QUEUE, msg)?;
        Ok(RelayOutcome::DeadLettered(reason))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::MemJournal;
    use crate::message::QueueAddress;
    use crate::qmgr::XMIT_DEST_MANAGER_PROPERTY;
    use crate::queue::Wait;
    use crate::MqError;
    use simtime::{Clock, Millis, SimClock};
    use std::sync::Arc;

    fn manager(name: &str) -> Arc<QueueManager> {
        QueueManager::builder(name)
            .clock(SimClock::new())
            .build()
            .unwrap()
    }

    /// An in-transit envelope addressed to `mgr/queue`, as a sending
    /// manager's transmission queue would stage it.
    fn envelope(origin: &Arc<QueueManager>, mgr: &str, queue: &str, text: &str) -> Message {
        origin.wrap_for_transmission(
            &QueueAddress::new(mgr, queue),
            Message::text(text).persistent(true).build(),
        )
    }

    #[test]
    fn deduper_window_evicts_fifo() {
        let mut d = Deduper::new(2);
        let keys: Vec<(u64, MessageId)> = (0..3)
            .map(|i| (origin_hash("QM"), MessageId::from_u128(i)))
            .collect();
        d.record(keys[0]);
        d.record(keys[1]);
        assert!(d.seen(&keys[0]) && d.seen(&keys[1]));
        d.record(keys[2]);
        assert!(!d.seen(&keys[0]), "oldest key must be evicted");
        assert!(d.seen(&keys[1]) && d.seen(&keys[2]));
    }

    #[test]
    fn configured_window_overflow_forgets_oldest_retransmit() {
        // The window size flows from ManagerConfig into the delivery
        // deduper; once more distinct envelopes than the window have been
        // accepted, a (pathologically late) retransmit of the oldest one
        // is no longer recognized — the documented bound on the
        // exactly-once guarantee — while everything still inside the
        // window keeps deduplicating.
        let qm = QueueManager::builder("QM.B")
            .clock(SimClock::new())
            .config(crate::ManagerConfig {
                dedup_window: 3,
                ..crate::ManagerConfig::default()
            })
            .build()
            .unwrap();
        qm.create_queue("Q.IN").unwrap();
        let origin = manager("QM.A");
        let envs: Vec<Message> = (0..4)
            .map(|i| envelope(&origin, "QM.B", "Q.IN", &format!("m{i}")))
            .collect();
        for env in &envs {
            assert_eq!(
                qm.accept_envelope(env.clone()).unwrap(),
                RelayOutcome::DeliveredLocal
            );
        }
        // envs[0] has been pushed out of the 3-deep window by envs[1..4].
        assert_eq!(
            qm.accept_envelope(envs[0].clone()).unwrap(),
            RelayOutcome::DeliveredLocal,
            "evicted key is accepted again"
        );
        // envs[3] is still inside the window.
        assert_eq!(
            qm.accept_envelope(envs[3].clone()).unwrap(),
            RelayOutcome::Duplicate
        );
        // The re-accepted copy of envs[0] landed on the queue, where the
        // id-keyed store superseded the still-queued original — depth
        // stays 4, but a consumer that had already taken envs[0] would
        // have seen it twice.
        assert_eq!(qm.queue("Q.IN").unwrap().depth(), 4);
    }

    #[test]
    fn origin_hash_distinguishes_managers() {
        assert_ne!(origin_hash("QM.A"), origin_hash("QM.B"));
        assert_eq!(origin_hash("QM.A"), origin_hash("QM.A"));
    }

    #[test]
    fn local_envelope_is_delivered_and_retried_delivery_dedups() {
        let qm = manager("QM.B");
        qm.create_queue("Q.IN").unwrap();
        let origin = manager("QM.A");
        let env = envelope(&origin, "QM.B", "Q.IN", "hello");
        assert_eq!(
            qm.accept_envelope(env.clone()).unwrap(),
            RelayOutcome::DeliveredLocal
        );
        // The sender never saw the ack and retries the same envelope.
        assert_eq!(
            qm.accept_envelope(env).unwrap(),
            RelayOutcome::Duplicate
        );
        assert_eq!(qm.queue("Q.IN").unwrap().depth(), 1);
        assert_eq!(qm.relay_stats().duplicates.get(), 1);
        // Delivered message keeps the origin audit property.
        let got = qm.get("Q.IN", Wait::NoWait).unwrap().unwrap();
        assert_eq!(got.str_property(RELAY_ORIGIN_PROPERTY), Some("QM.A"));
        assert_eq!(got.str_property(XMIT_DEST_MANAGER_PROPERTY), None);
    }

    #[test]
    fn misaddressed_envelope_is_relayed_not_accepted_locally() {
        let qm = manager("QM.B");
        qm.create_queue("Q.IN").unwrap();
        qm.define_route("QM.C", "SYSTEM.XMIT.QM.C").unwrap();
        let origin = manager("QM.A");
        // Addressed to C but handed to B — B must forward, not deliver.
        let env = envelope(&origin, "QM.C", "Q.IN", "for C");
        let outcome = qm.accept_envelope(env).unwrap();
        assert_eq!(outcome, RelayOutcome::Forwarded("SYSTEM.XMIT.QM.C".into()));
        assert_eq!(qm.queue("Q.IN").unwrap().depth(), 0, "must not be local");
        let staged = qm.queue("SYSTEM.XMIT.QM.C").unwrap().browse();
        assert_eq!(staged.len(), 1);
        assert_eq!(staged[0].str_property(XMIT_DEST_MANAGER_PROPERTY), Some("QM.C"));
        assert_eq!(staged[0].i64_property(RELAY_HOPS_PROPERTY), Some(1));
        assert_eq!(qm.relay_stats().forwarded.get(), 1);
    }

    #[test]
    fn unknown_destination_manager_dead_letters_with_reason() {
        let qm = manager("QM.B");
        let origin = manager("QM.A");
        let env = envelope(&origin, "QM.NOWHERE", "Q", "lost?");
        let outcome = qm.accept_envelope(env).unwrap();
        assert!(matches!(outcome, RelayOutcome::DeadLettered(_)));
        let dlq = qm.get(DEAD_LETTER_QUEUE, Wait::NoWait).unwrap().unwrap();
        let reason = dlq.str_property(DLQ_REASON_PROPERTY).unwrap();
        assert!(reason.contains("no route to manager QM.NOWHERE"), "{reason}");
        // Audit headers survive on the DLQ entry.
        assert_eq!(dlq.str_property(XMIT_DEST_MANAGER_PROPERTY), Some("QM.NOWHERE"));
        assert_eq!(qm.relay_stats().dead_lettered.get(), 1);
    }

    #[test]
    fn hop_exhaustion_dead_letters_with_reason() {
        let qm = manager("QM.B");
        qm.define_route("QM.C", "SYSTEM.XMIT.QM.C").unwrap();
        let origin = manager("QM.A");
        let mut env = envelope(&origin, "QM.C", "Q", "looping");
        env.set_property(RELAY_HOPS_PROPERTY, i64::from(DEFAULT_MAX_RELAY_HOPS));
        let outcome = qm.accept_envelope(env).unwrap();
        assert!(matches!(outcome, RelayOutcome::DeadLettered(_)));
        let dlq = qm.get(DEAD_LETTER_QUEUE, Wait::NoWait).unwrap().unwrap();
        let reason = dlq.str_property(DLQ_REASON_PROPERTY).unwrap();
        assert!(reason.contains("hop count exhausted"), "{reason}");
    }

    #[test]
    fn expired_ttl_dead_letters_instead_of_forwarding() {
        let clock = SimClock::new();
        let qm = QueueManager::builder("QM.B")
            .clock(clock.clone())
            .build()
            .unwrap();
        qm.define_route("QM.C", "SYSTEM.XMIT.QM.C").unwrap();
        let origin = manager("QM.A");
        let mut env = envelope(&origin, "QM.C", "Q", "stale");
        env = {
            // Re-stamp with a TTL and advance past it.
            let addr = QueueAddress::new("QM.C", "Q");
            let inner = Message::text("stale")
                .persistent(true)
                .ttl(Millis(5))
                .build();
            let mut e = origin.wrap_for_transmission(&addr, inner);
            e.stamp_enqueue(clock.now());
            let _ = env;
            e
        };
        clock.advance(Millis(50));
        let outcome = qm.accept_envelope(env).unwrap();
        assert!(matches!(outcome, RelayOutcome::DeadLettered(_)));
        let dlq = qm.get(DEAD_LETTER_QUEUE, Wait::NoWait).unwrap().unwrap();
        let reason = dlq.str_property(DLQ_REASON_PROPERTY).unwrap();
        assert!(reason.contains("ttl expired"), "{reason}");
    }

    #[test]
    fn custody_transfer_is_journaled_and_survives_crash() {
        let journal = MemJournal::new();
        let clock = SimClock::new();
        let qm = QueueManager::builder("QM.B")
            .clock(clock.clone())
            .journal(journal.clone())
            .build()
            .unwrap();
        qm.define_route("QM.C", "SYSTEM.XMIT.QM.C").unwrap();
        let origin = manager("QM.A");
        let env = envelope(&origin, "QM.C", "Q.FAR", "persist me");
        let id = env.id();
        qm.accept_envelope(env.clone()).unwrap();
        qm.crash();
        let qm2 = QueueManager::builder("QM.B")
            .clock(clock)
            .journal(journal)
            .build()
            .unwrap();
        // The custody record restored the envelope on the xmit queue…
        let staged = qm2.queue("SYSTEM.XMIT.QM.C").unwrap().browse();
        assert_eq!(staged.len(), 1);
        assert_eq!(staged[0].id(), id);
        // …and reseeded the dedup window: the upstream retry is dropped.
        assert_eq!(qm2.accept_envelope(env).unwrap(), RelayOutcome::Duplicate);
        assert_eq!(qm2.queue("SYSTEM.XMIT.QM.C").unwrap().depth(), 1);
    }

    #[test]
    fn dedup_window_survives_checkpoint_truncation() {
        // A checkpoint truncates the custody records the dedup window was
        // rebuilt from; the CheckpointStart snapshot must carry the window
        // itself, or a post-crash retry would be double-delivered.
        let journal = MemJournal::new();
        let clock = SimClock::new();
        let qm = QueueManager::builder("QM.B")
            .clock(clock.clone())
            .journal(journal.clone())
            .build()
            .unwrap();
        qm.create_queue("Q.IN").unwrap();
        let origin = manager("QM.A");
        let env = envelope(&origin, "QM.B", "Q.IN", "once only");
        assert_eq!(
            qm.accept_envelope(env.clone()).unwrap(),
            RelayOutcome::DeliveredLocal
        );
        qm.checkpoint().unwrap();
        qm.crash();
        let qm2 = QueueManager::builder("QM.B")
            .clock(clock)
            .journal(journal)
            .build()
            .unwrap();
        assert_eq!(qm2.accept_envelope(env).unwrap(), RelayOutcome::Duplicate);
        assert_eq!(qm2.queue("Q.IN").unwrap().depth(), 1, "no double delivery");
    }

    #[test]
    fn default_route_forwards_unknown_managers() {
        let qm = manager("QM.B");
        qm.define_default_route(&["SYSTEM.XMIT.NEXT"]).unwrap();
        let origin = manager("QM.A");
        let env = envelope(&origin, "QM.Z", "Q", "via default");
        let outcome = qm.accept_envelope(env).unwrap();
        assert_eq!(outcome, RelayOutcome::Forwarded("SYSTEM.XMIT.NEXT".into()));
    }

    #[test]
    fn route_group_selection_is_deterministic_per_message() {
        let qm = manager("QM.B");
        qm.define_route_group("QM.C", &["XMIT.C1", "XMIT.C2"]).unwrap();
        let id = MessageId::generate();
        let first = qm.route_for_message("QM.C", id).unwrap();
        for _ in 0..10 {
            assert_eq!(qm.route_for_message("QM.C", id).unwrap(), first);
        }
        // And both targets are reachable across ids.
        let mut hit = std::collections::HashSet::new();
        for i in 0..64u128 {
            hit.insert(qm.route_for_message("QM.C", MessageId::from_u128(i)).unwrap());
        }
        assert_eq!(hit.len(), 2);
    }

    #[test]
    fn stopped_manager_rejects_envelopes() {
        let qm = manager("QM.B");
        qm.crash();
        let origin = manager("QM.A");
        let err = qm
            .accept_envelope(envelope(&origin, "QM.B", "Q", "x"))
            .unwrap_err();
        assert!(matches!(err, MqError::ManagerStopped(_)));
    }
}
