//! Message-lifecycle tracing: a bounded ring buffer of structured events.
//!
//! Each conditional message's journey — send, fan-out, acknowledgments,
//! evaluation verdict, and the outcome actions (success notification,
//! compensation release, annihilation) — is recorded as [`TraceEvent`]s
//! with simtime timestamps. The buffer is a fixed-capacity ring: old
//! events are dropped once capacity is reached, so long-running systems
//! keep a recent window without unbounded growth.
//!
//! The log lives in the `mq` crate (below the conditional layer) so every
//! layer sharing a queue manager — `mq` itself, `condmsg`, `dsphere` —
//! appends to the same timeline. Conditional message ids are carried as
//! their raw `u128` to keep this layer independent of the id type above.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;
use simtime::Time;

/// Default ring capacity (events retained).
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// The lifecycle stage a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TraceStage {
    /// A conditional message was sent (sender log written, paper §2.3).
    Send,
    /// One fan-out copy was staged for a destination leaf.
    FanOut,
    /// A read acknowledgment was consumed by the evaluation manager.
    ReadAck,
    /// A processed acknowledgment was consumed by the evaluation manager.
    ProcessAck,
    /// The evaluation reached a verdict (detail: `success` or
    /// `failure: <reason>`).
    Verdict,
    /// A success notification was staged for a destination.
    SuccessNotify,
    /// A parked compensation was released to its destination (failure
    /// outcome, paper §2.6).
    CompensationReleased,
    /// A parked compensation was consumed without delivery (success
    /// outcome).
    CompensationConsumed,
    /// An original/compensation pair annihilated on a destination queue.
    Annihilated,
    /// A compensation was delivered to the consuming application.
    CompensationDelivered,
    /// A compensation could not be resolved yet and was left parked.
    CompensationDeferred,
    /// A Dependency-Sphere began (detail: sphere context).
    SphereBegin,
    /// A Dependency-Sphere committed.
    SphereCommit,
    /// A Dependency-Sphere aborted (detail: reason).
    SphereAbort,
    /// A relay manager forwarded an in-transit envelope toward its
    /// destination manager (detail: `dest=<mgr> via=<xmit queue> hops=<n>`).
    RelayForwarded,
    /// A relay manager dead-lettered an in-transit envelope it could not
    /// forward (detail: the DLQ reason).
    RelayDeadLettered,
}

impl TraceStage {
    /// Every stage, for name lookups and seen-mask iteration.
    pub const ALL: [TraceStage; 16] = [
        TraceStage::Send,
        TraceStage::FanOut,
        TraceStage::ReadAck,
        TraceStage::ProcessAck,
        TraceStage::Verdict,
        TraceStage::SuccessNotify,
        TraceStage::CompensationReleased,
        TraceStage::CompensationConsumed,
        TraceStage::Annihilated,
        TraceStage::CompensationDelivered,
        TraceStage::CompensationDeferred,
        TraceStage::SphereBegin,
        TraceStage::SphereCommit,
        TraceStage::SphereAbort,
        TraceStage::RelayForwarded,
        TraceStage::RelayDeadLettered,
    ];
}

// lint: registry-sink trace-stage
impl fmt::Display for TraceStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceStage::Send => "send",
            TraceStage::FanOut => "fan-out",
            TraceStage::ReadAck => "read-ack",
            TraceStage::ProcessAck => "process-ack",
            TraceStage::Verdict => "verdict",
            TraceStage::SuccessNotify => "success-notify",
            TraceStage::CompensationReleased => "comp-released",
            TraceStage::CompensationConsumed => "comp-consumed",
            TraceStage::Annihilated => "annihilated",
            TraceStage::CompensationDelivered => "comp-delivered",
            TraceStage::CompensationDeferred => "comp-deferred",
            TraceStage::SphereBegin => "sphere-begin",
            TraceStage::SphereCommit => "sphere-commit",
            TraceStage::SphereAbort => "sphere-abort",
            TraceStage::RelayForwarded => "relay-forwarded",
            TraceStage::RelayDeadLettered => "relay-dead-lettered",
        };
        f.write_str(s)
    }
}

/// One recorded lifecycle event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (total order across the whole log).
    pub seq: u64,
    /// Simtime timestamp when the event was recorded.
    pub at: Time,
    /// The lifecycle stage.
    pub stage: TraceStage,
    /// The conditional message this event belongs to, if any.
    pub cond_id: Option<u128>,
    /// The destination leaf index, for per-leaf stages.
    pub leaf: Option<u32>,
    /// Free-form detail (destination queue, verdict reason, …).
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] t={} {}", self.seq, self.at.as_millis(), self.stage)?;
        if let Some(id) = self.cond_id {
            write!(f, " cond={id:032x}")?;
        }
        if let Some(leaf) = self.leaf {
            write!(f, " leaf={leaf}")?;
        }
        if !self.detail.is_empty() {
            write!(f, " {}", self.detail)?;
        }
        Ok(())
    }
}

/// Bounded ring buffer of [`TraceEvent`]s.
///
/// Recording takes one short mutex hold; when tracing is disabled
/// ([`TraceLog::set_enabled`]) recording is a single atomic load and
/// nothing is allocated, so the log can stay wired in on hot paths.
pub struct TraceLog {
    capacity: usize,
    enabled: AtomicBool,
    seq: AtomicU64,
    dropped: AtomicU64,
    /// Bitmask of every stage ever recorded — survives ring eviction, so
    /// "did stage X happen at all?" stays answerable after millions of
    /// events have rolled through a 4k ring.
    seen: AtomicU64,
    events: Mutex<VecDeque<TraceEvent>>,
}

/// Stable bit position for the seen-stages mask.
fn stage_bit(stage: TraceStage) -> u64 {
    let shift = match stage {
        TraceStage::Send => 0,
        TraceStage::FanOut => 1,
        TraceStage::ReadAck => 2,
        TraceStage::ProcessAck => 3,
        TraceStage::Verdict => 4,
        TraceStage::SuccessNotify => 5,
        TraceStage::CompensationReleased => 6,
        TraceStage::CompensationConsumed => 7,
        TraceStage::Annihilated => 8,
        TraceStage::CompensationDelivered => 9,
        TraceStage::CompensationDeferred => 10,
        TraceStage::SphereBegin => 11,
        TraceStage::SphereCommit => 12,
        TraceStage::SphereAbort => 13,
        TraceStage::RelayForwarded => 14,
        TraceStage::RelayDeadLettered => 15,
    };
    1_u64 << shift
}

impl fmt::Debug for TraceLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceLog")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Default for TraceLog {
    fn default() -> TraceLog {
        TraceLog::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceLog {
    /// Creates an enabled log retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> TraceLog {
        TraceLog {
            capacity: capacity.max(1),
            enabled: AtomicBool::new(true),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            seen: AtomicU64::new(0),
            events: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1024))),
        }
    }

    /// Whether `stage` has ever been recorded on this log, regardless of
    /// whether its events are still retained in the ring.
    pub fn stage_seen(&self, stage: TraceStage) -> bool {
        self.seen.load(Ordering::Relaxed) & stage_bit(stage) != 0
    }

    /// Enables or disables recording (disabled recording is a no-op).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records an event. `detail` may be empty.
    pub fn record(
        &self,
        at: Time,
        stage: TraceStage,
        cond_id: Option<u128>,
        leaf: Option<u32>,
        detail: impl Into<String>,
    ) {
        if !self.is_enabled() {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.seen.fetch_or(stage_bit(stage), Ordering::Relaxed);
        let event = TraceEvent {
            seq,
            at,
            stage,
            cond_id,
            leaf,
            detail: detail.into(),
        };
        let mut events = self.events.lock();
        if events.len() == self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }

    /// Copies all retained events in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().iter().cloned().collect()
    }

    /// Copies the retained events belonging to one conditional message, in
    /// recording order.
    pub fn events_for(&self, cond_id: u128) -> Vec<TraceEvent> {
        self.events
            .lock()
            .iter()
            .filter(|e| e.cond_id == Some(cond_id))
            .cloned()
            .collect()
    }

    /// The stages of one conditional message's events, in order — the
    /// compact form lifecycle assertions use.
    pub fn stages_for(&self, cond_id: u128) -> Vec<TraceStage> {
        self.events
            .lock()
            .iter()
            .filter(|e| e.cond_id == Some(cond_id))
            .map(|e| e.stage)
            .collect()
    }

    /// Discards all retained events (sequence numbers keep increasing).
    pub fn clear(&self) {
        self.events.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_sequence_numbers() {
        let log = TraceLog::with_capacity(16);
        log.record(Time(1), TraceStage::Send, Some(7), None, "");
        log.record(Time(2), TraceStage::FanOut, Some(7), Some(0), "Q.A");
        log.record(Time(3), TraceStage::Verdict, Some(7), None, "success");
        let events = log.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[2].seq, 2);
        assert_eq!(
            log.stages_for(7),
            vec![TraceStage::Send, TraceStage::FanOut, TraceStage::Verdict]
        );
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let log = TraceLog::with_capacity(3);
        for i in 0..5u64 {
            log.record(Time(i), TraceStage::Send, Some(u128::from(i)), None, "");
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let events = log.events();
        assert_eq!(events[0].cond_id, Some(2));
        assert_eq!(events[2].cond_id, Some(4));
        // Sequence numbers are global, not per-ring-slot.
        assert_eq!(events[2].seq, 4);
    }

    #[test]
    fn filters_by_cond_id() {
        let log = TraceLog::default();
        log.record(Time(0), TraceStage::Send, Some(1), None, "");
        log.record(Time(0), TraceStage::Send, Some(2), None, "");
        log.record(Time(1), TraceStage::Verdict, Some(1), None, "success");
        log.record(Time(1), TraceStage::SphereBegin, None, None, "");
        assert_eq!(log.events_for(1).len(), 2);
        assert_eq!(log.events_for(2).len(), 1);
        assert_eq!(log.events_for(9).len(), 0);
        assert_eq!(log.events().len(), 4);
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = TraceLog::default();
        log.set_enabled(false);
        log.record(Time(0), TraceStage::Send, Some(1), None, "");
        assert!(log.is_empty());
        assert!(!log.is_enabled());
        log.set_enabled(true);
        log.record(Time(0), TraceStage::Send, Some(1), None, "");
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn clear_keeps_sequence_monotone() {
        let log = TraceLog::default();
        log.record(Time(0), TraceStage::Send, None, None, "");
        log.clear();
        log.record(Time(1), TraceStage::Send, None, None, "");
        let events = log.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].seq, 1);
    }

    #[test]
    fn display_renders_key_fields() {
        let log = TraceLog::default();
        log.record(Time(5), TraceStage::FanOut, Some(0xAB), Some(2), "Q.B");
        let line = log.events()[0].to_string();
        assert!(line.contains("fan-out"), "{line}");
        assert!(line.contains("t=5"), "{line}");
        assert!(line.contains("leaf=2"), "{line}");
        assert!(line.contains("Q.B"), "{line}");
    }

    #[test]
    fn concurrent_recording_is_lossless_up_to_capacity() {
        let log = std::sync::Arc::new(TraceLog::with_capacity(10_000));
        let handles: Vec<_> = (0..4u32)
            .map(|t| {
                let log = log.clone();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        log.record(
                            Time(i),
                            TraceStage::Send,
                            Some(u128::from(t)),
                            None,
                            "",
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 2000);
        assert_eq!(log.dropped(), 0);
        for t in 0..4u128 {
            assert_eq!(log.events_for(t).len(), 500);
        }
        // Sequence numbers are unique.
        let mut seqs: Vec<u64> = log.events().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 2000);
    }

    #[test]
    fn stage_seen_survives_ring_eviction() {
        let log = TraceLog::with_capacity(2);
        assert!(!log.stage_seen(TraceStage::Verdict));
        log.record(Time(0), TraceStage::Verdict, None, None, "");
        // Flood the ring so the verdict event itself is evicted.
        for i in 0..10 {
            log.record(Time(i), TraceStage::Annihilated, None, None, "");
        }
        assert!(log.events().iter().all(|e| e.stage != TraceStage::Verdict));
        assert!(log.stage_seen(TraceStage::Verdict));
        assert!(log.stage_seen(TraceStage::Annihilated));
        assert!(!log.stage_seen(TraceStage::SphereCommit));
    }

    #[test]
    fn all_lists_every_stage_exactly_once() {
        let mut names: Vec<String> = TraceStage::ALL.iter().map(|s| s.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), TraceStage::ALL.len());
        // The seen-mask bit assignment is injective.
        let mut bits: Vec<u64> = TraceStage::ALL.iter().map(|s| stage_bit(*s)).collect();
        bits.sort_unstable();
        bits.dedup();
        assert_eq!(bits.len(), TraceStage::ALL.len());
    }
}
