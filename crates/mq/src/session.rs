//! Transacted sessions: all-or-nothing groups of gets and puts.
//!
//! These are the "messaging transactions" the paper's receiver side relies
//! on (§2.4): a receiver reads a message *inside a transaction*, processes
//! it, and possibly stages reply/acknowledgment puts; if the transaction
//! rolls back, the consumed message returns to its queue (with a redelivery
//! count, dead-lettering past the backout threshold) and none of the staged
//! puts become visible. Commit makes everything visible atomically and
//! writes a single `TxCommit` journal record so crash recovery agrees.

use std::sync::Arc;

use crate::error::{MqError, MqResult};
use crate::journal::JournalRecord;
use crate::message::{Message, QueueAddress};
use crate::qmgr::QueueManager;
use crate::queue::{Queue, Wait};
use crate::selector::Selector;

struct TxState {
    /// Local-queue puts staged until commit (queue name, message).
    staged_puts: Vec<(String, Message)>,
    /// Messages consumed from queues, invisible to other consumers,
    /// returned on rollback.
    gets: Vec<(Arc<Queue>, Message)>,
}

/// A session against one queue manager, optionally transacted.
///
/// Outside a transaction, operations behave exactly like the corresponding
/// [`QueueManager`] methods. Inside one ([`Session::begin`]), puts are
/// staged and gets are provisional until [`Session::commit`].
///
/// Dropping a session with an active transaction rolls it back.
///
/// # Examples
///
/// ```
/// use mq::{Message, QueueManager, Wait};
///
/// let qm = QueueManager::builder("QM1").build()?;
/// qm.create_queue("IN")?;
/// qm.create_queue("OUT")?;
/// qm.put("IN", Message::text("work").build())?;
///
/// let mut session = qm.session();
/// session.begin()?;
/// let work = session.get("IN", Wait::NoWait)?.expect("message staged");
/// session.put("OUT", Message::text("done").build())?;
/// session.commit()?; // consume + reply atomically
/// # Ok::<(), mq::MqError>(())
/// ```
pub struct Session {
    manager: Arc<QueueManager>,
    tx: Option<TxState>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("manager", &self.manager.name())
            .field("in_tx", &self.in_transaction())
            .finish()
    }
}

impl Session {
    pub(crate) fn new(manager: Arc<QueueManager>) -> Session {
        Session { manager, tx: None }
    }

    /// The owning queue manager.
    pub fn manager(&self) -> &Arc<QueueManager> {
        &self.manager
    }

    /// Whether a transaction is active.
    pub fn in_transaction(&self) -> bool {
        self.tx.is_some()
    }

    /// Starts a transaction.
    ///
    /// # Errors
    ///
    /// [`MqError::TransactionActive`] if one is already active.
    pub fn begin(&mut self) -> MqResult<()> {
        if self.tx.is_some() {
            return Err(MqError::TransactionActive);
        }
        self.tx = Some(TxState {
            staged_puts: Vec::new(),
            gets: Vec::new(),
        });
        Ok(())
    }

    /// Commits the active transaction: journals one `TxCommit` record, then
    /// makes all staged puts visible and finalizes all gets.
    ///
    /// # Errors
    ///
    /// [`MqError::NoTransaction`] without an active transaction; journal
    /// failures abort the commit (state rolls back).
    pub fn commit(&mut self) -> MqResult<()> {
        let tx = self.tx.take().ok_or(MqError::NoTransaction)?;
        // Mutation gate read-held across [TxCommit append + applying its
        // effects]: a checkpoint can never snapshot half a transaction, nor
        // truncate the TxCommit record while its effects are missing.
        let gate = self.manager.mutation_gate().read();
        if self.manager.journal().is_durable() {
            let puts: Vec<_> = tx
                .staged_puts
                .iter()
                .filter(|(_, m)| m.is_persistent())
                .cloned()
                .collect();
            let gets: Vec<_> = tx
                .gets
                .iter()
                .filter(|(_, m)| m.is_persistent())
                .map(|(q, m)| (q.name().to_owned(), m.id()))
                .collect();
            if !puts.is_empty() || !gets.is_empty() {
                let record = JournalRecord::TxCommit { puts, gets };
                let started = std::time::Instant::now();
                let appended = self.manager.journal().append(&record);
                self.manager
                    .stats()
                    .journal_append_micros
                    .record_duration(started.elapsed());
                if let Err(e) = appended {
                    // Commit did not happen: put the transaction back so
                    // the caller can retry or roll back explicitly.
                    self.tx = Some(tx);
                    return Err(e);
                }
            }
        }
        let mut to_notify = Vec::new();
        let mut orphaned = Vec::new();
        for (queue_name, msg) in tx.staged_puts {
            // Queue was validated at stage time; tolerate deletion races by
            // dead-lettering rather than losing the message.
            match self.manager.queue(&queue_name) {
                Ok(q) => {
                    q.put_committed(msg)?;
                    to_notify.push(q);
                }
                Err(_) => orphaned.push((queue_name, msg)),
            }
        }
        for (queue, msg) in tx.gets {
            // The TxCommit record is now the durable cover for this
            // consumption: release the pending-get hold checkpoints honor.
            queue.finalize_pending(msg.id());
        }
        drop(gate);
        // Outside the gate: the unknown-queue path journals and gates its
        // own records, and the gate must never be held re-entrantly.
        for (queue_name, msg) in orphaned {
            self.manager
                .deliver_from_channel(&queue_name, msg)
                .unwrap_or(());
        }
        // Wake consumers and watchers only after the gate is released:
        // watcher callbacks may start transactions of their own.
        for q in to_notify {
            q.notify_arrival();
        }
        self.manager.stats().tx_committed.incr();
        self.manager.maybe_checkpoint()?;
        Ok(())
    }

    /// Rolls back the active transaction: staged puts are discarded and
    /// consumed messages return to the *front* of their queues with an
    /// incremented redelivery count. Messages past the manager's backout
    /// threshold are dead-lettered instead of redelivered.
    ///
    /// # Errors
    ///
    /// [`MqError::NoTransaction`] without an active transaction.
    pub fn rollback(&mut self) -> MqResult<()> {
        self.rollback_inner(true)
    }

    /// Rolls back like [`Session::rollback`] but *without* incrementing
    /// redelivery counts or dead-lettering.
    ///
    /// For infrastructure consumers (channel movers, the conditional
    /// messaging system's internal daemons) whose retries are part of normal
    /// operation and must not consume the application's backout budget.
    ///
    /// # Errors
    ///
    /// [`MqError::NoTransaction`] without an active transaction.
    pub fn rollback_for_retry(&mut self) -> MqResult<()> {
        self.rollback_inner(false)
    }

    fn rollback_inner(&mut self, bump: bool) -> MqResult<()> {
        let tx = self.tx.take().ok_or(MqError::NoTransaction)?;
        let threshold = self.manager.config().backout_threshold;
        // Requeue in reverse consumption order so front-insertion restores
        // the original FIFO order.
        for (queue, msg) in tx.gets.into_iter().rev() {
            if bump && msg.redelivery_count() + 1 > threshold {
                // Poison message: route to the DLQ.
                self.manager
                    .dead_letter(queue.name(), msg, "backout threshold exceeded")?;
            } else {
                queue.requeue_front(msg, bump);
            }
        }
        self.manager.stats().tx_rolled_back.incr();
        Ok(())
    }

    /// Enqueues a message on a local queue (staged if a transaction is
    /// active).
    ///
    /// # Errors
    ///
    /// [`MqError::QueueNotFound`], [`MqError::QueueFull`] (checked at stage
    /// time), [`MqError::MessageTooLarge`], journal failures.
    pub fn put(&mut self, queue: &str, msg: Message) -> MqResult<()> {
        match &mut self.tx {
            None => self.manager.put(queue, msg),
            Some(tx) => {
                // Validate destination and limits now so commit cannot fail.
                let q = self.manager.queue(queue)?;
                if let Some(max) = self.manager.config().max_message_size {
                    if msg.payload().len() > max {
                        return Err(MqError::MessageTooLarge {
                            size: msg.payload().len(),
                            max,
                        });
                    }
                }
                let _ = q;
                tx.staged_puts.push((queue.to_owned(), msg));
                Ok(())
            }
        }
    }

    /// Enqueues a message addressed by `manager/queue`; remote addresses are
    /// staged onto the route's transmission queue, so remote puts are
    /// transactional locally (standard store-and-forward semantics).
    ///
    /// # Errors
    ///
    /// [`MqError::NoRoute`] plus local put errors.
    pub fn put_to(&mut self, addr: &QueueAddress, msg: Message) -> MqResult<()> {
        if addr.manager == self.manager.name() {
            return self.put(&addr.queue, msg);
        }
        let xmit = self
            .manager
            .route_for_message(&addr.manager, msg.id())
            .ok_or_else(|| crate::MqError::NoRoute(addr.manager.clone()))?;
        let envelope = self.manager.wrap_for_transmission(addr, msg);
        self.manager.stats().forwarded.incr();
        self.put(&xmit, envelope)
    }

    /// Consumes a message (provisionally, if a transaction is active).
    ///
    /// # Errors
    ///
    /// [`MqError::QueueNotFound`]; [`MqError::ManagerStopped`] if the
    /// manager crashes while waiting.
    pub fn get(&mut self, queue: &str, wait: Wait) -> MqResult<Option<Message>> {
        self.get_inner(queue, None, wait)
    }

    /// Consumes the first message matching `selector`.
    ///
    /// # Errors
    ///
    /// Same as [`Session::get`].
    pub fn get_selected(
        &mut self,
        queue: &str,
        selector: &Selector,
        wait: Wait,
    ) -> MqResult<Option<Message>> {
        self.get_inner(queue, Some(selector), wait)
    }

    /// Consumes the oldest message with the given correlation id
    /// (provisionally, if a transaction is active), using the queue's
    /// correlation index.
    ///
    /// # Errors
    ///
    /// Same as [`Session::get`].
    pub fn get_by_correlation(
        &mut self,
        queue: &str,
        corr: &str,
        wait: Wait,
    ) -> MqResult<Option<Message>> {
        let q = self.manager.queue(queue)?;
        match &mut self.tx {
            None => q.take_by_correlation_blocking(corr, wait, true),
            Some(tx) => {
                let msg = q.take_by_correlation_blocking(corr, wait, false)?;
                if let Some(msg) = msg.clone() {
                    tx.gets.push((q, msg));
                }
                Ok(msg)
            }
        }
    }

    fn get_inner(
        &mut self,
        queue: &str,
        selector: Option<&Selector>,
        wait: Wait,
    ) -> MqResult<Option<Message>> {
        let q = self.manager.queue(queue)?;
        match &mut self.tx {
            None => q.take_blocking(selector, wait, true),
            Some(tx) => {
                // Journal nothing yet: the TxCommit record covers the get.
                let msg = q.take_blocking(selector, wait, false)?;
                if let Some(msg) = msg.clone() {
                    tx.gets.push((q, msg));
                }
                Ok(msg)
            }
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if self.tx.is_some() {
            // Best-effort rollback; destructors must not fail (C-DTOR-FAIL).
            let _ = self.rollback();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::MemJournal;
    use crate::qmgr::{ManagerConfig, DEAD_LETTER_QUEUE, DLQ_REASON_PROPERTY};
    use simtime::SimClock;

    fn setup() -> (Arc<MemJournal>, Arc<QueueManager>) {
        let journal = MemJournal::new();
        let qm = QueueManager::builder("QM1")
            .clock(SimClock::new())
            .journal(journal.clone())
            .build()
            .unwrap();
        qm.create_queue("Q").unwrap();
        qm.create_queue("OUT").unwrap();
        (journal, qm)
    }

    #[test]
    fn non_transacted_session_is_passthrough() {
        let (_j, qm) = setup();
        let mut s = qm.session();
        s.put("Q", Message::text("a").build()).unwrap();
        assert_eq!(qm.queue("Q").unwrap().depth(), 1);
        let got = s.get("Q", Wait::NoWait).unwrap().unwrap();
        assert_eq!(got.payload_str(), Some("a"));
    }

    #[test]
    fn staged_puts_invisible_until_commit() {
        let (_j, qm) = setup();
        let mut s = qm.session();
        s.begin().unwrap();
        s.put("Q", Message::text("staged").build()).unwrap();
        assert_eq!(qm.queue("Q").unwrap().depth(), 0, "put staged, not visible");
        s.commit().unwrap();
        assert_eq!(qm.queue("Q").unwrap().depth(), 1);
        assert_eq!(qm.stats().tx_committed.get(), 1);
    }

    #[test]
    fn rollback_discards_staged_puts() {
        let (_j, qm) = setup();
        let mut s = qm.session();
        s.begin().unwrap();
        s.put("Q", Message::text("staged").build()).unwrap();
        s.rollback().unwrap();
        assert_eq!(qm.queue("Q").unwrap().depth(), 0);
        assert_eq!(qm.stats().tx_rolled_back.get(), 1);
    }

    #[test]
    fn transactional_get_is_invisible_and_rollback_requeues() {
        let (_j, qm) = setup();
        qm.put("Q", Message::text("m").build()).unwrap();
        let mut s = qm.session();
        s.begin().unwrap();
        let got = s.get("Q", Wait::NoWait).unwrap().unwrap();
        assert_eq!(got.payload_str(), Some("m"));
        assert_eq!(qm.queue("Q").unwrap().depth(), 0, "in-flight, not on queue");
        // Another consumer sees nothing.
        assert!(qm.get("Q", Wait::NoWait).unwrap().is_none());
        s.rollback().unwrap();
        let back = qm.get("Q", Wait::NoWait).unwrap().unwrap();
        assert_eq!(back.payload_str(), Some("m"));
        assert_eq!(back.redelivery_count(), 1);
    }

    #[test]
    fn commit_consumes_get_permanently() {
        let (_j, qm) = setup();
        qm.put("Q", Message::text("m").build()).unwrap();
        let mut s = qm.session();
        s.begin().unwrap();
        s.get("Q", Wait::NoWait).unwrap().unwrap();
        s.commit().unwrap();
        assert!(qm.get("Q", Wait::NoWait).unwrap().is_none());
    }

    #[test]
    fn get_then_put_reply_is_atomic() {
        let (_j, qm) = setup();
        qm.put("Q", Message::text("req").build()).unwrap();
        let mut s = qm.session();
        s.begin().unwrap();
        let req = s.get("Q", Wait::NoWait).unwrap().unwrap();
        s.put(
            "OUT",
            Message::text(format!("reply-to-{}", req.payload_str().unwrap())).build(),
        )
        .unwrap();
        assert_eq!(qm.queue("OUT").unwrap().depth(), 0);
        s.commit().unwrap();
        assert_eq!(qm.queue("OUT").unwrap().depth(), 1);
        assert_eq!(qm.queue("Q").unwrap().depth(), 0);
    }

    #[test]
    fn begin_twice_and_commit_without_begin_error() {
        let (_j, qm) = setup();
        let mut s = qm.session();
        s.begin().unwrap();
        assert!(matches!(s.begin(), Err(MqError::TransactionActive)));
        s.rollback().unwrap();
        assert!(matches!(s.commit(), Err(MqError::NoTransaction)));
        assert!(matches!(s.rollback(), Err(MqError::NoTransaction)));
    }

    #[test]
    fn drop_with_active_tx_rolls_back() {
        let (_j, qm) = setup();
        qm.put("Q", Message::text("m").build()).unwrap();
        {
            let mut s = qm.session();
            s.begin().unwrap();
            s.get("Q", Wait::NoWait).unwrap().unwrap();
            // dropped without commit
        }
        assert_eq!(qm.queue("Q").unwrap().depth(), 1);
        assert_eq!(qm.stats().tx_rolled_back.get(), 1);
    }

    #[test]
    fn repeated_rollback_dead_letters_poison_message() {
        let journal = MemJournal::new();
        let qm = QueueManager::builder("QM1")
            .journal(journal)
            .config(ManagerConfig {
                backout_threshold: 2,
                ..ManagerConfig::default()
            })
            .build()
            .unwrap();
        qm.create_queue("Q").unwrap();
        qm.put("Q", Message::text("poison").persistent(true).build())
            .unwrap();
        for _ in 0..3 {
            let mut s = qm.session();
            s.begin().unwrap();
            let got = s.get("Q", Wait::NoWait).unwrap();
            if got.is_none() {
                break;
            }
            s.rollback().unwrap();
        }
        assert_eq!(qm.queue("Q").unwrap().depth(), 0, "message removed from Q");
        let dlq = qm.get(DEAD_LETTER_QUEUE, Wait::NoWait).unwrap().unwrap();
        assert_eq!(dlq.payload_str(), Some("poison"));
        assert!(dlq.str_property(DLQ_REASON_PROPERTY).is_some());
    }

    #[test]
    fn committed_transaction_survives_crash() {
        let (journal, qm) = setup();
        qm.put("Q", Message::text("in").persistent(true).build())
            .unwrap();
        let mut s = qm.session();
        s.begin().unwrap();
        s.get("Q", Wait::NoWait).unwrap().unwrap();
        s.put("OUT", Message::text("out").persistent(true).build())
            .unwrap();
        s.commit().unwrap();
        qm.crash();
        let qm2 = QueueManager::builder("QM1")
            .journal(journal)
            .build()
            .unwrap();
        assert_eq!(qm2.queue("Q").unwrap().depth(), 0);
        assert_eq!(qm2.queue("OUT").unwrap().depth(), 1);
    }

    #[test]
    fn uncommitted_transaction_rolls_back_across_crash() {
        let (journal, qm) = setup();
        qm.put("Q", Message::text("in").persistent(true).build())
            .unwrap();
        let mut s = qm.session();
        s.begin().unwrap();
        s.get("Q", Wait::NoWait).unwrap().unwrap();
        s.put("OUT", Message::text("out").persistent(true).build())
            .unwrap();
        // Crash before commit: tx must vanish entirely.
        qm.crash();
        drop(s); // rollback attempt against crashed manager is harmless
        let qm2 = QueueManager::builder("QM1")
            .journal(journal)
            .build()
            .unwrap();
        assert_eq!(qm2.queue("Q").unwrap().depth(), 1, "get rolled back");
        assert_eq!(qm2.queue("OUT").unwrap().depth(), 0, "put never happened");
    }

    #[test]
    fn transactional_put_to_remote_stages_on_xmit_queue() {
        let (_j, qm) = setup();
        qm.define_route("QM2", "XMIT.QM2").unwrap();
        let mut s = qm.session();
        s.begin().unwrap();
        s.put_to(
            &QueueAddress::new("QM2", "FAR.Q"),
            Message::text("x").build(),
        )
        .unwrap();
        assert_eq!(qm.queue("XMIT.QM2").unwrap().depth(), 0);
        s.commit().unwrap();
        assert_eq!(qm.queue("XMIT.QM2").unwrap().depth(), 1);
    }

    #[test]
    fn selector_get_in_transaction() {
        let (_j, qm) = setup();
        qm.put("Q", Message::text("a").property("k", 1i64).build())
            .unwrap();
        qm.put("Q", Message::text("b").property("k", 2i64).build())
            .unwrap();
        let sel = Selector::parse("k = 2").unwrap();
        let mut s = qm.session();
        s.begin().unwrap();
        let got = s.get_selected("Q", &sel, Wait::NoWait).unwrap().unwrap();
        assert_eq!(got.payload_str(), Some("b"));
        s.rollback().unwrap();
        assert_eq!(qm.queue("Q").unwrap().depth(), 2);
    }

    #[test]
    fn staging_put_to_missing_queue_fails_fast() {
        let (_j, qm) = setup();
        let mut s = qm.session();
        s.begin().unwrap();
        assert!(matches!(
            s.put("MISSING", Message::text("x").build()),
            Err(MqError::QueueNotFound(_))
        ));
        s.rollback().unwrap();
    }

    #[test]
    fn correlation_get_in_transaction_rolls_back_into_index() {
        let (_j, qm) = setup();
        qm.put("Q", Message::text("corr-msg").correlation_id("c-1").build())
            .unwrap();
        let mut s = qm.session();
        s.begin().unwrap();
        let got = s
            .get_by_correlation("Q", "c-1", Wait::NoWait)
            .unwrap()
            .unwrap();
        assert_eq!(got.payload_str(), Some("corr-msg"));
        assert!(
            s.get_by_correlation("Q", "c-1", Wait::NoWait)
                .unwrap()
                .is_none(),
            "in-flight: invisible"
        );
        s.rollback().unwrap();
        // The rollback re-inserts the message *and* its index entry.
        let again = qm
            .get_by_correlation("Q", "c-1", Wait::NoWait)
            .unwrap()
            .unwrap();
        assert_eq!(again.payload_str(), Some("corr-msg"));
        assert_eq!(again.redelivery_count(), 1);
    }

    #[test]
    fn correlation_get_commit_consumes() {
        let (_j, qm) = setup();
        qm.put("Q", Message::text("a").correlation_id("c").build())
            .unwrap();
        let mut s = qm.session();
        s.begin().unwrap();
        s.get_by_correlation("Q", "c", Wait::NoWait)
            .unwrap()
            .unwrap();
        s.commit().unwrap();
        assert!(qm
            .get_by_correlation("Q", "c", Wait::NoWait)
            .unwrap()
            .is_none());
        assert_eq!(qm.queue("Q").unwrap().depth(), 0);
    }

    #[test]
    fn redelivered_message_preserves_payload_and_order() {
        let (_j, qm) = setup();
        qm.put("Q", Message::text("first").build()).unwrap();
        qm.put("Q", Message::text("second").build()).unwrap();
        let mut s = qm.session();
        s.begin().unwrap();
        let a = s.get("Q", Wait::NoWait).unwrap().unwrap();
        let b = s.get("Q", Wait::NoWait).unwrap().unwrap();
        assert_eq!(a.payload_str(), Some("first"));
        assert_eq!(b.payload_str(), Some("second"));
        s.rollback().unwrap();
        // Order restored: first then second (front requeue of b then a
        // would invert; ensure implementation keeps FIFO).
        let a2 = qm.get("Q", Wait::NoWait).unwrap().unwrap();
        let b2 = qm.get("Q", Wait::NoWait).unwrap().unwrap();
        assert_eq!(a2.payload_str(), Some("first"));
        assert_eq!(b2.payload_str(), Some("second"));
    }
}
