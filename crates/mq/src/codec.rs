//! Self-contained binary codec used for journal records and cross-manager
//! message framing.
//!
//! The format is deliberately simple: little-endian fixed-width integers,
//! LEB128 varints for lengths, length-prefixed UTF-8 strings, and a `u8` tag
//! per enum variant. [`crc32`] provides integrity checking for journal
//! framing ([`crate::journal`]).

use std::collections::BTreeMap;
use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use simtime::{Millis, Time};

use crate::message::{Message, MessageId, Priority, PropertyValue, QueueAddress};

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    UnexpectedEof,
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A length-prefixed string was not valid UTF-8.
    InvalidUtf8,
    /// A varint ran past its maximum width.
    VarintOverflow,
    /// A declared length exceeds the remaining buffer (corruption guard).
    LengthOverrun {
        /// Declared length.
        declared: u64,
        /// Bytes actually remaining.
        remaining: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of buffer"),
            CodecError::BadTag { what, tag } => {
                write!(f, "invalid tag {tag} while decoding {what}")
            }
            CodecError::InvalidUtf8 => write!(f, "invalid utf-8 in string"),
            CodecError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            CodecError::LengthOverrun {
                declared,
                remaining,
            } => {
                write!(
                    f,
                    "declared length {declared} exceeds remaining {remaining} bytes"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Streaming encoder over a growable byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Finishes encoding and returns the bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Current encoded length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends a little-endian `u128`.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.put_u128_le(v);
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }

    /// Appends an IEEE-754 `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Appends a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.put_u8(byte);
                return;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// Appends a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_varint(v.len() as u64);
        self.buf.put_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends an optional value: absence tag `0`, presence tag `1` + value.
    pub fn put_opt<T>(&mut self, v: Option<&T>, mut f: impl FnMut(&mut Encoder, &T)) {
        match v {
            None => self.put_u8(0),
            Some(inner) => {
                self.put_u8(1);
                f(self, inner);
            }
        }
    }
}

/// Streaming decoder over a byte slice.
#[derive(Debug)]
pub struct Decoder {
    buf: Bytes,
}

impl Decoder {
    /// Creates a decoder over the given bytes.
    pub fn new(buf: Bytes) -> Decoder {
        Decoder { buf }
    }

    /// Bytes remaining to decode.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// Whether all bytes have been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn need(&self, n: usize) -> Result<(), CodecError> {
        if self.buf.remaining() < n {
            Err(CodecError::UnexpectedEof)
        } else {
            Ok(())
        }
    }

    /// Reads a single byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Reads a little-endian `u128`.
    pub fn get_u128(&mut self) -> Result<u128, CodecError> {
        self.need(16)?;
        Ok(self.buf.get_u128_le())
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        self.need(8)?;
        Ok(self.buf.get_i64_le())
    }

    /// Reads an IEEE-754 `f64`.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    /// Reads a boolean byte (`0` or `1`; anything else is a bad tag).
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::BadTag { what: "bool", tag }),
        }
    }

    /// Reads a LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u64, CodecError> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 {
                return Err(CodecError::VarintOverflow);
            }
            result |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Bytes, CodecError> {
        let len = self.get_varint()?;
        if len > self.buf.remaining() as u64 {
            return Err(CodecError::LengthOverrun {
                declared: len,
                remaining: self.buf.remaining(),
            });
        }
        Ok(self.buf.copy_to_bytes(len as usize))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::InvalidUtf8)
    }

    /// Reads an optional value written with [`Encoder::put_opt`].
    pub fn get_opt<T>(
        &mut self,
        mut f: impl FnMut(&mut Decoder) -> Result<T, CodecError>,
    ) -> Result<Option<T>, CodecError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            tag => Err(CodecError::BadTag {
                what: "option",
                tag,
            }),
        }
    }
}

/// Types that can be written to an [`Encoder`].
pub trait WireEncode {
    /// Appends this value to the encoder.
    fn encode(&self, enc: &mut Encoder);

    /// Convenience: encodes into a fresh byte buffer.
    fn to_bytes(&self) -> Bytes {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }
}

/// Types that can be read back from a [`Decoder`].
pub trait WireDecode: Sized {
    /// Decodes one value from the decoder.
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError>;

    /// Convenience: decodes from a byte buffer, requiring full consumption.
    fn from_bytes(bytes: Bytes) -> Result<Self, CodecError> {
        let mut dec = Decoder::new(bytes);
        let v = Self::decode(&mut dec)?;
        if !dec.is_exhausted() {
            return Err(CodecError::LengthOverrun {
                declared: 0,
                remaining: dec.remaining(),
            });
        }
        Ok(v)
    }
}

impl WireEncode for PropertyValue {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            PropertyValue::Str(s) => {
                enc.put_u8(0);
                enc.put_str(s);
            }
            PropertyValue::I64(v) => {
                enc.put_u8(1);
                enc.put_i64(*v);
            }
            PropertyValue::F64(v) => {
                enc.put_u8(2);
                enc.put_f64(*v);
            }
            PropertyValue::Bool(b) => {
                enc.put_u8(3);
                enc.put_bool(*b);
            }
        }
    }
}

impl WireDecode for PropertyValue {
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        match dec.get_u8()? {
            0 => Ok(PropertyValue::Str(dec.get_str()?)),
            1 => Ok(PropertyValue::I64(dec.get_i64()?)),
            2 => Ok(PropertyValue::F64(dec.get_f64()?)),
            3 => Ok(PropertyValue::Bool(dec.get_bool()?)),
            tag => Err(CodecError::BadTag {
                what: "PropertyValue",
                tag,
            }),
        }
    }
}

impl WireEncode for QueueAddress {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.manager);
        enc.put_str(&self.queue);
    }
}

impl WireDecode for QueueAddress {
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        Ok(QueueAddress {
            manager: dec.get_str()?,
            queue: dec.get_str()?,
        })
    }
}

/// Process-wide count of full [`Message`] encodes, registered in every
/// manager's metrics hub as `mq.codec.encodes`. The zero-copy send path
/// caches the wire image on the message ([`Message::wire_bytes`]), so a
/// message crossing the transport should contribute exactly one encode —
/// throughput tests assert that by diffing this counter.
pub fn message_encodes() -> &'static std::sync::Arc<crate::stats::Counter> {
    static ENCODES: std::sync::OnceLock<std::sync::Arc<crate::stats::Counter>> =
        std::sync::OnceLock::new();
    ENCODES.get_or_init(Default::default)
}

impl Message {
    /// The message's encoded wire image, computed on first use and cached
    /// on the message (clones share the cache; any mutation invalidates
    /// it). The transport builds batch frames from these cached slices
    /// without re-encoding or copying payload bytes.
    pub fn wire_bytes(&self) -> Bytes {
        self.wire_cache()
            .get_or_init(|| WireEncode::to_bytes(self))
            .clone()
    }

    /// Encoded wire length without forcing a copy of the bytes out of the
    /// cache (used by the channel mover's byte-budget accounting).
    pub fn wire_len(&self) -> usize {
        self.wire_bytes().len()
    }
}

impl WireEncode for Message {
    fn encode(&self, enc: &mut Encoder) {
        message_encodes().incr();
        enc.put_u128(self.id().as_u128());
        enc.put_bytes(self.payload());
        let props: Vec<_> = self.properties().collect();
        enc.put_varint(props.len() as u64);
        for (k, v) in props {
            enc.put_str(k);
            v.encode(enc);
        }
        enc.put_u8(self.priority().level());
        enc.put_bool(self.is_persistent());
        enc.put_opt(self.ttl().as_ref(), |e, m| e.put_u64(m.as_u64()));
        enc.put_opt(self.expiry().as_ref(), |e, t| e.put_u64(t.as_millis()));
        enc.put_opt(self.correlation_id().map(String::from).as_ref(), |e, s| {
            e.put_str(s)
        });
        enc.put_opt(self.reply_to(), |e, a| a.encode(e));
        enc.put_opt(self.put_time().as_ref(), |e, t| e.put_u64(t.as_millis()));
        enc.put_u32(self.redelivery_count());
    }
}

impl WireDecode for Message {
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        let id = MessageId::from_u128(dec.get_u128()?);
        let payload = dec.get_bytes()?;
        let n_props = dec.get_varint()?;
        let mut properties = BTreeMap::new();
        for _ in 0..n_props {
            let key = dec.get_str()?;
            let value = PropertyValue::decode(dec)?;
            properties.insert(key, value);
        }
        let priority = Priority::new(dec.get_u8()?);
        let persistent = dec.get_bool()?;
        let ttl = dec.get_opt(|d| d.get_u64().map(Millis))?;
        let expiry = dec.get_opt(|d| d.get_u64().map(Time))?;
        let correlation_id = dec.get_opt(|d| d.get_str())?;
        let reply_to = dec.get_opt(QueueAddress::decode)?;
        let put_time = dec.get_opt(|d| d.get_u64().map(Time))?;
        let redelivery_count = dec.get_u32()?;
        Ok(Message::from_parts(
            id,
            payload,
            properties,
            priority,
            persistent,
            ttl,
            expiry,
            correlation_id,
            reply_to,
            put_time,
            redelivery_count,
        ))
    }
}

fn crc32_table() -> &'static [u32; 256] {
    const POLY: u32 = 0xEDB8_8320;
    // Table computed once; 256 entries.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// Starts an incremental CRC-32 computation; feed slices through
/// [`crc32_update`] and close with [`crc32_finish`]. Lets the transport
/// checksum a frame assembled from scattered segments without first
/// flattening them into one buffer.
pub fn crc32_begin() -> u32 {
    0xFFFF_FFFF
}

/// Folds `data` into an in-progress CRC-32 state.
pub fn crc32_update(state: u32, data: &[u8]) -> u32 {
    let table = crc32_table();
    let mut crc = state;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    crc
}

/// Finalizes an incremental CRC-32 state into the checksum value.
pub fn crc32_finish(state: u32) -> u32 {
    !state
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), used to frame journal records.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_finish(crc32_update(crc32_begin(), data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WireEncode + WireDecode + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(bytes).expect("decode");
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        enc.put_u32(0xDEAD_BEEF);
        enc.put_u64(u64::MAX);
        enc.put_u128(u128::MAX - 1);
        enc.put_i64(-42);
        enc.put_f64(2.75);
        enc.put_bool(true);
        enc.put_str("héllo");
        enc.put_bytes(&[1, 2, 3]);
        let mut dec = Decoder::new(enc.finish());
        assert_eq!(dec.get_u8().unwrap(), 7);
        assert_eq!(dec.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.get_u64().unwrap(), u64::MAX);
        assert_eq!(dec.get_u128().unwrap(), u128::MAX - 1);
        assert_eq!(dec.get_i64().unwrap(), -42);
        assert_eq!(dec.get_f64().unwrap(), 2.75);
        assert!(dec.get_bool().unwrap());
        assert_eq!(dec.get_str().unwrap(), "héllo");
        assert_eq!(dec.get_bytes().unwrap().as_ref(), &[1, 2, 3]);
        assert!(dec.is_exhausted());
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut enc = Encoder::new();
            enc.put_varint(v);
            let mut dec = Decoder::new(enc.finish());
            assert_eq!(dec.get_varint().unwrap(), v);
            assert!(dec.is_exhausted());
        }
    }

    #[test]
    fn varint_overflow_detected() {
        // 11 continuation bytes would encode > 64 bits.
        let bytes = Bytes::from(vec![0xFFu8; 11]);
        let mut dec = Decoder::new(bytes);
        assert_eq!(dec.get_varint(), Err(CodecError::VarintOverflow));
    }

    #[test]
    fn eof_detected() {
        let mut dec = Decoder::new(Bytes::from_static(&[1, 2]));
        assert_eq!(dec.get_u64(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn length_overrun_detected() {
        let mut enc = Encoder::new();
        enc.put_varint(1000); // declared length far beyond actual content
        enc.put_u8(1);
        let mut dec = Decoder::new(enc.finish());
        assert!(matches!(
            dec.get_bytes(),
            Err(CodecError::LengthOverrun { declared: 1000, .. })
        ));
    }

    #[test]
    fn bad_bool_tag() {
        let mut dec = Decoder::new(Bytes::from_static(&[9]));
        assert_eq!(
            dec.get_bool(),
            Err(CodecError::BadTag {
                what: "bool",
                tag: 9
            })
        );
    }

    #[test]
    fn option_roundtrip() {
        let mut enc = Encoder::new();
        enc.put_opt(None::<&u64>, |e, v| e.put_u64(*v));
        enc.put_opt(Some(&99u64), |e, v| e.put_u64(*v));
        let mut dec = Decoder::new(enc.finish());
        assert_eq!(dec.get_opt(|d| d.get_u64()).unwrap(), None);
        assert_eq!(dec.get_opt(|d| d.get_u64()).unwrap(), Some(99));
    }

    #[test]
    fn property_value_roundtrips() {
        roundtrip(&PropertyValue::Str("abc".into()));
        roundtrip(&PropertyValue::I64(-5));
        roundtrip(&PropertyValue::F64(1.25));
        roundtrip(&PropertyValue::Bool(false));
    }

    #[test]
    fn queue_address_roundtrips() {
        roundtrip(&QueueAddress::new("QM1", "Q.A"));
    }

    #[test]
    fn full_message_roundtrips() {
        let mut msg = Message::text("payload")
            .property("str", "v")
            .property("int", -3i64)
            .property("float", 0.5f64)
            .property("bool", true)
            .priority(Priority::new(9))
            .persistent(true)
            .ttl(Millis(123))
            .correlation_id("corr")
            .reply_to(QueueAddress::new("QM2", "REPLY"))
            .build();
        msg.stamp_enqueue(Time(77));
        roundtrip(&msg);
    }

    #[test]
    fn minimal_message_roundtrips() {
        let msg = Message::builder(Bytes::new()).build();
        roundtrip(&msg);
    }

    #[test]
    fn trailing_garbage_rejected_by_from_bytes() {
        let msg = Message::text("x").build();
        let mut raw = msg.to_bytes().to_vec();
        raw.push(0xAB);
        assert!(Message::from_bytes(Bytes::from(raw)).is_err());
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn crc32_incremental_matches_one_shot() {
        let data = b"The quick brown fox jumps over the lazy dog";
        for split in [0, 1, 10, data.len()] {
            let mut state = crc32_begin();
            state = crc32_update(state, &data[..split]);
            state = crc32_update(state, &data[split..]);
            assert_eq!(crc32_finish(state), crc32(data));
        }
    }

    #[test]
    fn wire_bytes_caches_and_counts_one_encode() {
        let msg = Message::text("cached").build();
        let before = message_encodes().get();
        let a = msg.wire_bytes();
        let b = msg.wire_bytes();
        assert_eq!(a, b);
        assert_eq!(msg.wire_len(), a.len());
        assert_eq!(message_encodes().get(), before + 1);
        // Clones share the cached image; no further encode happens.
        let cloned = msg.clone();
        assert_eq!(cloned.wire_bytes(), a);
        assert_eq!(message_encodes().get(), before + 1);
        // A mutation invalidates the cache on the mutated copy only.
        let mut mutated = msg.clone();
        mutated.set_property("k", 1i64);
        assert_ne!(mutated.wire_bytes(), a);
        assert_eq!(msg.wire_bytes(), a);
        assert_eq!(message_encodes().get(), before + 2);
    }

    #[test]
    fn crc32_detects_bitflip() {
        let msg = Message::text("important").persistent(true).build();
        let bytes = msg.to_bytes();
        let good = crc32(&bytes);
        let mut flipped = bytes.to_vec();
        flipped[0] ^= 0x01;
        assert_ne!(crc32(&flipped), good);
    }

    #[cfg(test)]
    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn arb_property() -> impl Strategy<Value = PropertyValue> {
            prop_oneof![
                any::<String>().prop_map(PropertyValue::Str),
                any::<i64>().prop_map(PropertyValue::I64),
                // Avoid NaN: PartialEq-based roundtrip comparison.
                any::<i64>().prop_map(|v| PropertyValue::F64(v as f64)),
                any::<bool>().prop_map(PropertyValue::Bool),
            ]
        }

        proptest! {
            #[test]
            fn varint_roundtrips(v in any::<u64>()) {
                let mut enc = Encoder::new();
                enc.put_varint(v);
                let mut dec = Decoder::new(enc.finish());
                prop_assert_eq!(dec.get_varint().unwrap(), v);
            }

            #[test]
            fn strings_roundtrip(s in any::<String>()) {
                let mut enc = Encoder::new();
                enc.put_str(&s);
                let mut dec = Decoder::new(enc.finish());
                prop_assert_eq!(dec.get_str().unwrap(), s);
            }

            #[test]
            fn properties_roundtrip(p in arb_property()) {
                let bytes = p.to_bytes();
                prop_assert_eq!(PropertyValue::from_bytes(bytes).unwrap(), p);
            }

            #[test]
            fn arbitrary_message_roundtrips(
                payload in proptest::collection::vec(any::<u8>(), 0..256),
                keys in proptest::collection::btree_set("[a-z]{1,8}", 0..6),
                prio in 0u8..=9,
                persistent in any::<bool>(),
                ttl in proptest::option::of(0u64..10_000),
            ) {
                let mut builder = Message::builder(Bytes::from(payload));
                for (i, k) in keys.into_iter().enumerate() {
                    builder = builder.property(k, i as i64);
                }
                builder = builder.priority(Priority::new(prio)).persistent(persistent);
                if let Some(t) = ttl {
                    builder = builder.ttl(Millis(t));
                }
                let msg = builder.build();
                let back = Message::from_bytes(msg.to_bytes()).unwrap();
                prop_assert_eq!(back, msg);
            }

            #[test]
            fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
                // Must return an error or a value, never panic.
                let _ = Message::from_bytes(Bytes::from(bytes));
            }

            // The safety argument for feeding *socket* bytes into the
            // decoder (transport acceptor): any strict prefix of a valid
            // Message encoding must error. This is provable because
            // decoding is a deterministic left-to-right read whose final
            // field is fixed-width, and from_bytes demands exhaustion —
            // so a truncation either starves a read (UnexpectedEof) or
            // leaves the final fixed-width field short.
            #[test]
            fn truncated_message_encoding_always_errors(
                payload in proptest::collection::vec(any::<u8>(), 0..64),
                keys in proptest::collection::btree_set("[a-z]{1,8}", 0..4),
                cut_seed in any::<u64>(),
            ) {
                let mut builder = Message::builder(Bytes::from(payload));
                for (i, k) in keys.into_iter().enumerate() {
                    builder = builder.property(k, i as i64);
                }
                let full = builder.build().to_bytes();
                // Never empty: the message id alone is 16 bytes.
                let cut = (cut_seed % full.len() as u64) as usize;
                let truncated = full.slice(0..cut);
                prop_assert!(
                    Message::from_bytes(truncated).is_err(),
                    "prefix of length {} of a {}-byte encoding decoded",
                    cut,
                    full.len()
                );
            }

            // A single flipped byte anywhere in the encoding must never
            // panic or over-read; it may legitimately decode (e.g. a flip
            // inside the payload body), but the decoder has to stay
            // total. (On the wire the frame CRC rejects such flips before
            // this decoder ever runs; this is defense in depth.)
            #[test]
            fn corrupted_message_encoding_never_panics(
                payload in proptest::collection::vec(any::<u8>(), 0..64),
                keys in proptest::collection::btree_set("[a-z]{1,8}", 0..4),
                pos_seed in any::<u64>(),
                flip in 1u8..=255,
            ) {
                let mut builder = Message::builder(Bytes::from(payload));
                for (i, k) in keys.into_iter().enumerate() {
                    builder = builder.property(k, i as i64);
                }
                let full = builder.build().to_bytes().to_vec();
                let pos = (pos_seed % full.len() as u64) as usize;
                let mut corrupt = full;
                corrupt[pos] ^= flip;
                let _ = Message::from_bytes(Bytes::from(corrupt));
            }
        }
    }
}
