//! Fault-injectable in-memory journal.
//!
//! [`FaultableJournal`] behaves exactly like [`MemJournal`](super::MemJournal)
//! until a fault is scripted into it: appends can be made to fail (modelling
//! a full or broken disk), and the newest record can be torn off (modelling
//! an interrupted final write — the situation the file backends tolerate on
//! replay). Failure-injection tests and the scenario engine's
//! `fail_storage` / `heal_storage` / `tear_journal_tail` actions drive it
//! through the [`FaultPlane`](crate::transport::fault::FaultPlane) surface.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use super::{Journal, JournalRecord, ReplaySink};
use crate::codec::{WireDecode, WireEncode};
use crate::error::{MqError, MqResult};

/// In-memory journal with scriptable storage failures and torn tails.
///
/// Keep the `Arc<FaultableJournal>` across a simulated crash
/// ([`crate::QueueManager::crash`]) and hand it to the restarted manager,
/// exactly as with [`MemJournal`](super::MemJournal); in between, faults can
/// reshape what the restarted manager will recover.
#[derive(Debug, Default)]
pub struct FaultableJournal {
    /// Encoded records. Never held while a replay sink runs: the sink may
    /// re-enter the journal (e.g. append during recovery).
    // lint: never-hold(FaultableJournal.records) across sink
    records: Mutex<Vec<Bytes>>,
    bytes: AtomicU64,
    /// While set, every append fails without retaining the record.
    failing: AtomicBool,
    /// Records dropped by [`FaultableJournal::tear_tail`].
    torn: AtomicU64,
}

impl FaultableJournal {
    /// Creates an empty journal with no faults armed.
    pub fn new() -> Arc<FaultableJournal> {
        Arc::new(FaultableJournal::default())
    }

    /// Arms (`true`) or heals (`false`) the storage-failure fault: while
    /// armed, [`Journal::append`] fails with [`MqError::Io`] and retains
    /// nothing, so callers must not apply the state change.
    pub fn set_failing(&self, failing: bool) {
        self.failing.store(failing, Ordering::SeqCst);
    }

    /// Whether appends are currently failing.
    pub fn is_failing(&self) -> bool {
        self.failing.load(Ordering::SeqCst)
    }

    /// Tears off the newest record, as if its final write was interrupted
    /// mid-frame; returns whether a record was removed. A subsequent
    /// replay simply never sees it — the same silent-tail rule the file
    /// backends apply to a short or CRC-broken last frame.
    pub fn tear_tail(&self) -> bool {
        let mut records = self.records.lock();
        match records.pop() {
            Some(dropped) => {
                self.bytes.fetch_sub(dropped.len() as u64, Ordering::Relaxed);
                self.torn.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Number of records currently stored.
    pub fn record_count(&self) -> usize {
        self.records.lock().len()
    }

    /// How many records have been torn off so far.
    pub fn torn_count(&self) -> u64 {
        self.torn.load(Ordering::Relaxed)
    }
}

impl Journal for FaultableJournal {
    fn append(&self, record: &JournalRecord) -> MqResult<()> {
        if self.is_failing() {
            return Err(MqError::Io(std::io::Error::other(
                "injected storage failure",
            )));
        }
        let bytes = record.to_bytes();
        self.bytes.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.records.lock().push(bytes);
        Ok(())
    }

    fn replay(&self, sink: &mut ReplaySink<'_>) -> MqResult<()> {
        // Clone the encoded records out so the sink can re-enter the
        // journal (e.g. append) without deadlocking on our mutex.
        let records: Vec<Bytes> = self.records.lock().clone();
        for b in records {
            sink(JournalRecord::from_bytes(b).map_err(MqError::from)?)?;
        }
        Ok(())
    }

    fn write_checkpoint(&self, records: &mut dyn Iterator<Item = JournalRecord>) -> MqResult<()> {
        if self.is_failing() {
            return Err(MqError::Io(std::io::Error::other(
                "injected storage failure",
            )));
        }
        // Atomic replace, as MemJournal: the checkpoint becomes the journal.
        let mut encoded = Vec::new();
        let mut total = 0u64;
        for record in records {
            let bytes = record.to_bytes();
            total += bytes.len() as u64;
            encoded.push(bytes);
        }
        let mut guard = self.records.lock();
        *guard = encoded;
        self.bytes.store(total, Ordering::Relaxed);
        Ok(())
    }

    fn reset(&self) -> MqResult<()> {
        self.records.lock().clear();
        self.bytes.store(0, Ordering::Relaxed);
        Ok(())
    }

    fn len_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::check_roundtrip;
    use super::*;

    #[test]
    fn healthy_journal_roundtrips_like_mem() {
        let j = FaultableJournal::new();
        check_roundtrip(j.as_ref());
        assert!(j.record_count() > 0);
        assert!(j.len_bytes() > 0);
    }

    #[test]
    fn failing_append_retains_nothing() {
        let j = FaultableJournal::new();
        j.set_failing(true);
        assert!(j.is_failing());
        let err = j
            .append(&JournalRecord::QueueCreated { queue: "Q".into() })
            .unwrap_err();
        assert!(matches!(err, MqError::Io(_)));
        assert_eq!(j.record_count(), 0);
        j.set_failing(false);
        j.append(&JournalRecord::QueueCreated { queue: "Q".into() })
            .unwrap();
        assert_eq!(j.record_count(), 1);
    }

    #[test]
    fn tear_tail_drops_only_the_newest_record() {
        let j = FaultableJournal::new();
        j.append(&JournalRecord::QueueCreated { queue: "A".into() })
            .unwrap();
        j.append(&JournalRecord::QueueCreated { queue: "B".into() })
            .unwrap();
        let before = j.len_bytes();
        assert!(j.tear_tail());
        assert!(j.len_bytes() < before);
        assert_eq!(j.torn_count(), 1);
        let replayed = j.replay_collect().unwrap();
        assert_eq!(
            replayed,
            vec![JournalRecord::QueueCreated { queue: "A".into() }]
        );
        assert!(j.tear_tail());
        assert!(!j.tear_tail(), "empty journal has no tail to tear");
    }
}
