//! Group-commit journal: many concurrent appenders, one fsync per batch.
//!
//! [`super::FileJournal`] with `sync_every_append` pays one `sync_data`
//! per record — the classic WAL anti-pattern group commit exists to fix
//! (Gray & Reuter): under N concurrent appenders the device does N syncs
//! for work one sync could cover. [`GroupCommitJournal`] keeps the
//! `Journal::append` contract ("returns ⇒ record is durable") while
//! sharing fsyncs:
//!
//! 1. `append` encodes the record, assigns it the next **LSN** (a dense
//!    per-journal sequence number), pushes the frame onto a bounded
//!    in-memory batch buffer, and parks on a condvar.
//! 2. A dedicated **flusher thread** drains the whole buffer, hands it to
//!    the storage as one coalesced write, issues one `sync`, then
//!    advances `durable_lsn` to the batch's last LSN and wakes all
//!    parked appenders whose LSN is now covered.
//! 3. While the flusher is inside the write+sync, new appenders keep
//!    accumulating in the buffer — the *duration of the fsync itself* is
//!    what forms the next batch, so batching is adaptive: idle journals
//!    sync per record (lowest latency), loaded journals sync per batch
//!    (highest throughput), with no timers and no polling.
//!
//! The buffer is bounded by [`GroupCommitConfig::max_batch`]: appenders
//! beyond it park until the in-flight batch retires, so a stalled device
//! cannot grow the buffer without limit. [`GroupCommitConfig::max_delay`]
//! optionally lets the flusher linger once per batch to gather more
//! joiners (off by default — the natural batching is usually enough).
//!
//! A storage failure is sticky: the failed batch's waiters and every
//! later append observe the error, so no caller ever treats an unsynced
//! record as durable.

use std::fmt;
use std::path::Path;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::{MqError, MqResult};
use crate::stats::{Counter, Histogram, MetricsRegistry};

use super::{encode_frame, FileJournal, Journal, JournalRecord, ReplaySink};

/// Low-level batched storage a [`GroupCommitJournal`] flushes into.
///
/// Implemented by [`FileJournal`] (coalesced `write` + `sync_data`); tests
/// implement it with simulated storage to model crashes deterministically.
pub trait GroupStorage: Send + Sync + fmt::Debug {
    /// Appends a run of already-framed records in one write.
    ///
    /// # Errors
    ///
    /// Propagates storage failures; the batch is then not durable.
    fn write_frames(&self, frames: &[u8]) -> MqResult<()>;

    /// Makes everything written so far durable (one fsync).
    ///
    /// # Errors
    ///
    /// Propagates storage failures; the batch is then not durable.
    fn sync(&self) -> MqResult<()>;

    /// Streams all durable records into `sink` in append order.
    ///
    /// # Errors
    ///
    /// Same contract as [`Journal::replay`].
    fn replay(&self, sink: &mut ReplaySink<'_>) -> MqResult<()>;

    /// Discards all records.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    fn reset(&self) -> MqResult<()>;

    /// Total stored size in bytes.
    fn len_bytes(&self) -> u64;
}

/// Tunables for [`GroupCommitJournal`].
#[derive(Debug, Clone)]
pub struct GroupCommitConfig {
    /// Maximum records coalesced into one write+sync batch; appenders past
    /// it park until the in-flight batch retires (backpressure bound).
    pub max_batch: usize,
    /// Extra time the flusher waits after picking up a non-full batch to
    /// let concurrent appenders join it. Zero (the default) drains
    /// immediately: the fsync duration itself provides natural batching
    /// under load, and solo appenders keep minimum latency.
    pub max_delay: Duration,
}

impl Default for GroupCommitConfig {
    fn default() -> GroupCommitConfig {
        GroupCommitConfig {
            max_batch: 256,
            max_delay: Duration::ZERO,
        }
    }
}

/// Bucket bounds for the `mq.journal.batch_size` histogram (records per
/// fsync, not a latency).
const BATCH_SIZE_BOUNDS: [u64; 11] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// Metric cells owned by a [`GroupCommitJournal`]; registered into a
/// manager's observability hub via [`Journal::register_metrics`].
#[derive(Debug, Clone)]
pub struct GroupCommitMetrics {
    /// Records appended (each one durable once `append` returned).
    pub appends: Arc<Counter>,
    /// Syncs issued — the whole point: `fsyncs ≪ appends` under load.
    pub fsyncs: Arc<Counter>,
    /// Appends that parked waiting for a flush (vs. finding their record
    /// already covered).
    pub group_waits: Arc<Counter>,
    /// Records per flushed batch.
    pub batch_size: Arc<Histogram>,
}

impl Default for GroupCommitMetrics {
    fn default() -> GroupCommitMetrics {
        GroupCommitMetrics {
            appends: Arc::new(Counter::default()),
            fsyncs: Arc::new(Counter::default()),
            group_waits: Arc::new(Counter::default()),
            batch_size: Arc::new(Histogram::new(&BATCH_SIZE_BOUNDS)),
        }
    }
}

struct State {
    /// Encoded frames awaiting the next flush.
    buf: Vec<u8>,
    /// Records currently in `buf`.
    buf_records: u64,
    /// LSN the next append receives (first record gets 1).
    next_lsn: u64,
    /// Every record with LSN ≤ this is synced to storage.
    durable_lsn: u64,
    /// Set once by the owner's `Drop`; the flusher drains and exits.
    shutdown: bool,
    /// Sticky storage failure; all current and future appends observe it.
    failed: Option<String>,
}

struct Shared {
    storage: Arc<dyn GroupStorage>,
    config: GroupCommitConfig,
    /// Buffer state. The flusher seals a batch under this lock but pays
    /// the storage write and fsync strictly outside it, so appenders can
    /// keep batching while the disk works.
    // lint: never-hold(Shared.state) across write_frames
    // lint: never-hold(Shared.state) across sync
    state: Mutex<State>,
    /// Signals the flusher: buffer non-empty, or shutdown.
    work: Condvar,
    /// Signals appenders: `durable_lsn` advanced, or the journal failed.
    durable: Condvar,
    metrics: GroupCommitMetrics,
}

impl Shared {
    fn failure(&self, state: &State) -> Option<MqError> {
        state
            .failed
            .as_ref()
            .map(|msg| MqError::Io(std::io::Error::other(msg.clone())))
    }

    /// The flusher: park until work exists, seal the buffer, write+sync it
    /// outside the lock, then retire the batch's LSNs and wake waiters.
    fn run_flusher(&self) {
        loop {
            let mut state = self.state.lock();
            while state.buf_records == 0 {
                if state.shutdown {
                    return;
                }
                self.work.wait(&mut state);
            }
            if !self.config.max_delay.is_zero()
                && state.buf_records < self.config.max_batch as u64
                && !state.shutdown
            {
                // Optional linger: give concurrent appenders one window to
                // join this batch before paying the sync.
                self.work.wait_for(&mut state, self.config.max_delay);
            }
            let batch = std::mem::take(&mut state.buf);
            let records = state.buf_records;
            state.buf_records = 0;
            // Everything appended so far is either durable or in `batch`.
            let batch_last_lsn = state.next_lsn - 1;
            drop(state);

            let result = self
                .storage
                .write_frames(&batch)
                .and_then(|()| self.storage.sync());

            let mut state = self.state.lock();
            match result {
                Ok(()) => {
                    state.durable_lsn = batch_last_lsn;
                    self.metrics.fsyncs.incr();
                    self.metrics.batch_size.record(records);
                }
                Err(e) => {
                    state.failed = Some(e.to_string());
                }
            }
            drop(state);
            self.durable.notify_all();
        }
    }
}

impl fmt::Debug for Shared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GroupCommitJournal")
            .field("storage", &self.storage)
            .field("config", &self.config)
            .finish()
    }
}

/// Group-commit wrapper keeping `append`'s durability contract while many
/// concurrent appenders share one fsync. See the [module docs](self).
pub struct GroupCommitJournal {
    shared: Arc<Shared>,
    flusher: Mutex<Option<JoinHandle<()>>>,
}

impl fmt::Debug for GroupCommitJournal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.shared.fmt(f)
    }
}

impl GroupCommitJournal {
    /// Wraps batched storage in a group-commit journal, spawning the
    /// flusher thread.
    ///
    /// # Errors
    ///
    /// Propagates thread-spawn failure.
    pub fn new(
        storage: Arc<dyn GroupStorage>,
        config: GroupCommitConfig,
    ) -> MqResult<Arc<GroupCommitJournal>> {
        let shared = Arc::new(Shared {
            storage,
            config,
            state: Mutex::new(State {
                buf: Vec::new(),
                buf_records: 0,
                next_lsn: 1,
                durable_lsn: 0,
                shutdown: false,
                failed: None,
            }),
            work: Condvar::new(),
            durable: Condvar::new(),
            metrics: GroupCommitMetrics::default(),
        });
        let for_thread = shared.clone();
        let flusher = std::thread::Builder::new()
            .name("mq-journal-flusher".into())
            .spawn(move || for_thread.run_flusher())?;
        Ok(Arc::new(GroupCommitJournal {
            shared,
            flusher: Mutex::new(Some(flusher)),
        }))
    }

    /// Opens (or creates) a file journal at `path` and wraps it for group
    /// commit — the standard durable-and-fast configuration.
    ///
    /// # Errors
    ///
    /// Propagates file-open and thread-spawn failures.
    pub fn open_file(
        path: impl AsRef<Path>,
        config: GroupCommitConfig,
    ) -> MqResult<Arc<GroupCommitJournal>> {
        // The wrapper owns syncing; the inner journal must not double-sync.
        let file = FileJournal::open(path, false)?;
        GroupCommitJournal::new(file, config)
    }

    /// The journal's metric cells (fsyncs, batch sizes, parked appends).
    pub fn metrics(&self) -> &GroupCommitMetrics {
        &self.shared.metrics
    }

    /// Blocks until every record appended so far is durable.
    ///
    /// # Errors
    ///
    /// Propagates a sticky storage failure.
    pub fn flush(&self) -> MqResult<()> {
        let mut state = self.shared.state.lock();
        let target = state.next_lsn - 1;
        while state.durable_lsn < target {
            if let Some(e) = self.shared.failure(&state) {
                return Err(e);
            }
            self.shared.work.notify_one();
            self.shared.durable.wait(&mut state);
        }
        self.shared.failure(&state).map_or(Ok(()), Err)
    }
}

impl Journal for GroupCommitJournal {
    fn append(&self, record: &JournalRecord) -> MqResult<()> {
        let frame = encode_frame(record);
        let mut state = self.shared.state.lock();
        // Backpressure: a full buffer means a batch is in flight; park
        // until it retires rather than growing the buffer unboundedly.
        while state.buf_records >= self.shared.config.max_batch as u64 {
            if let Some(e) = self.shared.failure(&state) {
                return Err(e);
            }
            self.shared.durable.wait(&mut state);
        }
        if let Some(e) = self.shared.failure(&state) {
            return Err(e);
        }
        let lsn = state.next_lsn;
        state.next_lsn += 1;
        state.buf.extend_from_slice(&frame);
        state.buf_records += 1;
        self.shared.metrics.appends.incr();
        if state.buf_records == 1 {
            self.shared.work.notify_one();
        }
        let mut parked = false;
        while state.durable_lsn < lsn {
            if let Some(e) = self.shared.failure(&state) {
                return Err(e);
            }
            parked = true;
            self.shared.durable.wait(&mut state);
        }
        if parked {
            self.shared.metrics.group_waits.incr();
        }
        Ok(())
    }

    fn replay(&self, sink: &mut ReplaySink<'_>) -> MqResult<()> {
        // Appends only return once durable, so under the normal protocol
        // the buffer is empty here; flush anyway so replay is exact even
        // mid-append.
        self.flush()?;
        self.shared.storage.replay(sink)
    }

    fn write_checkpoint(&self, records: &mut dyn Iterator<Item = JournalRecord>) -> MqResult<()> {
        // Callers exclude concurrent appends for the duration, so the
        // snapshot can simply be appended through the normal batch path
        // (one flusher batch per buffer fill); storage-level truncation is
        // the segmented backend's job.
        for record in records {
            self.append(&record)?;
        }
        Ok(())
    }

    fn reset(&self) -> MqResult<()> {
        // Callers (compaction) exclude concurrent appends for the
        // duration; discard anything buffered and truncate storage.
        let mut state = self.shared.state.lock();
        state.buf.clear();
        state.buf_records = 0;
        state.durable_lsn = state.next_lsn - 1;
        drop(state);
        self.shared.durable.notify_all();
        self.shared.storage.reset()
    }

    fn len_bytes(&self) -> u64 {
        let buffered = self.shared.state.lock().buf.len() as u64;
        self.shared.storage.len_bytes() + buffered
    }

    fn register_metrics(&self, registry: &MetricsRegistry) {
        let m = &self.shared.metrics;
        registry.register_counter("mq.journal.appends", &m.appends);
        registry.register_counter("mq.journal.fsyncs", &m.fsyncs);
        registry.register_counter("mq.journal.group_waits", &m.group_waits);
        registry.register_histogram("mq.journal.batch_size", &m.batch_size);
    }
}

impl Drop for GroupCommitJournal {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock();
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        if let Some(handle) = self.flusher.lock().take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{check_roundtrip, sample_records, temp_path};
    use super::super::{decode_frames, decode_frames_into};
    use super::*;
    use crate::message::Message;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Simulated crash-aware storage: `write_frames` lands in a volatile
    /// page cache (`pending`), `sync` moves it to `durable`. A "crash"
    /// keeps `durable` plus an arbitrary prefix of `pending` — exactly
    /// what a real kernel may or may not have written back.
    #[derive(Debug, Default)]
    struct CrashStorage {
        durable: Mutex<Vec<u8>>,
        pending: Mutex<Vec<u8>>,
        syncs: AtomicU64,
        sync_delay: Option<Duration>,
        fail_syncs: bool,
    }

    impl CrashStorage {
        fn new() -> Arc<CrashStorage> {
            Arc::new(CrashStorage::default())
        }

        fn with_sync_delay(delay: Duration) -> Arc<CrashStorage> {
            Arc::new(CrashStorage {
                sync_delay: Some(delay),
                ..CrashStorage::default()
            })
        }

        fn failing() -> Arc<CrashStorage> {
            Arc::new(CrashStorage {
                fail_syncs: true,
                ..CrashStorage::default()
            })
        }

        fn syncs(&self) -> u64 {
            self.syncs.load(Ordering::Relaxed)
        }

        /// The byte image surviving a crash with `unsynced_kept` bytes of
        /// the pending write-back racing the failure.
        fn crash_image(&self, unsynced_kept: usize) -> Vec<u8> {
            let mut image = self.durable.lock().clone();
            let pending = self.pending.lock();
            image.extend_from_slice(&pending[..unsynced_kept.min(pending.len())]);
            image
        }

        fn pending_len(&self) -> usize {
            self.pending.lock().len()
        }
    }

    impl GroupStorage for CrashStorage {
        fn write_frames(&self, frames: &[u8]) -> MqResult<()> {
            self.pending.lock().extend_from_slice(frames);
            Ok(())
        }

        fn sync(&self) -> MqResult<()> {
            if self.fail_syncs {
                return Err(MqError::Io(std::io::Error::other("disk on fire")));
            }
            if let Some(delay) = self.sync_delay {
                std::thread::sleep(delay);
            }
            let mut pending = self.pending.lock();
            self.durable.lock().extend_from_slice(&pending);
            pending.clear();
            self.syncs.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }

        fn replay(&self, sink: &mut ReplaySink<'_>) -> MqResult<()> {
            let image = self.durable.lock().clone();
            decode_frames_into(&image, sink)
        }

        fn reset(&self) -> MqResult<()> {
            self.durable.lock().clear();
            self.pending.lock().clear();
            Ok(())
        }

        fn len_bytes(&self) -> u64 {
            self.durable.lock().len() as u64
        }
    }

    #[test]
    fn group_commit_roundtrip_over_file() {
        let path = temp_path("group-roundtrip");
        let records = sample_records();
        let j = GroupCommitJournal::open_file(&path, GroupCommitConfig::default()).unwrap();
        check_roundtrip(j.as_ref());
        for r in &records {
            j.append(r).unwrap();
        }
        assert_eq!(j.metrics().appends.get(), 2 * records.len() as u64);
        assert!(j.metrics().fsyncs.get() >= 1);
        drop(j);
        // Reopen plain: everything the group journal acked is on disk
        // (check_roundtrip's records first, then ours).
        let reopened = FileJournal::open(&path, false).unwrap();
        let replayed = Journal::replay_collect(reopened.as_ref()).unwrap();
        assert_eq!(replayed.len(), 2 * records.len());
        assert_eq!(&replayed[records.len()..], &records[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn acked_appends_are_synced_before_return() {
        let storage = CrashStorage::new();
        let records = sample_records();
        let j = GroupCommitJournal::new(storage.clone(), GroupCommitConfig::default()).unwrap();
        for r in &records {
            j.append(r).unwrap();
            // The durability contract, probed after every single append:
            // nothing acked may still be sitting in the page cache.
            assert_eq!(storage.pending_len(), 0);
        }
        assert_eq!(j.replay_collect().unwrap(), records);
    }

    #[test]
    fn reset_truncates_and_len_tracks() {
        let storage = CrashStorage::new();
        let j = GroupCommitJournal::new(storage, GroupCommitConfig::default()).unwrap();
        j.append(&JournalRecord::QueueCreated { queue: "A".into() })
            .unwrap();
        assert!(j.len_bytes() > 0);
        j.reset().unwrap();
        assert_eq!(j.len_bytes(), 0);
        assert!(j.replay_collect().unwrap().is_empty());
        j.append(&JournalRecord::QueueCreated { queue: "B".into() })
            .unwrap();
        assert_eq!(j.replay_collect().unwrap().len(), 1);
    }

    #[test]
    fn storage_failure_is_sticky_and_propagates() {
        let j = GroupCommitJournal::new(CrashStorage::failing(), GroupCommitConfig::default())
            .unwrap();
        let rec = JournalRecord::QueueCreated { queue: "A".into() };
        assert!(matches!(j.append(&rec), Err(MqError::Io(_))));
        // Later appends fail fast without touching storage again.
        assert!(matches!(j.append(&rec), Err(MqError::Io(_))));
        assert!(matches!(j.flush(), Err(MqError::Io(_))));
    }

    #[test]
    fn concurrent_appenders_share_fsyncs() {
        // A sync slow enough (1ms) that 8 free-running appenders pile up
        // behind each batch: every record must survive, and the whole
        // point of group commit — fsyncs ≪ appends — must hold.
        let storage = CrashStorage::with_sync_delay(Duration::from_millis(1));
        let j =
            GroupCommitJournal::new(storage.clone(), GroupCommitConfig::default()).unwrap();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let j = j.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        j.append(&JournalRecord::QueueCreated {
                            queue: format!("Q{t}-{i}"),
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let replayed = j.replay_collect().unwrap();
        assert_eq!(replayed.len(), 800);
        // Every (thread, i) record is present exactly once.
        let mut names: Vec<String> = replayed
            .iter()
            .map(|r| match r {
                JournalRecord::QueueCreated { queue } => queue.clone(),
                other => panic!("unexpected record {other:?}"),
            })
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 800);
        let fsyncs = j.metrics().fsyncs.get();
        assert_eq!(j.metrics().appends.get(), 800);
        assert_eq!(storage.syncs(), fsyncs);
        assert!(
            fsyncs < 800 / 4,
            "group commit must share fsyncs: {fsyncs} fsyncs for 800 appends"
        );
        assert_eq!(j.metrics().batch_size.sum(), 800);
        assert!(j.metrics().group_waits.get() > 0);
    }

    #[test]
    fn max_delay_lingers_to_widen_batches() {
        let storage = CrashStorage::new();
        let config = GroupCommitConfig {
            max_delay: Duration::from_millis(5),
            ..GroupCommitConfig::default()
        };
        let j = GroupCommitJournal::new(storage, config).unwrap();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let j = j.clone();
                std::thread::spawn(move || {
                    for i in 0..10 {
                        j.append(&JournalRecord::QueueCreated {
                            queue: format!("D{t}-{i}"),
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(j.replay_collect().unwrap().len(), 40);
        assert!(j.metrics().fsyncs.get() <= 40);
    }

    // ---------------------------------------------------- crash safety --

    fn arb_record() -> impl Strategy<Value = JournalRecord> {
        prop_oneof![
            "[A-Z]{1,8}".prop_map(|queue| JournalRecord::QueueCreated { queue }),
            ("[A-Z]{1,8}", "[a-z]{0,32}").prop_map(|(queue, payload)| JournalRecord::Put {
                queue,
                message: Message::text(payload).persistent(true).build(),
            }),
            "[A-Z]{1,8}".prop_map(|queue| JournalRecord::Get {
                queue,
                message_id: crate::message::MessageId::generate(),
            }),
            // Checkpoint records ride the same framing as everything else,
            // so the prefix-durability property must hold for them too —
            // a torn CheckpointEnd is exactly the crash window recovery's
            // buffer-and-swap exists for.
            (0u64..8, proptest::collection::vec("[A-Z]{1,8}", 0..3)).prop_map(
                |(checkpoint_id, queues)| JournalRecord::CheckpointStart {
                    checkpoint_id,
                    queues,
                    dedup: vec![(checkpoint_id, u128::from(checkpoint_id))],
                }
            ),
            (0u64..8).prop_map(|checkpoint_id| JournalRecord::CheckpointEnd { checkpoint_id }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The durability contract under a crash at an arbitrary point:
        /// every *acknowledged* append is replayed; unacknowledged appends
        /// racing the crash survive as a clean prefix (a torn tail is
        /// dropped, never an error, never a gap, never a reorder).
        #[test]
        fn crash_recovers_exactly_a_durable_prefix(
            acked in proptest::collection::vec(arb_record(), 0..24),
            unacked in proptest::collection::vec(arb_record(), 0..6),
            tear in 0usize..4096,
        ) {
            let storage = CrashStorage::new();
            let j = GroupCommitJournal::new(storage.clone(), GroupCommitConfig::default())
                .unwrap();
            for r in &acked {
                j.append(r).unwrap();
            }
            // Appends that reached the storage's volatile cache but whose
            // ack never came back: written, not yet synced, when the
            // machine dies.
            for r in &unacked {
                storage.write_frames(&encode_frame(r)).unwrap();
            }
            let image = storage.crash_image(tear);
            let replayed = decode_frames(&image).unwrap();
            // All acked records are there, in order...
            prop_assert!(replayed.len() >= acked.len());
            prop_assert_eq!(&replayed[..acked.len()], &acked[..]);
            // ...and anything beyond them is a prefix of the in-flight
            // tail, with the torn final record (if any) dropped.
            let extra = &replayed[acked.len()..];
            prop_assert!(extra.len() <= unacked.len());
            prop_assert_eq!(extra, &unacked[..extra.len()]);
        }
    }
}
