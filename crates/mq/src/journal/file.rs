//! File-backed journal: CRC-framed records in an append-only file.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::error::{MqError, MqResult};

use super::{encode_frame, FrameStream, GroupStorage, Journal, JournalRecord, ReplaySink};
use crate::codec::WireDecode;

/// File-backed journal with `[len:u32][crc:u32][record bytes]` framing.
pub struct FileJournal {
    path: PathBuf,
    file: Mutex<File>,
    bytes: AtomicU64,
    sync_every_append: bool,
}

impl fmt::Debug for FileJournal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileJournal")
            .field("path", &self.path)
            .field("bytes", &Journal::len_bytes(self))
            .finish()
    }
}

impl FileJournal {
    /// Opens (or creates) a journal file at `path`.
    ///
    /// With `sync_every_append` the file is fsynced after every record
    /// (durable but slow — one `sync_data` per append); without it,
    /// durability relies on OS buffering, which is adequate for experiments.
    /// For durable *and* fast appends, wrap the journal in a
    /// [`super::GroupCommitJournal`], which batches many appends into one
    /// fsync (leave `sync_every_append` off: the wrapper owns syncing).
    ///
    /// # Errors
    ///
    /// Propagates file-open failures.
    pub fn open(
        path: impl AsRef<Path>,
        sync_every_append: bool,
    ) -> MqResult<std::sync::Arc<FileJournal>> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        let len = file.metadata()?.len();
        Ok(std::sync::Arc::new(FileJournal {
            path,
            file: Mutex::new(file),
            bytes: AtomicU64::new(len),
            sync_every_append,
        }))
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Journal for FileJournal {
    fn append(&self, record: &JournalRecord) -> MqResult<()> {
        let frame = encode_frame(record);
        let mut file = self.file.lock();
        file.write_all(&frame)?;
        if self.sync_every_append {
            file.sync_data()?;
        }
        self.bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn replay(&self, sink: &mut ReplaySink<'_>) -> MqResult<()> {
        // Stream from a dedicated read handle so replay memory is bounded
        // by one frame and the append cursor is never disturbed.
        let reader = OpenOptions::new().read(true).open(&self.path)?;
        let total = reader.metadata()?.len();
        let mut frames = FrameStream::new(BufReader::new(reader), total);
        while let Some((offset, body)) = frames.next_body()? {
            match JournalRecord::from_bytes(body) {
                Ok(rec) => sink(rec)?,
                Err(e) => {
                    return Err(MqError::JournalCorrupt {
                        offset,
                        reason: format!("undecodable record: {e}"),
                    })
                }
            }
        }
        Ok(())
    }

    fn reset(&self) -> MqResult<()> {
        let mut file = self.file.lock();
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        self.bytes.store(0, Ordering::Relaxed);
        Ok(())
    }

    fn len_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

impl GroupStorage for FileJournal {
    fn write_frames(&self, frames: &[u8]) -> MqResult<()> {
        let mut file = self.file.lock();
        file.write_all(frames)?;
        self.bytes.fetch_add(frames.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn sync(&self) -> MqResult<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }

    fn replay(&self, sink: &mut ReplaySink<'_>) -> MqResult<()> {
        Journal::replay(self, sink)
    }

    fn reset(&self) -> MqResult<()> {
        Journal::reset(self)
    }

    fn len_bytes(&self) -> u64 {
        Journal::len_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{sample_records, temp_path};
    use super::*;
    use crate::error::MqError;
    use std::fs::OpenOptions;

    #[test]
    fn file_journal_roundtrip_and_reopen() {
        let path = temp_path("roundtrip");
        let records = sample_records();
        {
            let j = FileJournal::open(&path, true).unwrap();
            for r in &records {
                j.append(r).unwrap();
            }
            assert_eq!(Journal::replay_collect(j.as_ref()).unwrap(), records);
        }
        // Reopen: records persist across process-style restarts.
        let j = FileJournal::open(&path, false).unwrap();
        assert_eq!(Journal::replay_collect(j.as_ref()).unwrap(), records);
        // Appends after replay land after existing records.
        j.append(&JournalRecord::QueueCreated { queue: "Q9".into() })
            .unwrap();
        let all = Journal::replay_collect(j.as_ref()).unwrap();
        assert_eq!(all.len(), records.len() + 1);
        assert_eq!(
            all.last().unwrap(),
            &JournalRecord::QueueCreated { queue: "Q9".into() }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_journal_tolerates_torn_tail() {
        let path = temp_path("torn");
        let j = FileJournal::open(&path, true).unwrap();
        j.append(&JournalRecord::QueueCreated { queue: "A".into() })
            .unwrap();
        j.append(&JournalRecord::QueueCreated { queue: "B".into() })
            .unwrap();
        drop(j);
        // Truncate mid-record to simulate a torn final write.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let j = FileJournal::open(&path, true).unwrap();
        let recs = Journal::replay_collect(j.as_ref()).unwrap();
        assert_eq!(
            recs,
            vec![JournalRecord::QueueCreated { queue: "A".into() }]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_journal_detects_midfile_corruption() {
        let path = temp_path("corrupt");
        let j = FileJournal::open(&path, true).unwrap();
        j.append(&JournalRecord::QueueCreated { queue: "A".into() })
            .unwrap();
        j.append(&JournalRecord::QueueCreated { queue: "B".into() })
            .unwrap();
        drop(j);
        // Flip a byte inside the *first* record's body.
        let mut raw = std::fs::read(&path).unwrap();
        raw[10] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let j = FileJournal::open(&path, true).unwrap();
        match Journal::replay_collect(j.as_ref()) {
            Err(MqError::JournalCorrupt { offset: 0, .. }) => {}
            other => panic!("expected corruption at offset 0, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_journal_reset_truncates() {
        let path = temp_path("reset");
        let j = FileJournal::open(&path, false).unwrap();
        j.append(&JournalRecord::QueueCreated { queue: "A".into() })
            .unwrap();
        assert!(Journal::len_bytes(j.as_ref()) > 0);
        Journal::reset(j.as_ref()).unwrap();
        assert_eq!(Journal::len_bytes(j.as_ref()), 0);
        assert!(Journal::replay_collect(j.as_ref()).unwrap().is_empty());
        j.append(&JournalRecord::QueueCreated { queue: "B".into() })
            .unwrap();
        assert_eq!(Journal::replay_collect(j.as_ref()).unwrap().len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
