//! Segmented journal: the journal *as* the primary store.
//!
//! Where [`super::FileJournal`] is one flat append-only file,
//! [`SegmentedJournal`] is a directory of per-queue **streams**, each a
//! sequence of bounded **segment** files:
//!
//! ```text
//! root/
//!   @control/00000000000000000000.seg      queue DDL, TxCommit, checkpoints
//!   ORDERS/00000000000000000104.seg        ORDERS' puts/gets/expiries…
//!   ORDERS/00000000000000020381.seg        …rolled at roll_bytes
//!   DS%2EACK%2EQ/00000000000000000031.seg  names percent-encoded for the fs
//! ```
//!
//! Every record is stamped with a global **LSN** at append time; a frame on
//! disk is the standard `[len:u32][crc:u32]` envelope over
//! `[lsn:u64][record bytes]`. Replay opens every segment of every stream
//! and k-way merges them by LSN, reproducing exact append order — so the
//! queue-manager recovery logic is byte-for-byte the same as over a flat
//! journal, while the storage layout gives each queue its own files.
//!
//! Why this shape:
//! * **Bounded segments** mean checkpoint truncation is `unlink()`, not a
//!   rewrite: [`SegmentedJournal::write_checkpoint`] writes the snapshot
//!   into one fresh control segment, fsyncs it, and deletes every other
//!   segment file. Recovery cost becomes O(live state), not O(history).
//! * **Per-queue streams** keep one queue's churn from interleaving with
//!   another's, so a future per-queue retention pass can drop whole
//!   segments once every record in them is dead.
//! * **Crash safety** falls out of the checkpoint record pair: a crash
//!   mid-checkpoint leaves a `CheckpointStart` without its matching end
//!   (highest LSNs, so replayed last); recovery's buffer-and-swap discards
//!   the torn snapshot and the not-yet-deleted history still wins. A crash
//!   mid-delete leaves a *complete* checkpoint plus stale segments below
//!   it; the swap replaces them.
//!
//! Records route to streams by the queue they touch: `Put`/`Get`/`Expired`
//! go to their queue's stream, `RelayCustody` to its transmission queue's
//! stream, and everything spanning queues (`QueueCreated`/`QueueDeleted`,
//! `TxCommit`, the checkpoint pair) to the reserved `@control` stream.
//! Queue names are percent-encoded for the filesystem (the `@` of the
//! control stream is escaped in real queue names, so a queue literally
//! named `@control` cannot collide).

use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use parking_lot::Mutex;

use crate::codec::{WireDecode, WireEncode};
use crate::error::{MqError, MqResult};

use super::{encode_frame_body, FrameStream, Journal, JournalRecord, ReplaySink};

/// Directory name of the stream holding queue DDL, transaction commits and
/// checkpoint records. Real queue names percent-encode `@`, so this never
/// collides with a queue's stream directory.
const CONTROL_STREAM: &str = "@control";

/// Segment file extension; anything else in a stream directory is ignored.
const SEGMENT_EXT: &str = "seg";

/// Tuning for a [`SegmentedJournal`].
#[derive(Debug, Clone)]
pub struct SegmentConfig {
    /// Roll a stream to a fresh segment file once the active one reaches
    /// this many bytes. Smaller segments mean finer-grained truncation at
    /// slightly more file churn.
    pub roll_bytes: u64,
    /// Fsync the active segment after every append. Off by default: pair
    /// the store with periodic checkpoints (or accept OS-buffer durability)
    /// the way [`super::FileJournal`] does in experiments.
    pub sync_every_append: bool,
}

impl Default for SegmentConfig {
    fn default() -> SegmentConfig {
        SegmentConfig {
            roll_bytes: 8 << 20,
            sync_every_append: false,
        }
    }
}

/// The active (last) segment of one stream, opened for appending.
struct ActiveSegment {
    file: File,
    /// Bytes in the active segment (drives rolling).
    seg_bytes: u64,
}

struct Inner {
    /// Stream name (decoded) → its active segment.
    streams: HashMap<String, ActiveSegment>,
    /// Next LSN to stamp; strictly increasing across all streams.
    next_lsn: u64,
    /// Total bytes across every live segment file.
    total_bytes: u64,
}

/// Directory-of-segments journal. See the module docs for the layout.
pub struct SegmentedJournal {
    root: PathBuf,
    config: SegmentConfig,
    /// Append state. Never held while a replay sink or a checkpoint
    /// snapshot iterator runs: both reach back into queue stores, and the
    /// put path locks store-then-journal.
    // lint: never-hold(SegmentedJournal.inner) across sink
    // lint: never-hold(SegmentedJournal.inner) across snapshot_persistent
    inner: Mutex<Inner>,
    /// Mirror of `Inner::total_bytes` so `len_bytes` never takes the lock.
    bytes: AtomicU64,
}

impl fmt::Debug for SegmentedJournal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SegmentedJournal")
            .field("root", &self.root)
            .field("bytes", &self.bytes.load(Ordering::Relaxed))
            .finish()
    }
}

/// Percent-encodes a queue name into a filesystem-safe directory name.
/// Alphanumerics plus `.`, `_` and `-` pass through; everything else —
/// including `/`, `%` and the control stream's `@` — becomes `%XX` per
/// byte, so decoding is unambiguous and distinct names stay distinct.
fn encode_stream_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'.' | b'_' | b'-' => out.push(b as char),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// The stream a record belongs to: the queue it touches, or the control
/// stream for records spanning queues.
fn stream_of(record: &JournalRecord) -> &str {
    match record {
        JournalRecord::Put { queue, .. }
        | JournalRecord::Get { queue, .. }
        | JournalRecord::Expired { queue, .. } => queue,
        JournalRecord::RelayCustody { xmit_queue, .. } => xmit_queue,
        JournalRecord::QueueCreated { .. }
        | JournalRecord::QueueDeleted { .. }
        | JournalRecord::TxCommit { .. }
        | JournalRecord::CheckpointStart { .. }
        | JournalRecord::CheckpointEnd { .. } => CONTROL_STREAM,
    }
}

/// Encodes one segment frame: the standard `[len][crc]` envelope over
/// `[lsn:u64 LE][record bytes]`.
fn encode_segment_frame(lsn: u64, record: &JournalRecord) -> Vec<u8> {
    let record_bytes = record.to_bytes();
    let mut body = Vec::with_capacity(8 + record_bytes.len());
    body.extend_from_slice(&lsn.to_le_bytes());
    body.extend_from_slice(&record_bytes);
    encode_frame_body(&body)
}

/// Splits a CRC-verified frame body back into `(lsn, record)`.
fn decode_segment_body(offset: u64, body: Bytes) -> MqResult<(u64, JournalRecord)> {
    let lsn_bytes: [u8; 8] = body
        .get(..8)
        .and_then(|b| b.try_into().ok())
        .ok_or_else(|| MqError::JournalCorrupt {
            offset,
            reason: "segment frame shorter than its LSN stamp".into(),
        })?;
    let lsn = u64::from_le_bytes(lsn_bytes);
    let record = JournalRecord::from_bytes(body.slice(8..body.len())).map_err(|e| {
        MqError::JournalCorrupt {
            offset,
            reason: format!("undecodable record: {e}"),
        }
    })?;
    Ok((lsn, record))
}

fn segment_file_name(first_lsn: u64) -> String {
    format!("{first_lsn:020}.{SEGMENT_EXT}")
}

/// One stream's current head during the replay k-way merge: its LSN,
/// the owning cursor's index, and the already-decoded record. Ordered
/// by `(lsn, idx)` only — the record rides along.
struct Head {
    lsn: u64,
    idx: usize,
    record: JournalRecord,
}

impl PartialEq for Head {
    fn eq(&self, other: &Self) -> bool {
        self.lsn == other.lsn && self.idx == other.idx
    }
}

impl Eq for Head {}

impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Head {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.lsn, self.idx).cmp(&(other.lsn, other.idx))
    }
}

/// Lists a stream's segment files sorted by first LSN (their file names
/// zero-pad the LSN, so lexicographic order is numeric order).
fn list_segments(stream_dir: &Path) -> MqResult<Vec<PathBuf>> {
    let mut segs = Vec::new();
    for entry in std::fs::read_dir(stream_dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) == Some(SEGMENT_EXT) {
            segs.push(path);
        }
    }
    segs.sort();
    Ok(segs)
}

/// Lists every stream directory under the root.
fn list_streams(root: &Path) -> MqResult<Vec<PathBuf>> {
    let mut dirs = Vec::new();
    for entry in std::fs::read_dir(root)? {
        let path = entry?.path();
        if path.is_dir() {
            dirs.push(path);
        }
    }
    dirs.sort();
    Ok(dirs)
}

/// Flushes a directory's entry table so freshly created (or unlinked)
/// segment files survive a power cut before their parent does.
fn sync_dir(dir: &Path) -> MqResult<()> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// One stream's cursor during replay: frames of the current segment, then
/// each later segment in LSN order.
struct StreamCursor {
    frames: FrameStream<BufReader<File>>,
    later: std::vec::IntoIter<PathBuf>,
}

impl StreamCursor {
    fn open(segments: Vec<PathBuf>) -> MqResult<Option<StreamCursor>> {
        let mut later = segments.into_iter();
        let Some(first) = later.next() else {
            return Ok(None);
        };
        Ok(Some(StreamCursor {
            frames: Self::open_segment(&first)?,
            later,
        }))
    }

    fn open_segment(path: &Path) -> MqResult<FrameStream<BufReader<File>>> {
        let file = OpenOptions::new().read(true).open(path)?;
        let total = file.metadata()?.len();
        Ok(FrameStream::new(BufReader::new(file), total))
    }

    /// Next `(lsn, record)` of this stream, crossing segment boundaries.
    fn next(&mut self) -> MqResult<Option<(u64, JournalRecord)>> {
        loop {
            if let Some((offset, body)) = self.frames.next_body()? {
                return decode_segment_body(offset, body).map(Some);
            }
            match self.later.next() {
                Some(path) => self.frames = Self::open_segment(&path)?,
                None => return Ok(None),
            }
        }
    }
}

impl SegmentedJournal {
    /// Opens (or creates) a segmented journal rooted at `root`.
    ///
    /// Reopening scans each stream's *last* segment to recover the global
    /// LSN cursor and truncates any torn final frame left by a crash, so
    /// subsequent appends never land behind garbage.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures and mid-segment corruption.
    pub fn open(
        root: impl AsRef<Path>,
        config: SegmentConfig,
    ) -> MqResult<std::sync::Arc<SegmentedJournal>> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        let mut streams = HashMap::new();
        let mut next_lsn = 0u64;
        let mut total_bytes = 0u64;
        for dir in list_streams(&root)? {
            let segments = list_segments(&dir)?;
            let Some(last) = segments.last() else {
                continue;
            };
            for seg in &segments[..segments.len() - 1] {
                total_bytes += std::fs::metadata(seg)?.len();
            }
            // Scan the last segment: find the stream's final LSN and the
            // byte length of its valid prefix (a torn tail is healed by
            // truncation so appends resume on a clean boundary).
            let mut frames = StreamCursor::open_segment(last)?;
            let mut valid_len = 0u64;
            while let Some((offset, body)) = frames.next_body()? {
                let (lsn, _) = decode_segment_body(offset, body.clone())?;
                next_lsn = next_lsn.max(lsn + 1);
                valid_len = offset + 8 + body.len() as u64;
            }
            if valid_len < std::fs::metadata(last)?.len() {
                let f = OpenOptions::new().write(true).open(last)?;
                f.set_len(valid_len)?;
                f.sync_data()?;
            }
            total_bytes += valid_len;
            let name = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_owned();
            let file = OpenOptions::new().append(true).open(last)?;
            streams.insert(
                name,
                ActiveSegment {
                    file,
                    seg_bytes: valid_len,
                },
            );
        }
        let journal = SegmentedJournal {
            root,
            config,
            inner: Mutex::new(Inner {
                streams,
                next_lsn,
                total_bytes,
            }),
            bytes: AtomicU64::new(total_bytes),
        };
        Ok(std::sync::Arc::new(journal))
    }

    /// The journal's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of live segment files (tests and tooling).
    ///
    /// # Errors
    ///
    /// Propagates directory-listing failures.
    pub fn segment_count(&self) -> MqResult<usize> {
        let _guard = self.inner.lock();
        let mut n = 0;
        for dir in list_streams(&self.root)? {
            n += list_segments(&dir)?.len();
        }
        Ok(n)
    }

    /// Returns the stream's active segment, creating the stream directory
    /// and/or rolling to a fresh segment (named after `lsn`) as needed.
    fn active_segment<'a>(
        &self,
        inner: &'a mut Inner,
        stream: &str,
        lsn: u64,
    ) -> MqResult<&'a mut ActiveSegment> {
        let encoded = if stream == CONTROL_STREAM {
            CONTROL_STREAM.to_owned()
        } else {
            encode_stream_name(stream)
        };
        let needs_roll = inner
            .streams
            .get(&encoded)
            .is_some_and(|s| s.seg_bytes >= self.config.roll_bytes);
        if needs_roll {
            // Make the retiring segment durable before moving on: a roll is
            // the one moment a stream's tail stops being the append target.
            if let Some(retiring) = inner.streams.remove(&encoded) {
                retiring.file.sync_data()?;
            }
        }
        match inner.streams.entry(encoded) {
            std::collections::hash_map::Entry::Occupied(e) => Ok(e.into_mut()),
            std::collections::hash_map::Entry::Vacant(e) => {
                let dir = self.root.join(e.key());
                std::fs::create_dir_all(&dir)?;
                let path = dir.join(segment_file_name(lsn));
                let file = OpenOptions::new().create(true).append(true).open(&path)?;
                sync_dir(&dir)?;
                Ok(e.insert(ActiveSegment { file, seg_bytes: 0 }))
            }
        }
    }
}

impl Journal for SegmentedJournal {
    fn append(&self, record: &JournalRecord) -> MqResult<()> {
        let mut inner = self.inner.lock();
        let lsn = inner.next_lsn;
        let frame = encode_segment_frame(lsn, record);
        let sync = self.config.sync_every_append;
        let segment = self.active_segment(&mut inner, stream_of(record), lsn)?;
        segment.file.write_all(&frame)?;
        if sync {
            segment.file.sync_data()?;
        }
        segment.seg_bytes += frame.len() as u64;
        inner.next_lsn = lsn + 1;
        inner.total_bytes += frame.len() as u64;
        self.bytes.store(inner.total_bytes, Ordering::Relaxed);
        Ok(())
    }

    fn replay(&self, sink: &mut ReplaySink<'_>) -> MqResult<()> {
        // Lock-free, like `FileJournal::replay`: replay happens on a
        // quiesced journal (recovery) through dedicated read handles, and
        // the sink reaches into queue stores — holding the append lock
        // here would invert the store-then-journal order of the put path.
        let mut cursors = Vec::new();
        for dir in list_streams(&self.root)? {
            if let Some(cursor) = StreamCursor::open(list_segments(&dir)?)? {
                cursors.push(cursor);
            }
        }
        // K-way merge by LSN. Each stream is internally LSN-ascending, so a
        // heap over the head of each stream yields global append order. The
        // head carries its record so popping yields it directly.
        let mut heads: BinaryHeap<std::cmp::Reverse<Head>> = BinaryHeap::new();
        for (idx, cursor) in cursors.iter_mut().enumerate() {
            if let Some((lsn, record)) = cursor.next()? {
                heads.push(std::cmp::Reverse(Head { lsn, idx, record }));
            }
        }
        while let Some(std::cmp::Reverse(head)) = heads.pop() {
            let idx = head.idx;
            sink(head.record)?;
            if let Some((lsn, record)) = cursors[idx].next()? {
                heads.push(std::cmp::Reverse(Head { lsn, idx, record }));
            }
        }
        Ok(())
    }

    fn write_checkpoint(&self, records: &mut dyn Iterator<Item = JournalRecord>) -> MqResult<()> {
        // 1. Write the whole snapshot into one fresh control segment. The
        //    snapshot's Puts go here, not to their queue streams: the
        //    checkpoint must be self-contained so step 3 can delete every
        //    other file.
        //
        //    The append lock is NOT held while the iterator is pulled:
        //    the snapshot reaches back into queue stores, and the put/get
        //    path locks store-then-journal — holding the journal lock
        //    across those store reads would invert that order. Callers
        //    quiesce appenders for the whole call (the queue manager
        //    holds its mutation gate exclusively); a concurrent append
        //    would land in a segment step 3 is about to unlink anyway.
        let control_dir = self.root.join(CONTROL_STREAM);
        std::fs::create_dir_all(&control_dir)?;
        let first_lsn = self.inner.lock().next_lsn;
        let path = control_dir.join(segment_file_name(first_lsn));
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut seg_bytes = 0u64;
        let mut next_lsn = first_lsn;
        for record in records {
            let lsn = next_lsn;
            next_lsn = lsn + 1;
            let frame = encode_segment_frame(lsn, &record);
            file.write_all(&frame)?;
            seg_bytes += frame.len() as u64;
        }
        // 2. Make it durable — data, then the directory entry — before any
        //    history below it is touched.
        file.sync_data()?;
        sync_dir(&control_dir)?;
        let mut inner = self.inner.lock();
        inner.next_lsn = next_lsn.max(inner.next_lsn);
        // 3. Truncation is now just unlink: every other segment is wholly
        //    below the checkpoint. A crash part-way leaves stale segments
        //    that replay's buffer-and-swap discards, so order is free.
        for dir in list_streams(&self.root)? {
            for seg in list_segments(&dir)? {
                if seg != path {
                    std::fs::remove_file(&seg)?;
                }
            }
            if dir != control_dir {
                // Ignore failures: a racing create would repopulate it.
                std::fs::remove_dir(&dir).ok();
            }
        }
        inner.streams.clear();
        inner
            .streams
            .insert(CONTROL_STREAM.to_owned(), ActiveSegment { file, seg_bytes });
        inner.total_bytes = seg_bytes;
        self.bytes.store(seg_bytes, Ordering::Relaxed);
        Ok(())
    }

    fn reset(&self) -> MqResult<()> {
        let mut inner = self.inner.lock();
        for dir in list_streams(&self.root)? {
            std::fs::remove_dir_all(&dir)?;
        }
        inner.streams.clear();
        inner.total_bytes = 0;
        self.bytes.store(0, Ordering::Relaxed);
        Ok(())
    }

    fn len_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{sample_records, temp_path};
    use super::*;
    use crate::message::Message;

    fn temp_dir(name: &str) -> PathBuf {
        let path = temp_path(name);
        std::fs::remove_dir_all(&path).ok();
        path
    }

    fn small_config() -> SegmentConfig {
        SegmentConfig {
            roll_bytes: 256,
            sync_every_append: false,
        }
    }

    fn put(queue: &str, text: &str) -> JournalRecord {
        JournalRecord::Put {
            queue: queue.into(),
            message: Message::text(text).persistent(true).build(),
        }
    }

    #[test]
    fn roundtrip_preserves_append_order_across_streams() {
        let root = temp_dir("seg-roundtrip");
        let records = sample_records();
        {
            let j = SegmentedJournal::open(&root, SegmentConfig::default()).unwrap();
            for r in &records {
                j.append(r).unwrap();
            }
            assert_eq!(j.replay_collect().unwrap(), records);
        }
        // Reopen: same records, same order, appends continue after them.
        let j = SegmentedJournal::open(&root, SegmentConfig::default()).unwrap();
        assert_eq!(j.replay_collect().unwrap(), records);
        let late = put("Q.LATE", "tail");
        j.append(&late).unwrap();
        let all = j.replay_collect().unwrap();
        assert_eq!(all.len(), records.len() + 1);
        assert_eq!(all.last().unwrap(), &late);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn streams_roll_into_bounded_segments() {
        let root = temp_dir("seg-roll");
        let j = SegmentedJournal::open(&root, small_config()).unwrap();
        for i in 0..64 {
            j.append(&put("Q", &format!("message {i}"))).unwrap();
        }
        assert!(
            j.segment_count().unwrap() > 2,
            "64 puts at roll_bytes=256 must span several segments"
        );
        let payloads: Vec<_> = j
            .replay_collect()
            .unwrap()
            .iter()
            .map(|r| match r {
                JournalRecord::Put { message, .. } => message.payload_str().unwrap().to_owned(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(payloads.len(), 64);
        assert_eq!(payloads[0], "message 0");
        assert_eq!(payloads[63], "message 63");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn hostile_queue_names_get_distinct_streams() {
        let root = temp_dir("seg-names");
        let j = SegmentedJournal::open(&root, SegmentConfig::default()).unwrap();
        // Path separators, the control stream's '@', unicode, and the '%'
        // escape character itself must all stay distinct and replayable.
        let names = ["a/b", "@control", "naïve queue", "100%"];
        for n in &names {
            j.append(&put(n, "payload")).unwrap();
        }
        drop(j);
        let j = SegmentedJournal::open(&root, SegmentConfig::default()).unwrap();
        let replayed = j.replay_collect().unwrap();
        let queues: Vec<_> = replayed
            .iter()
            .map(|r| match r {
                JournalRecord::Put { queue, .. } => queue.clone(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(queues, names);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn checkpoint_truncates_to_one_segment() {
        let root = temp_dir("seg-checkpoint");
        let j = SegmentedJournal::open(&root, small_config()).unwrap();
        for i in 0..50 {
            j.append(&put("Q", &format!("old {i}"))).unwrap();
            j.append(&JournalRecord::Get {
                queue: "Q".into(),
                message_id: crate::message::MessageId::generate(),
            })
            .unwrap();
        }
        let before = j.len_bytes();
        let snapshot = vec![
            JournalRecord::CheckpointStart {
                checkpoint_id: 7,
                queues: vec!["Q".into()],
                dedup: Vec::new(),
            },
            put("Q", "live"),
            JournalRecord::CheckpointEnd { checkpoint_id: 7 },
        ];
        j.write_checkpoint(&mut snapshot.clone().into_iter()).unwrap();
        assert!(j.len_bytes() < before, "truncation must shrink the store");
        assert_eq!(j.segment_count().unwrap(), 1, "only the checkpoint remains");
        assert_eq!(j.replay_collect().unwrap(), snapshot);
        // The store keeps working after truncation, across a reopen.
        let after = put("Q", "after");
        j.append(&after).unwrap();
        drop(j);
        let j = SegmentedJournal::open(&root, small_config()).unwrap();
        let all = j.replay_collect().unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(all.last().unwrap(), &after);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn torn_tail_is_healed_on_reopen() {
        let root = temp_dir("seg-torn");
        let j = SegmentedJournal::open(&root, SegmentConfig::default()).unwrap();
        let keep = put("Q", "keep");
        j.append(&keep).unwrap();
        j.append(&put("Q", "torn")).unwrap();
        drop(j);
        let seg = list_segments(&root.join(encode_stream_name("Q"))).unwrap()[0].clone();
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let j = SegmentedJournal::open(&root, SegmentConfig::default()).unwrap();
        assert_eq!(j.replay_collect().unwrap(), vec![keep.clone()]);
        // The torn bytes were truncated away, so new appends replay cleanly
        // behind the surviving record rather than vanishing behind garbage.
        let fresh = put("Q", "fresh");
        j.append(&fresh).unwrap();
        assert_eq!(j.replay_collect().unwrap(), vec![keep, fresh]);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn midfile_corruption_is_reported() {
        let root = temp_dir("seg-corrupt");
        let j = SegmentedJournal::open(&root, SegmentConfig::default()).unwrap();
        j.append(&put("Q", "first")).unwrap();
        j.append(&put("Q", "second")).unwrap();
        drop(j);
        let seg = list_segments(&root.join(encode_stream_name("Q"))).unwrap()[0].clone();
        let mut raw = std::fs::read(&seg).unwrap();
        raw[12] ^= 0xFF; // inside the first frame's body
        std::fs::write(&seg, &raw).unwrap();
        let j = SegmentedJournal::open(&root, SegmentConfig::default());
        // Either open (tail scan) or replay reports the corruption.
        let err = match j {
            Err(e) => e,
            Ok(j) => j.replay_collect().unwrap_err(),
        };
        assert!(matches!(err, MqError::JournalCorrupt { .. }), "got {err:?}");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn crash_between_checkpoint_and_delete_recovers_checkpoint_only() {
        let root = temp_dir("seg-crash-late");
        let j = SegmentedJournal::open(&root, small_config()).unwrap();
        for i in 0..20 {
            j.append(&put("Q", &format!("old {i}"))).unwrap();
        }
        // Simulate "checkpoint durable, deletes lost": snapshot the whole
        // directory, checkpoint, then restore the pre-delete segment files
        // next to the checkpoint segment.
        let backup = temp_dir("seg-crash-late-backup");
        copy_tree(&root, &backup);
        let snapshot = vec![
            JournalRecord::CheckpointStart {
                checkpoint_id: 1,
                queues: vec!["Q".into()],
                dedup: Vec::new(),
            },
            put("Q", "live"),
            JournalRecord::CheckpointEnd { checkpoint_id: 1 },
        ];
        j.write_checkpoint(&mut snapshot.clone().into_iter()).unwrap();
        drop(j);
        copy_tree(&backup, &root); // stale history reappears
        let j = SegmentedJournal::open(&root, small_config()).unwrap();
        let replayed = j.replay_collect().unwrap();
        // Replay yields history then (highest LSNs) the complete checkpoint;
        // a recovery driver's buffer-and-swap keeps only the checkpoint.
        assert_eq!(&replayed[replayed.len() - 3..], &snapshot[..]);
        std::fs::remove_dir_all(&root).ok();
        std::fs::remove_dir_all(&backup).ok();
    }

    #[test]
    fn crash_mid_checkpoint_write_leaves_history_intact() {
        let root = temp_dir("seg-crash-early");
        let j = SegmentedJournal::open(&root, small_config()).unwrap();
        let history: Vec<_> = (0..5).map(|i| put("Q", &format!("old {i}"))).collect();
        for r in &history {
            j.append(r).unwrap();
        }
        let backup = temp_dir("seg-crash-early-backup");
        copy_tree(&root, &backup);
        let snapshot = vec![
            JournalRecord::CheckpointStart {
                checkpoint_id: 2,
                queues: vec!["Q".into()],
                dedup: Vec::new(),
            },
            put("Q", "live"),
            JournalRecord::CheckpointEnd { checkpoint_id: 2 },
        ];
        j.write_checkpoint(&mut snapshot.into_iter()).unwrap();
        drop(j);
        // Simulate a crash mid-checkpoint-write: history still on disk, the
        // new control segment torn before its CheckpointEnd frame.
        let control = list_segments(&root.join(CONTROL_STREAM)).unwrap();
        let ckpt_seg = control.last().unwrap().clone();
        let len = std::fs::metadata(&ckpt_seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&ckpt_seg).unwrap();
        f.set_len(len - 10).unwrap(); // tear the final (CheckpointEnd) frame
        drop(f);
        copy_tree(&backup, &root);
        let j = SegmentedJournal::open(&root, small_config()).unwrap();
        let replayed = j.replay_collect().unwrap();
        // All history survives; the torn checkpoint has a Start but no End,
        // which recovery's buffer-and-swap discards.
        assert_eq!(&replayed[..history.len()], &history[..]);
        let ends = replayed
            .iter()
            .filter(|r| matches!(r, JournalRecord::CheckpointEnd { .. }))
            .count();
        assert_eq!(ends, 0, "the torn checkpoint must not present an end marker");
        std::fs::remove_dir_all(&root).ok();
        std::fs::remove_dir_all(&backup).ok();
    }

    /// Copies every regular file in `src` into `dst` (one level of stream
    /// dirs), preserving relative paths and skipping files already present.
    fn copy_tree(src: &Path, dst: &Path) {
        for dir in list_streams(src).unwrap() {
            let rel = dir.file_name().unwrap();
            let out_dir = dst.join(rel);
            std::fs::create_dir_all(&out_dir).unwrap();
            for seg in list_segments(&dir).unwrap() {
                let out = out_dir.join(seg.file_name().unwrap());
                if !out.exists() {
                    std::fs::copy(&seg, &out).unwrap();
                }
            }
        }
    }

    mod crash_proptest {
        use super::*;
        use crate::{QueueManager, Wait};
        use proptest::prelude::*;

        /// Builds the crash image of a checkpoint interrupted at an
        /// arbitrary point. `pre` is the directory as it stood before the
        /// checkpoint, `post` after it; `tear` truncates the checkpoint's
        /// control segment (`None` = fully durable) and `keep_old`
        /// selects which pre-checkpoint files the interrupted deletion
        /// pass left behind.
        fn build_crash_image(
            pre: &Path,
            post: &Path,
            out: &Path,
            tear: Option<u64>,
            keep_old: &[bool],
        ) {
            std::fs::remove_dir_all(out).ok();
            std::fs::create_dir_all(out).unwrap();
            // The checkpoint's own control segment, possibly torn.
            for dir in list_streams(post).unwrap() {
                let out_dir = out.join(dir.file_name().unwrap());
                std::fs::create_dir_all(&out_dir).unwrap();
                for seg in list_segments(&dir).unwrap() {
                    let dst = out_dir.join(seg.file_name().unwrap());
                    std::fs::copy(&seg, &dst).unwrap();
                    if let Some(at) = tear {
                        let len = std::fs::metadata(&dst).unwrap().len();
                        let f = OpenOptions::new().write(true).open(&dst).unwrap();
                        f.set_len(at.min(len)).unwrap();
                    }
                }
            }
            // Pre-checkpoint segments the crashed deletion pass missed.
            let mut idx = 0usize;
            for dir in list_streams(pre).unwrap() {
                let out_dir = out.join(dir.file_name().unwrap());
                for seg in list_segments(&dir).unwrap() {
                    let keep = keep_old.get(idx).copied().unwrap_or(true);
                    idx += 1;
                    if !keep {
                        continue;
                    }
                    std::fs::create_dir_all(&out_dir).unwrap();
                    let dst = out_dir.join(seg.file_name().unwrap());
                    if !dst.exists() {
                        std::fs::copy(&seg, &dst).unwrap();
                    }
                }
            }
        }

        fn unique_root(tag: &str) -> PathBuf {
            let p = temp_path(&format!("seg-prop-{tag}"));
            std::fs::remove_dir_all(&p).ok();
            p
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// A crash at *any* point of checkpoint-then-truncate recovers
            /// exactly the live message set. Before the end marker is
            /// durable nothing has been deleted (history wins); after it,
            /// any subset of the deletions may have happened (the snapshot
            /// wins); either way the logical state is identical.
            #[test]
            fn crash_during_checkpoint_recovers_exactly_the_live_set(
                puts in 1usize..24,
                consumed_permille in 0usize..1000,
                tear_permille in proptest::option::of(0u64..=1000),
                keep_old in proptest::collection::vec(any::<bool>(), 16),
            ) {
                let consumed = puts * consumed_permille / 1000;
                let config = SegmentConfig { roll_bytes: 200, sync_every_append: false };
                let root = unique_root("work");
                let journal = SegmentedJournal::open(&root, config.clone()).unwrap();
                let qm = QueueManager::builder("QM1")
                    .journal(journal.clone())
                    .build()
                    .unwrap();
                qm.create_queue("Q").unwrap();
                for i in 0..puts {
                    qm.put("Q", Message::text(format!("m{i}")).persistent(true).build())
                        .unwrap();
                }
                for _ in 0..consumed {
                    qm.get("Q", Wait::NoWait).unwrap().unwrap();
                }
                let live: Vec<String> = (consumed..puts).map(|i| format!("m{i}")).collect();

                let pre = unique_root("pre");
                std::fs::create_dir_all(&pre).unwrap();
                copy_tree(&root, &pre);
                qm.checkpoint().unwrap();
                qm.crash();

                // A tear means the end marker may not be durable, in which
                // case the deletion pass never ran: all old files survive.
                let ckpt_len = journal.len_bytes();
                let tear = tear_permille.map(|p| ckpt_len * p / 1000);
                let keep: Vec<bool> = if tear.is_some() {
                    vec![true; keep_old.len()]
                } else {
                    keep_old
                };
                let crash_root = unique_root("crash");
                build_crash_image(&pre, &root, &crash_root, tear, &keep);

                let journal = SegmentedJournal::open(&crash_root, config).unwrap();
                let qm2 = QueueManager::builder("QM1")
                    .journal(journal)
                    .build()
                    .unwrap();
                let recovered: Vec<String> = qm2
                    .queue("Q")
                    .unwrap()
                    .browse()
                    .iter()
                    .map(|m| m.payload_str().unwrap().to_owned())
                    .collect();
                prop_assert_eq!(recovered, live);

                std::fs::remove_dir_all(&root).ok();
                std::fs::remove_dir_all(&pre).ok();
                std::fs::remove_dir_all(&crash_root).ok();
            }
        }
    }
}
