//! Write-ahead journal giving queues their "reliable" in reliable messaging.
//!
//! Every state change involving *persistent* messages is appended to a
//! journal before it takes effect (WAL discipline). After a crash,
//! rebuilding a [`crate::QueueManager`] over the same journal replays it to
//! rebuild queue contents exactly: committed transactions reappear atomically, uncommitted
//! transactional gets roll back (their messages were never `Get`-journaled),
//! and non-persistent messages vanish — the same guarantees MQSeries gives
//! the conditional-messaging layer.
//!
//! Four backends:
//! * [`MemJournal`] — encoded records in memory; survives a *simulated*
//!   crash (the journal object outlives the manager) and exercises the full
//!   codec path.
//! * [`FileJournal`] — length + CRC-32 framed records in an append-only
//!   file; torn tail records are tolerated, mid-file corruption is reported.
//! * [`GroupCommitJournal`] — a group-commit wrapper over batched storage
//!   (typically a [`FileJournal`]): a dedicated flusher thread coalesces
//!   concurrent appends into one write + one fsync, parking each caller
//!   until the batch covering its record is durable. Same "returns ⇒
//!   durable" contract as a sync-every-append [`FileJournal`], a fraction
//!   of the fsyncs.
//! * [`NullJournal`] — discards everything, for benchmarks isolating
//!   in-memory throughput.

mod file;
mod group;

pub use file::FileJournal;
pub use group::{GroupCommitConfig, GroupCommitJournal, GroupCommitMetrics, GroupStorage};

use std::fmt;

use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::codec::{crc32, CodecError, Decoder, Encoder, WireDecode, WireEncode};
use crate::error::{MqError, MqResult};
use crate::message::{Message, MessageId};
use crate::stats::MetricsRegistry;

/// A single journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A queue was created.
    QueueCreated {
        /// Queue name.
        queue: String,
    },
    /// A queue was deleted (its messages are discarded).
    QueueDeleted {
        /// Queue name.
        queue: String,
    },
    /// A persistent message was enqueued outside any transaction.
    Put {
        /// Destination queue.
        queue: String,
        /// The full message.
        message: Message,
    },
    /// A persistent message was consumed outside any transaction.
    Get {
        /// Source queue.
        queue: String,
        /// Consumed message id.
        message_id: MessageId,
    },
    /// A transaction committed: all gets and puts apply atomically.
    TxCommit {
        /// Messages enqueued by the transaction (persistent ones only).
        puts: Vec<(String, Message)>,
        /// Messages consumed by the transaction.
        gets: Vec<(String, MessageId)>,
    },
    /// A persistent message expired and was discarded.
    Expired {
        /// Queue it expired on.
        queue: String,
        /// Expired message id.
        message_id: MessageId,
    },
    /// A relay custody transfer: an in-transit envelope addressed to
    /// another manager was accepted from a channel and atomically
    /// re-enqueued on the outbound transmission queue. Replayed like a
    /// [`JournalRecord::Put`] onto `xmit_queue`; the extra fields make the
    /// handoff auditable (who originated it, where it is going, how many
    /// hops it has taken).
    RelayCustody {
        /// The outbound transmission queue the envelope moved to.
        xmit_queue: String,
        /// The manager that first wrapped the message for transmission.
        origin: String,
        /// The final destination manager.
        dest_manager: String,
        /// Hop count stamped on the envelope after this handoff.
        hops: u32,
        /// The full in-transit envelope (transmission headers intact).
        message: Message,
    },
}

impl WireEncode for JournalRecord {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            JournalRecord::QueueCreated { queue } => {
                enc.put_u8(0);
                enc.put_str(queue);
            }
            JournalRecord::QueueDeleted { queue } => {
                enc.put_u8(1);
                enc.put_str(queue);
            }
            JournalRecord::Put { queue, message } => {
                enc.put_u8(2);
                enc.put_str(queue);
                message.encode(enc);
            }
            JournalRecord::Get { queue, message_id } => {
                enc.put_u8(3);
                enc.put_str(queue);
                enc.put_u128(message_id.as_u128());
            }
            JournalRecord::TxCommit { puts, gets } => {
                enc.put_u8(4);
                enc.put_varint(puts.len() as u64);
                for (q, m) in puts {
                    enc.put_str(q);
                    m.encode(enc);
                }
                enc.put_varint(gets.len() as u64);
                for (q, id) in gets {
                    enc.put_str(q);
                    enc.put_u128(id.as_u128());
                }
            }
            JournalRecord::Expired { queue, message_id } => {
                enc.put_u8(5);
                enc.put_str(queue);
                enc.put_u128(message_id.as_u128());
            }
            JournalRecord::RelayCustody {
                xmit_queue,
                origin,
                dest_manager,
                hops,
                message,
            } => {
                enc.put_u8(6);
                enc.put_str(xmit_queue);
                enc.put_str(origin);
                enc.put_str(dest_manager);
                enc.put_u32(*hops);
                message.encode(enc);
            }
        }
    }
}

impl WireDecode for JournalRecord {
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        match dec.get_u8()? {
            0 => Ok(JournalRecord::QueueCreated {
                queue: dec.get_str()?,
            }),
            1 => Ok(JournalRecord::QueueDeleted {
                queue: dec.get_str()?,
            }),
            2 => Ok(JournalRecord::Put {
                queue: dec.get_str()?,
                message: Message::decode(dec)?,
            }),
            3 => Ok(JournalRecord::Get {
                queue: dec.get_str()?,
                message_id: MessageId::from_u128(dec.get_u128()?),
            }),
            4 => {
                let n_puts = dec.get_varint()?;
                let mut puts = Vec::with_capacity(n_puts.min(1024) as usize);
                for _ in 0..n_puts {
                    let q = dec.get_str()?;
                    let m = Message::decode(dec)?;
                    puts.push((q, m));
                }
                let n_gets = dec.get_varint()?;
                let mut gets = Vec::with_capacity(n_gets.min(1024) as usize);
                for _ in 0..n_gets {
                    let q = dec.get_str()?;
                    let id = MessageId::from_u128(dec.get_u128()?);
                    gets.push((q, id));
                }
                Ok(JournalRecord::TxCommit { puts, gets })
            }
            5 => Ok(JournalRecord::Expired {
                queue: dec.get_str()?,
                message_id: MessageId::from_u128(dec.get_u128()?),
            }),
            6 => Ok(JournalRecord::RelayCustody {
                xmit_queue: dec.get_str()?,
                origin: dec.get_str()?,
                dest_manager: dec.get_str()?,
                hops: dec.get_u32()?,
                message: Message::decode(dec)?,
            }),
            tag => Err(CodecError::BadTag {
                what: "JournalRecord",
                tag,
            }),
        }
    }
}

// ---------------------------------------------------------------- framing --

/// Encodes a record as the on-storage frame shared by [`FileJournal`] and
/// [`GroupCommitJournal`]: `[len:u32][crc:u32][record bytes]`.
pub(crate) fn encode_frame(record: &JournalRecord) -> Vec<u8> {
    let body = record.to_bytes();
    let mut frame = Vec::with_capacity(body.len() + 8);
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&body).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

/// Decodes a byte run of frames back into records.
///
/// A torn record at the very end (short header, short body, or a CRC
/// mismatch on the final record — an interrupted last write) ends the
/// replay silently; corruption anywhere earlier is an error.
pub(crate) fn decode_frames(raw: &[u8]) -> MqResult<Vec<JournalRecord>> {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while offset < raw.len() {
        if raw.len() - offset < 8 {
            // Torn header at the tail: interrupted final write.
            break;
        }
        let len = u32::from_le_bytes(raw[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let stored_crc =
            u32::from_le_bytes(raw[offset + 4..offset + 8].try_into().expect("4 bytes"));
        let body_start = offset + 8;
        if raw.len() - body_start < len {
            // Torn body at the tail.
            break;
        }
        let body = &raw[body_start..body_start + len];
        if crc32(body) != stored_crc {
            let is_tail = body_start + len == raw.len();
            if is_tail {
                break; // torn final record
            }
            return Err(MqError::JournalCorrupt {
                offset: offset as u64,
                reason: "crc mismatch".into(),
            });
        }
        match JournalRecord::from_bytes(Bytes::copy_from_slice(body)) {
            Ok(rec) => records.push(rec),
            Err(e) => {
                return Err(MqError::JournalCorrupt {
                    offset: offset as u64,
                    reason: format!("undecodable record: {e}"),
                })
            }
        }
        offset = body_start + len;
    }
    Ok(records)
}

// ------------------------------------------------------------------ trait --

/// Abstract append-only journal.
pub trait Journal: Send + Sync + fmt::Debug {
    /// Appends one record durably (returns once the record is stable).
    ///
    /// # Errors
    ///
    /// Propagates storage failures; an error means the state change must not
    /// be applied.
    fn append(&self, record: &JournalRecord) -> MqResult<()>;

    /// Replays all records in append order.
    ///
    /// # Errors
    ///
    /// Reports unreadable storage or mid-file corruption
    /// ([`MqError::JournalCorrupt`]). A torn record at the very end of the
    /// log (interrupted final write) is tolerated and replay stops there.
    fn replay(&self) -> MqResult<Vec<JournalRecord>>;

    /// Discards all records (used after writing a compaction snapshot).
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    fn reset(&self) -> MqResult<()>;

    /// Total journal size in bytes (monotone between resets).
    fn len_bytes(&self) -> u64;

    /// Whether appended records are actually retained. [`NullJournal`]
    /// returns `false`, letting hot paths skip building records at all.
    fn is_durable(&self) -> bool {
        true
    }

    /// Registers any journal-owned metric cells into `registry`.
    ///
    /// [`crate::QueueManagerBuilder::build`] calls this with the manager's
    /// observability hub so backend-internal counters (the group-commit
    /// fsync/batch cells) surface in `mq.*` snapshots. Backends without
    /// internal metrics — the default — register nothing.
    fn register_metrics(&self, registry: &MetricsRegistry) {
        let _ = registry;
    }
}

/// In-memory journal storing encoded records.
///
/// Keep the `Arc<MemJournal>` across a simulated crash
/// ([`crate::QueueManager::crash`]) and hand it to the restarted manager to
/// model recovery without touching the filesystem.
#[derive(Debug, Default)]
pub struct MemJournal {
    records: Mutex<Vec<Bytes>>,
    bytes: AtomicU64,
}

impl MemJournal {
    /// Creates an empty in-memory journal.
    pub fn new() -> std::sync::Arc<MemJournal> {
        std::sync::Arc::new(MemJournal::default())
    }

    /// Number of records currently stored.
    pub fn record_count(&self) -> usize {
        self.records.lock().len()
    }
}

impl Journal for MemJournal {
    fn append(&self, record: &JournalRecord) -> MqResult<()> {
        let bytes = record.to_bytes();
        self.bytes.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.records.lock().push(bytes);
        Ok(())
    }

    fn replay(&self) -> MqResult<Vec<JournalRecord>> {
        let records = self.records.lock();
        records
            .iter()
            .map(|b| JournalRecord::from_bytes(b.clone()).map_err(MqError::from))
            .collect()
    }

    fn reset(&self) -> MqResult<()> {
        self.records.lock().clear();
        self.bytes.store(0, Ordering::Relaxed);
        Ok(())
    }

    fn len_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// Journal that discards all records; for benchmarks and tests that do not
/// exercise recovery.
#[derive(Debug, Default)]
pub struct NullJournal;

impl NullJournal {
    /// Creates a discard-everything journal.
    pub fn new() -> std::sync::Arc<NullJournal> {
        std::sync::Arc::new(NullJournal)
    }
}

impl Journal for NullJournal {
    fn append(&self, _record: &JournalRecord) -> MqResult<()> {
        Ok(())
    }
    fn is_durable(&self) -> bool {
        false
    }
    fn replay(&self) -> MqResult<Vec<JournalRecord>> {
        Ok(Vec::new())
    }
    fn reset(&self) -> MqResult<()> {
        Ok(())
    }
    fn len_bytes(&self) -> u64 {
        0
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::Arc;

    pub(crate) fn sample_records() -> Vec<JournalRecord> {
        let m1 = Message::text("one").persistent(true).build();
        let m2 = Message::text("two")
            .persistent(true)
            .property("k", 1i64)
            .build();
        vec![
            JournalRecord::QueueCreated { queue: "Q1".into() },
            JournalRecord::Put {
                queue: "Q1".into(),
                message: m1.clone(),
            },
            JournalRecord::Get {
                queue: "Q1".into(),
                message_id: m1.id(),
            },
            JournalRecord::TxCommit {
                puts: vec![("Q1".into(), m2.clone())],
                gets: vec![("Q2".into(), m1.id())],
            },
            JournalRecord::Expired {
                queue: "Q1".into(),
                message_id: m2.id(),
            },
            JournalRecord::RelayCustody {
                xmit_queue: "SYSTEM.XMIT.QM2".into(),
                origin: "QM0".into(),
                dest_manager: "QM9".into(),
                hops: 3,
                message: m2.clone(),
            },
            JournalRecord::QueueDeleted { queue: "Q1".into() },
        ]
    }

    pub(crate) fn check_roundtrip(journal: &dyn Journal) {
        let records = sample_records();
        for r in &records {
            journal.append(r).unwrap();
        }
        let replayed = journal.replay().unwrap();
        assert_eq!(replayed, records);
    }

    pub(crate) fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "mq-journal-test-{}-{}-{name}.log",
            std::process::id(),
            MessageId::generate()
        ));
        p
    }

    #[test]
    fn mem_journal_roundtrip() {
        let j = MemJournal::new();
        check_roundtrip(j.as_ref());
        assert_eq!(j.record_count(), sample_records().len());
        assert!(j.len_bytes() > 0);
        j.reset().unwrap();
        assert_eq!(j.record_count(), 0);
        assert_eq!(j.len_bytes(), 0);
    }

    #[test]
    fn null_journal_discards() {
        let j = NullJournal::new();
        j.append(&JournalRecord::QueueCreated { queue: "Q".into() })
            .unwrap();
        assert!(j.replay().unwrap().is_empty());
        assert_eq!(j.len_bytes(), 0);
    }

    #[test]
    fn frame_roundtrip_and_torn_tail() {
        let records = sample_records();
        let mut raw = Vec::new();
        for r in &records {
            raw.extend_from_slice(&encode_frame(r));
        }
        assert_eq!(decode_frames(&raw).unwrap(), records);
        // Any prefix cut decodes to a prefix of the records.
        for cut in 0..raw.len() {
            let decoded = decode_frames(&raw[..cut]).unwrap();
            assert!(decoded.len() <= records.len());
            assert_eq!(decoded[..], records[..decoded.len()]);
        }
    }

    #[test]
    fn journals_are_share_safe() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<MemJournal>();
        assert_bounds::<FileJournal>();
        assert_bounds::<GroupCommitJournal>();
        assert_bounds::<NullJournal>();
        let _boxed: Arc<dyn Journal> = MemJournal::new();
    }

    #[test]
    fn concurrent_appends_preserve_all_records() {
        let j = MemJournal::new();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let j = j.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        j.append(&JournalRecord::QueueCreated {
                            queue: format!("Q{t}-{i}"),
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(j.replay().unwrap().len(), 800);
    }
}
