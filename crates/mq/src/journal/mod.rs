//! Write-ahead journal giving queues their "reliable" in reliable messaging.
//!
//! Every state change involving *persistent* messages is appended to a
//! journal before it takes effect (WAL discipline). After a crash,
//! rebuilding a [`crate::QueueManager`] over the same journal replays it to
//! rebuild queue contents exactly: committed transactions reappear atomically, uncommitted
//! transactional gets roll back (their messages were never `Get`-journaled),
//! and non-persistent messages vanish — the same guarantees MQSeries gives
//! the conditional-messaging layer.
//!
//! Six backends:
//! * [`MemJournal`] — encoded records in memory; survives a *simulated*
//!   crash (the journal object outlives the manager) and exercises the full
//!   codec path.
//! * [`FaultableJournal`] — a [`MemJournal`] with scriptable storage
//!   failures and torn tails, driven by failure-injection tests and the
//!   scenario engine's fault schedules.
//! * [`FileJournal`] — length + CRC-32 framed records in an append-only
//!   file; torn tail records are tolerated, mid-file corruption is reported.
//! * [`GroupCommitJournal`] — a group-commit wrapper over batched storage
//!   (typically a [`FileJournal`]): a dedicated flusher thread coalesces
//!   concurrent appends into one write + one fsync, parking each caller
//!   until the batch covering its record is durable. Same "returns ⇒
//!   durable" contract as a sync-every-append [`FileJournal`], a fraction
//!   of the fsyncs.
//! * [`SegmentedJournal`] — a directory of per-queue segment files with a
//!   global LSN order; checkpoint truncation is `unlink()` of whole
//!   segments, making recovery O(live state) instead of O(history).
//! * [`NullJournal`] — discards everything, for benchmarks isolating
//!   in-memory throughput.

mod fault;
mod file;
mod group;
mod segment;

pub use fault::FaultableJournal;
pub use file::FileJournal;
pub use group::{GroupCommitConfig, GroupCommitJournal, GroupCommitMetrics, GroupStorage};
pub use segment::{SegmentConfig, SegmentedJournal};

use std::fmt;

use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::codec::{crc32, CodecError, Decoder, Encoder, WireDecode, WireEncode};
use crate::error::{MqError, MqResult};
use crate::message::{Message, MessageId};
use crate::stats::MetricsRegistry;

/// A single journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A queue was created.
    QueueCreated {
        /// Queue name.
        queue: String,
    },
    /// A queue was deleted (its messages are discarded).
    QueueDeleted {
        /// Queue name.
        queue: String,
    },
    /// A persistent message was enqueued outside any transaction.
    Put {
        /// Destination queue.
        queue: String,
        /// The full message.
        message: Message,
    },
    /// A persistent message was consumed outside any transaction.
    Get {
        /// Source queue.
        queue: String,
        /// Consumed message id.
        message_id: MessageId,
    },
    /// A transaction committed: all gets and puts apply atomically.
    TxCommit {
        /// Messages enqueued by the transaction (persistent ones only).
        puts: Vec<(String, Message)>,
        /// Messages consumed by the transaction.
        gets: Vec<(String, MessageId)>,
    },
    /// A persistent message expired and was discarded.
    Expired {
        /// Queue it expired on.
        queue: String,
        /// Expired message id.
        message_id: MessageId,
    },
    /// A relay custody transfer: an in-transit envelope addressed to
    /// another manager was accepted from a channel and atomically
    /// re-enqueued on the outbound transmission queue. Replayed like a
    /// [`JournalRecord::Put`] onto `xmit_queue`; the extra fields make the
    /// handoff auditable (who originated it, where it is going, how many
    /// hops it has taken).
    RelayCustody {
        /// The outbound transmission queue the envelope moved to.
        xmit_queue: String,
        /// The manager that first wrapped the message for transmission.
        origin: String,
        /// The final destination manager.
        dest_manager: String,
        /// Hop count stamped on the envelope after this handoff.
        hops: u32,
        /// The full in-transit envelope (transmission headers intact).
        message: Message,
    },
    /// Opens a checkpoint: a self-contained snapshot of all live persistent
    /// state follows as ordinary [`JournalRecord::Put`] records, closed by a
    /// [`JournalRecord::CheckpointEnd`] carrying the same id. Recovery
    /// buffers the snapshot and *replaces* all previously replayed state
    /// with it only when the matching end marker arrives, so a checkpoint
    /// torn by a crash is ignored and the pre-checkpoint records (which
    /// truncation only removes after the end marker is durable) still win.
    CheckpointStart {
        /// Matches this start with its [`JournalRecord::CheckpointEnd`].
        checkpoint_id: u64,
        /// Every queue existing at checkpoint time (including empty ones).
        queues: Vec<String>,
        /// The relay deduper window, oldest first: `(origin hash, message
        /// id)` idempotency keys the manager must still refuse after
        /// recovery even though the custody records were truncated away.
        dedup: Vec<(u64, u128)>,
    },
    /// Closes the checkpoint opened by the [`JournalRecord::CheckpointStart`]
    /// with the same id; only now may storage below the checkpoint be
    /// truncated.
    CheckpointEnd {
        /// Matches the opening [`JournalRecord::CheckpointStart`].
        checkpoint_id: u64,
    },
}

// lint: registry-sink journal-tag
impl WireEncode for JournalRecord {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            JournalRecord::QueueCreated { queue } => {
                enc.put_u8(0);
                enc.put_str(queue);
            }
            JournalRecord::QueueDeleted { queue } => {
                enc.put_u8(1);
                enc.put_str(queue);
            }
            JournalRecord::Put { queue, message } => {
                enc.put_u8(2);
                enc.put_str(queue);
                message.encode(enc);
            }
            JournalRecord::Get { queue, message_id } => {
                enc.put_u8(3);
                enc.put_str(queue);
                enc.put_u128(message_id.as_u128());
            }
            JournalRecord::TxCommit { puts, gets } => {
                enc.put_u8(4);
                enc.put_varint(puts.len() as u64);
                for (q, m) in puts {
                    enc.put_str(q);
                    m.encode(enc);
                }
                enc.put_varint(gets.len() as u64);
                for (q, id) in gets {
                    enc.put_str(q);
                    enc.put_u128(id.as_u128());
                }
            }
            JournalRecord::Expired { queue, message_id } => {
                enc.put_u8(5);
                enc.put_str(queue);
                enc.put_u128(message_id.as_u128());
            }
            JournalRecord::RelayCustody {
                xmit_queue,
                origin,
                dest_manager,
                hops,
                message,
            } => {
                enc.put_u8(6);
                enc.put_str(xmit_queue);
                enc.put_str(origin);
                enc.put_str(dest_manager);
                enc.put_u32(*hops);
                message.encode(enc);
            }
            JournalRecord::CheckpointStart {
                checkpoint_id,
                queues,
                dedup,
            } => {
                enc.put_u8(7);
                enc.put_u64(*checkpoint_id);
                enc.put_varint(queues.len() as u64);
                for q in queues {
                    enc.put_str(q);
                }
                enc.put_varint(dedup.len() as u64);
                for (origin, id) in dedup {
                    enc.put_u64(*origin);
                    enc.put_u128(*id);
                }
            }
            JournalRecord::CheckpointEnd { checkpoint_id } => {
                enc.put_u8(8);
                enc.put_u64(*checkpoint_id);
            }
        }
    }
}

// lint: registry-sink journal-tag
impl WireDecode for JournalRecord {
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        match dec.get_u8()? {
            0 => Ok(JournalRecord::QueueCreated {
                queue: dec.get_str()?,
            }),
            1 => Ok(JournalRecord::QueueDeleted {
                queue: dec.get_str()?,
            }),
            2 => Ok(JournalRecord::Put {
                queue: dec.get_str()?,
                message: Message::decode(dec)?,
            }),
            3 => Ok(JournalRecord::Get {
                queue: dec.get_str()?,
                message_id: MessageId::from_u128(dec.get_u128()?),
            }),
            4 => {
                let n_puts = dec.get_varint()?;
                let mut puts = Vec::with_capacity(n_puts.min(1024) as usize);
                for _ in 0..n_puts {
                    let q = dec.get_str()?;
                    let m = Message::decode(dec)?;
                    puts.push((q, m));
                }
                let n_gets = dec.get_varint()?;
                let mut gets = Vec::with_capacity(n_gets.min(1024) as usize);
                for _ in 0..n_gets {
                    let q = dec.get_str()?;
                    let id = MessageId::from_u128(dec.get_u128()?);
                    gets.push((q, id));
                }
                Ok(JournalRecord::TxCommit { puts, gets })
            }
            5 => Ok(JournalRecord::Expired {
                queue: dec.get_str()?,
                message_id: MessageId::from_u128(dec.get_u128()?),
            }),
            6 => Ok(JournalRecord::RelayCustody {
                xmit_queue: dec.get_str()?,
                origin: dec.get_str()?,
                dest_manager: dec.get_str()?,
                hops: dec.get_u32()?,
                message: Message::decode(dec)?,
            }),
            7 => {
                let checkpoint_id = dec.get_u64()?;
                let n_queues = dec.get_varint()?;
                let mut queues = Vec::with_capacity(n_queues.min(1024) as usize);
                for _ in 0..n_queues {
                    queues.push(dec.get_str()?);
                }
                let n_dedup = dec.get_varint()?;
                let mut dedup = Vec::with_capacity(n_dedup.min(4096) as usize);
                for _ in 0..n_dedup {
                    let origin = dec.get_u64()?;
                    let id = dec.get_u128()?;
                    dedup.push((origin, id));
                }
                Ok(JournalRecord::CheckpointStart {
                    checkpoint_id,
                    queues,
                    dedup,
                })
            }
            8 => Ok(JournalRecord::CheckpointEnd {
                checkpoint_id: dec.get_u64()?,
            }),
            tag => Err(CodecError::BadTag {
                what: "JournalRecord",
                tag,
            }),
        }
    }
}

// ---------------------------------------------------------------- framing --

/// Encodes a record as the on-storage frame shared by [`FileJournal`] and
/// [`GroupCommitJournal`]: `[len:u32][crc:u32][record bytes]`.
pub(crate) fn encode_frame(record: &JournalRecord) -> Vec<u8> {
    encode_frame_body(&record.to_bytes())
}

/// Frames an arbitrary pre-encoded body (the segmented journal prefixes
/// record bytes with an LSN stamp before framing).
pub(crate) fn encode_frame_body(body: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(body.len() + 8);
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(body).to_le_bytes());
    frame.extend_from_slice(body);
    frame
}

/// Streams a byte run of frames into `sink`, one decoded record at a time.
///
/// A torn record at the very end (short header, short body, or a CRC
/// mismatch on the final record — an interrupted last write) ends the
/// replay silently; corruption anywhere earlier is an error.
#[cfg(test)]
pub(crate) fn decode_frames_into(raw: &[u8], sink: &mut ReplaySink<'_>) -> MqResult<()> {
    let mut offset = 0usize;
    while offset < raw.len() {
        if raw.len() - offset < 8 {
            // Torn header at the tail: interrupted final write.
            break;
        }
        let len = u32::from_le_bytes([
            raw[offset],
            raw[offset + 1],
            raw[offset + 2],
            raw[offset + 3],
        ]) as usize;
        let stored_crc = u32::from_le_bytes([
            raw[offset + 4],
            raw[offset + 5],
            raw[offset + 6],
            raw[offset + 7],
        ]);
        let body_start = offset + 8;
        if raw.len() - body_start < len {
            // Torn body at the tail.
            break;
        }
        let body = &raw[body_start..body_start + len];
        if crc32(body) != stored_crc {
            let is_tail = body_start + len == raw.len();
            if is_tail {
                break; // torn final record
            }
            return Err(MqError::JournalCorrupt {
                offset: offset as u64,
                reason: "crc mismatch".into(),
            });
        }
        match JournalRecord::from_bytes(Bytes::copy_from_slice(body)) {
            Ok(rec) => sink(rec)?,
            Err(e) => {
                return Err(MqError::JournalCorrupt {
                    offset: offset as u64,
                    reason: format!("undecodable record: {e}"),
                })
            }
        }
        offset = body_start + len;
    }
    Ok(())
}

/// Decodes a byte run of frames into a vector (tests and small logs; the
/// recovery path streams via [`decode_frames_into`]).
#[cfg(test)]
pub(crate) fn decode_frames(raw: &[u8]) -> MqResult<Vec<JournalRecord>> {
    let mut records = Vec::new();
    decode_frames_into(raw, &mut |rec| {
        records.push(rec);
        Ok(())
    })?;
    Ok(records)
}

/// Incremental frame reader over any byte stream of known total length:
/// yields one CRC-checked frame body at a time so replay memory is bounded
/// by the largest record, not the log.
///
/// Same tail rules as [`decode_frames_into`]: a torn frame at the very end
/// (short header, short body, or CRC mismatch on the final frame) ends the
/// stream silently; corruption anywhere earlier is an error.
pub(crate) struct FrameStream<R> {
    reader: R,
    total: u64,
    consumed: u64,
}

impl<R: std::io::Read> FrameStream<R> {
    pub(crate) fn new(reader: R, total: u64) -> FrameStream<R> {
        FrameStream {
            reader,
            total,
            consumed: 0,
        }
    }

    /// Reads exactly `buf.len()` bytes unless EOF intervenes; returns how
    /// many bytes were actually read.
    fn read_full(&mut self, buf: &mut [u8]) -> MqResult<usize> {
        let mut filled = 0;
        while filled < buf.len() {
            let n = self.reader.read(&mut buf[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        Ok(filled)
    }

    /// Returns the next `(frame offset, frame body)`, or `None` at a clean
    /// end of stream / tolerated torn tail.
    ///
    /// # Errors
    ///
    /// [`MqError::JournalCorrupt`] for mid-stream corruption; I/O errors.
    pub(crate) fn next_body(&mut self) -> MqResult<Option<(u64, Bytes)>> {
        let offset = self.consumed;
        let mut header = [0u8; 8];
        let got = self.read_full(&mut header)?;
        if got < 8 {
            return Ok(None); // clean EOF or torn header at the tail
        }
        let len =
            u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        let stored_crc =
            u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        let mut body = vec![0u8; len];
        let got = self.read_full(&mut body)?;
        if got < len {
            return Ok(None); // torn body at the tail
        }
        self.consumed = offset + 8 + len as u64;
        if crc32(&body) != stored_crc {
            if self.consumed >= self.total {
                return Ok(None); // torn final frame
            }
            return Err(MqError::JournalCorrupt {
                offset,
                reason: "crc mismatch".into(),
            });
        }
        Ok(Some((offset, Bytes::from(body))))
    }
}

// ------------------------------------------------------------------ trait --

/// Visitor receiving replayed records one at a time, in append order.
/// Returning an error aborts the replay and propagates to the caller.
pub type ReplaySink<'a> = dyn FnMut(JournalRecord) -> MqResult<()> + 'a;

/// Abstract append-only journal.
pub trait Journal: Send + Sync + fmt::Debug {
    /// Appends one record durably (returns once the record is stable).
    ///
    /// # Errors
    ///
    /// Propagates storage failures; an error means the state change must not
    /// be applied.
    fn append(&self, record: &JournalRecord) -> MqResult<()>;

    /// Streams all records into `sink` in append order, never holding the
    /// whole log in memory (recovery over a multi-gigabyte journal must be
    /// bounded by live state, not history).
    ///
    /// # Errors
    ///
    /// Reports unreadable storage or mid-file corruption
    /// ([`MqError::JournalCorrupt`]). A torn record at the very end of the
    /// log (interrupted final write) is tolerated and replay stops there.
    /// Sink errors abort the replay and propagate.
    fn replay(&self, sink: &mut ReplaySink<'_>) -> MqResult<()>;

    /// Replays all records into a vector. Convenience for tests and tools;
    /// recovery uses the streaming [`Journal::replay`].
    ///
    /// # Errors
    ///
    /// Same as [`Journal::replay`].
    fn replay_collect(&self) -> MqResult<Vec<JournalRecord>> {
        let mut records = Vec::new();
        self.replay(&mut |rec| {
            records.push(rec);
            Ok(())
        })?;
        Ok(records)
    }

    /// Writes a checkpoint — a [`JournalRecord::CheckpointStart`], the live
    /// snapshot records, and the closing [`JournalRecord::CheckpointEnd`] —
    /// and then discards whatever history the backend can prove is wholly
    /// below it.
    ///
    /// The default implementation just appends (replay's buffer-and-swap
    /// semantics make the checkpoint authoritative even with history still
    /// in front of it); backends that can truncate override this.
    /// [`MemJournal`] atomically replaces its record list; the segmented
    /// journal rewrites its control stream and deletes every other segment.
    ///
    /// # Errors
    ///
    /// Propagates storage failures; on error the journal still recovers the
    /// pre-checkpoint state (an incomplete checkpoint is ignored on replay).
    fn write_checkpoint(&self, records: &mut dyn Iterator<Item = JournalRecord>) -> MqResult<()> {
        for record in records {
            self.append(&record)?;
        }
        Ok(())
    }

    /// Discards all records (used after writing a compaction snapshot).
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    fn reset(&self) -> MqResult<()>;

    /// Total journal size in bytes (monotone between resets).
    fn len_bytes(&self) -> u64;

    /// Whether appended records are actually retained. [`NullJournal`]
    /// returns `false`, letting hot paths skip building records at all.
    fn is_durable(&self) -> bool {
        true
    }

    /// Registers any journal-owned metric cells into `registry`.
    ///
    /// [`crate::QueueManagerBuilder::build`] calls this with the manager's
    /// observability hub so backend-internal counters (the group-commit
    /// fsync/batch cells) surface in `mq.*` snapshots. Backends without
    /// internal metrics — the default — register nothing.
    fn register_metrics(&self, registry: &MetricsRegistry) {
        let _ = registry;
    }
}

/// In-memory journal storing encoded records.
///
/// Keep the `Arc<MemJournal>` across a simulated crash
/// ([`crate::QueueManager::crash`]) and hand it to the restarted manager to
/// model recovery without touching the filesystem.
#[derive(Debug, Default)]
pub struct MemJournal {
    /// Encoded records. Never held while a replay sink runs: the sink may
    /// re-enter the journal (e.g. append during recovery).
    // lint: never-hold(MemJournal.records) across sink
    records: Mutex<Vec<Bytes>>,
    bytes: AtomicU64,
}

impl MemJournal {
    /// Creates an empty in-memory journal.
    pub fn new() -> std::sync::Arc<MemJournal> {
        std::sync::Arc::new(MemJournal::default())
    }

    /// Number of records currently stored.
    pub fn record_count(&self) -> usize {
        self.records.lock().len()
    }
}

impl Journal for MemJournal {
    fn append(&self, record: &JournalRecord) -> MqResult<()> {
        let bytes = record.to_bytes();
        self.bytes.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.records.lock().push(bytes);
        Ok(())
    }

    fn replay(&self, sink: &mut ReplaySink<'_>) -> MqResult<()> {
        // Clone the encoded records out so the sink can re-enter the
        // journal (e.g. append) without deadlocking on our mutex.
        let records: Vec<Bytes> = self.records.lock().clone();
        for b in records {
            sink(JournalRecord::from_bytes(b).map_err(MqError::from)?)?;
        }
        Ok(())
    }

    fn write_checkpoint(&self, records: &mut dyn Iterator<Item = JournalRecord>) -> MqResult<()> {
        // Atomic replace: the checkpoint becomes the entire journal, so a
        // simulated crash right after sees exactly the snapshot.
        let mut encoded = Vec::new();
        let mut total = 0u64;
        for record in records {
            let bytes = record.to_bytes();
            total += bytes.len() as u64;
            encoded.push(bytes);
        }
        let mut guard = self.records.lock();
        *guard = encoded;
        self.bytes.store(total, Ordering::Relaxed);
        Ok(())
    }

    fn reset(&self) -> MqResult<()> {
        self.records.lock().clear();
        self.bytes.store(0, Ordering::Relaxed);
        Ok(())
    }

    fn len_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// Journal that discards all records; for benchmarks and tests that do not
/// exercise recovery.
#[derive(Debug, Default)]
pub struct NullJournal;

impl NullJournal {
    /// Creates a discard-everything journal.
    pub fn new() -> std::sync::Arc<NullJournal> {
        std::sync::Arc::new(NullJournal)
    }
}

impl Journal for NullJournal {
    fn append(&self, _record: &JournalRecord) -> MqResult<()> {
        Ok(())
    }
    fn is_durable(&self) -> bool {
        false
    }
    fn replay(&self, _sink: &mut ReplaySink<'_>) -> MqResult<()> {
        Ok(())
    }
    fn reset(&self) -> MqResult<()> {
        Ok(())
    }
    fn len_bytes(&self) -> u64 {
        0
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::Arc;

    pub(crate) fn sample_records() -> Vec<JournalRecord> {
        let m1 = Message::text("one").persistent(true).build();
        let m2 = Message::text("two")
            .persistent(true)
            .property("k", 1i64)
            .build();
        vec![
            JournalRecord::QueueCreated { queue: "Q1".into() },
            JournalRecord::Put {
                queue: "Q1".into(),
                message: m1.clone(),
            },
            JournalRecord::Get {
                queue: "Q1".into(),
                message_id: m1.id(),
            },
            JournalRecord::TxCommit {
                puts: vec![("Q1".into(), m2.clone())],
                gets: vec![("Q2".into(), m1.id())],
            },
            JournalRecord::Expired {
                queue: "Q1".into(),
                message_id: m2.id(),
            },
            JournalRecord::RelayCustody {
                xmit_queue: "SYSTEM.XMIT.QM2".into(),
                origin: "QM0".into(),
                dest_manager: "QM9".into(),
                hops: 3,
                message: m2.clone(),
            },
            JournalRecord::QueueDeleted { queue: "Q1".into() },
            JournalRecord::CheckpointStart {
                checkpoint_id: 42,
                queues: vec!["Q1".into(), "Q2".into()],
                dedup: vec![(7, m1.id().as_u128()), (9, m2.id().as_u128())],
            },
            JournalRecord::CheckpointEnd { checkpoint_id: 42 },
        ]
    }

    pub(crate) fn check_roundtrip(journal: &dyn Journal) {
        let records = sample_records();
        for r in &records {
            journal.append(r).unwrap();
        }
        let replayed = journal.replay_collect().unwrap();
        assert_eq!(replayed, records);
    }

    pub(crate) fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "mq-journal-test-{}-{}-{name}.log",
            std::process::id(),
            MessageId::generate()
        ));
        p
    }

    #[test]
    fn mem_journal_roundtrip() {
        let j = MemJournal::new();
        check_roundtrip(j.as_ref());
        assert_eq!(j.record_count(), sample_records().len());
        assert!(j.len_bytes() > 0);
        j.reset().unwrap();
        assert_eq!(j.record_count(), 0);
        assert_eq!(j.len_bytes(), 0);
    }

    #[test]
    fn null_journal_discards() {
        let j = NullJournal::new();
        j.append(&JournalRecord::QueueCreated { queue: "Q".into() })
            .unwrap();
        assert!(j.replay_collect().unwrap().is_empty());
        assert_eq!(j.len_bytes(), 0);
    }

    #[test]
    fn frame_roundtrip_and_torn_tail() {
        let records = sample_records();
        let mut raw = Vec::new();
        for r in &records {
            raw.extend_from_slice(&encode_frame(r));
        }
        assert_eq!(decode_frames(&raw).unwrap(), records);
        // Any prefix cut decodes to a prefix of the records.
        for cut in 0..raw.len() {
            let decoded = decode_frames(&raw[..cut]).unwrap();
            assert!(decoded.len() <= records.len());
            assert_eq!(decoded[..], records[..decoded.len()]);
        }
    }

    #[test]
    fn journals_are_share_safe() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<MemJournal>();
        assert_bounds::<FaultableJournal>();
        assert_bounds::<FileJournal>();
        assert_bounds::<GroupCommitJournal>();
        assert_bounds::<NullJournal>();
        let _boxed: Arc<dyn Journal> = MemJournal::new();
    }

    #[test]
    fn concurrent_appends_preserve_all_records() {
        let j = MemJournal::new();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let j = j.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        j.append(&JournalRecord::QueueCreated {
                            queue: format!("Q{t}-{i}"),
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(j.replay_collect().unwrap().len(), 800);
    }

    #[test]
    fn mem_journal_checkpoint_replaces_history() {
        let j = MemJournal::new();
        for r in sample_records() {
            j.append(&r).unwrap();
        }
        let snapshot = vec![
            JournalRecord::CheckpointStart {
                checkpoint_id: 1,
                queues: vec!["Q1".into()],
                dedup: vec![],
            },
            JournalRecord::Put {
                queue: "Q1".into(),
                message: Message::text("live").persistent(true).build(),
            },
            JournalRecord::CheckpointEnd { checkpoint_id: 1 },
        ];
        j.write_checkpoint(&mut snapshot.clone().into_iter()).unwrap();
        assert_eq!(j.replay_collect().unwrap(), snapshot);
        assert_eq!(j.record_count(), 3);
    }

    #[test]
    fn replay_sink_error_aborts() {
        let j = MemJournal::new();
        for r in sample_records() {
            j.append(&r).unwrap();
        }
        let mut seen = 0;
        let err = j.replay(&mut |_| {
            seen += 1;
            if seen == 2 {
                Err(MqError::ManagerStopped("stop".into()))
            } else {
                Ok(())
            }
        });
        assert!(err.is_err());
        assert_eq!(seen, 2);
    }
}
