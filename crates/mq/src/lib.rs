//! `mq` — a from-scratch reliable message-queuing substrate.
//!
//! This crate reimplements the slice of MQSeries/JMS semantics that the
//! conditional-messaging middleware of Tai et al. (ICDCS 2002) is layered
//! on:
//!
//! * **Queue managers** ([`QueueManager`]) owning named, priority-ordered
//!   [`Queue`]s with expiry, browsing and [selectors](selector).
//! * **Reliability** via a write-ahead [journal]: persistent messages,
//!   non-transactional gets and committed transactions are journaled and
//!   replayed on restart; [`QueueManager::crash`] + rebuild is the
//!   crash-recovery harness.
//! * **Messaging transactions** ([`Session`]): staged puts, provisional
//!   gets, rollback-redelivery with backout counting and a dead-letter
//!   queue — the semantics behind the paper's "acknowledgment of a
//!   successful transactional read".
//! * **Store-and-forward [channel]s** moving messages between managers
//!   through a pluggable [transport]: either a simulated
//!   [network link](net) with latency, jitter, loss and partitions, or
//!   real TCP sockets ([`transport::tcp`]) with CRC-framed batches,
//!   heartbeats, reconnect and receiver-side dedup.
//! * A pluggable [clock](simtime) so every timeout is deterministic under
//!   test.
//!
//! # Quick start
//!
//! ```
//! use mq::{Message, QueueManager, Wait};
//!
//! let qm = QueueManager::builder("QM1").build()?;
//! qm.create_queue("ORDERS")?;
//! qm.put("ORDERS", Message::text("order #1").persistent(true).build())?;
//! let order = qm.get("ORDERS", Wait::NoWait)?.expect("delivered");
//! assert_eq!(order.payload_str(), Some("order #1"));
//! # Ok::<(), mq::MqError>(())
//! ```

// `deny` rather than `forbid`: the transport reactor's epoll bindings
// (`transport::reactor::sys`) carry the crate's only `allow(unsafe_code)`,
// three thin syscall wrappers with safe signatures.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod codec;
mod error;
pub mod journal;
pub mod listener;
mod message;
pub mod net;
pub mod obs;
mod qmgr;
mod queue;
pub mod relay;
pub mod selector;
mod session;
pub mod shard;
pub mod stats;
mod store;
pub mod topic;
pub mod trace;
pub mod transport;

pub use error::{MqError, MqResult};
pub use obs::Obs;
pub use message::{Message, MessageBuilder, MessageId, Priority, PropertyValue, QueueAddress};
pub use qmgr::{
    ManagedTask, ManagerConfig, QueueManager, QueueManagerBuilder, DEAD_LETTER_QUEUE,
    DLQ_REASON_PROPERTY, XMIT_DEST_MANAGER_PROPERTY, XMIT_DEST_QUEUE_PROPERTY,
};
pub use queue::{PutWatcher, Queue, QueueConfig, Wait};
pub use relay::{
    RelayOutcome, DEFAULT_DEDUP_WINDOW, DEFAULT_MAX_RELAY_HOPS, RELAY_HOPS_PROPERTY,
    RELAY_ORIGIN_PROPERTY,
};
pub use session::Session;
pub use stats::{
    Counter, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    RelayStats,
};
pub use trace::{TraceEvent, TraceLog, TraceStage};
pub use transport::fault::{FaultAction, FaultPlane};
pub use transport::{
    BatchOutcome, BatchTicket, LinkTransport, PipelineProgress, PipelinedTransport, SubmitError,
    Transport, TransportMetrics,
};

// Re-export the clock abstraction so downstream crates need only `mq`.
pub use simtime::{
    Clock, DeadlineScheduler, Millis, SharedClock, SimClock, SystemClock, Time, TimerCallback,
    TimerId,
};
