//! The queue manager: the unit of deployment in this substrate, analogous
//! to an MQSeries queue manager or a JMS provider instance.
//!
//! A [`QueueManager`] owns named queues, a journal, routing entries to
//! remote managers (transmission queues served by [`crate::channel`]), and
//! a dead-letter queue. Building a manager over a non-empty journal replays
//! it, restoring all persistent state — `crash()` followed by a rebuild is
//! the crash-recovery test harness used throughout the repo.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use simtime::{SharedClock, SystemClock};

use crate::error::{MqError, MqResult};
use crate::journal::{Journal, JournalRecord, MemJournal};
use crate::message::{Message, MessageId, QueueAddress};
use crate::obs::Obs;
use crate::queue::{Queue, QueueConfig, Wait};
use crate::relay::{Deduper, DEFAULT_DEDUP_WINDOW, DEFAULT_MAX_RELAY_HOPS, RELAY_ORIGIN_PROPERTY};
use crate::selector::Selector;
use crate::session::Session;
use crate::shard::StripedMap;
use crate::stats::{ManagerStats, MetricsSnapshot, QueueStats, RelayStats};
use crate::trace::TraceLog;

/// Name of the dead-letter queue every manager owns.
pub const DEAD_LETTER_QUEUE: &str = "SYSTEM.DEAD.LETTER.QUEUE";

/// Property stamped on dead-lettered messages explaining why.
pub const DLQ_REASON_PROPERTY: &str = "sys.dlq.reason";

/// Property carrying the destination queue on transmission-queue envelopes.
pub const XMIT_DEST_QUEUE_PROPERTY: &str = "sys.xmit.dest.queue";

/// Property carrying the destination manager on transmission-queue envelopes.
pub const XMIT_DEST_MANAGER_PROPERTY: &str = "sys.xmit.dest.qmgr";

/// A background task attached to a queue manager — channels and TCP
/// acceptors register themselves so [`QueueManager::shutdown`] can stop
/// them and join their threads in one call.
///
/// Implementations must make `shutdown` idempotent: the manager calls it
/// at most once per attachment, but owners (tests, `Drop` impls) may also
/// call it directly.
pub trait ManagedTask: Send + Sync {
    /// Stops the task's background threads and joins them.
    fn shutdown(&self);
}

/// Manager-wide configuration.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Rollbacks beyond this count dead-letter the message (MQ "backout
    /// threshold").
    pub backout_threshold: u32,
    /// Maximum message payload size accepted by `put`.
    pub max_message_size: Option<usize>,
    /// Maximum relay hops an in-transit envelope may take before the
    /// relay dead-letters it (loop prevention; see [`crate::relay`]).
    pub max_relay_hops: u32,
    /// Sliding-window size of the manager-level delivery deduper
    /// (origin-manager + message id keys; see [`crate::relay`]).
    pub dedup_window: usize,
    /// Journal growth (bytes appended since the last checkpoint) that
    /// triggers an automatic checkpoint after a commit. `None` disables
    /// automatic checkpoints; [`QueueManager::checkpoint`] still works.
    pub checkpoint_bytes: Option<u64>,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            backout_threshold: 5,
            max_message_size: None,
            max_relay_hops: DEFAULT_MAX_RELAY_HOPS,
            dedup_window: DEFAULT_DEDUP_WINDOW,
            checkpoint_bytes: Some(64 << 20),
        }
    }
}

/// Builder for [`QueueManager`].
pub struct QueueManagerBuilder {
    name: String,
    clock: Option<SharedClock>,
    journal: Option<Arc<dyn Journal>>,
    config: ManagerConfig,
    obs: Option<Arc<Obs>>,
}

impl QueueManagerBuilder {
    /// Sets the clock (defaults to a fresh [`SystemClock`]).
    pub fn clock(mut self, clock: SharedClock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Sets the observability hub (defaults to a fresh [`Obs`]). Pass the
    /// same hub to several managers so a simulated distributed deployment
    /// reports into one registry and one lifecycle timeline.
    pub fn obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Sets the journal (defaults to a fresh [`MemJournal`]).
    pub fn journal(mut self, journal: Arc<dyn Journal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Sets manager-wide configuration.
    pub fn config(mut self, config: ManagerConfig) -> Self {
        self.config = config;
        self
    }

    /// Builds the manager, replaying the journal to recover persistent
    /// state.
    ///
    /// # Errors
    ///
    /// Propagates journal replay failures (unreadable or corrupt storage).
    pub fn build(self) -> MqResult<Arc<QueueManager>> {
        let clock = self.clock.unwrap_or_else(|| SystemClock::new());
        let journal = self.journal.unwrap_or_else(|| MemJournal::new());
        let obs = self.obs.unwrap_or_default();
        let stats = ManagerStats::registered(obs.metrics());
        let relay_stats = RelayStats::registered(obs.metrics());
        // Journals that own metric cells (e.g. GroupCommitJournal's fsync
        // and batch-size metrics) surface them through this manager's hub.
        journal.register_metrics(obs.metrics());
        // The process-wide encode counter: the zero-copy send path is
        // probed by comparing it against messages actually transmitted.
        obs.metrics()
            .register_counter("mq.codec.encodes", crate::codec::message_encodes());
        let dedup_window = self.config.dedup_window;
        let manager = Arc::new(QueueManager {
            name: self.name,
            clock,
            journal,
            config: self.config,
            queues: StripedMap::default(),
            routes: StripedMap::default(),
            default_route: Mutex::new(None),
            stats,
            relay_stats,
            delivery_dedup: Mutex::new(Deduper::new(dedup_window)),
            mutation_gate: Arc::new(RwLock::new(())),
            last_checkpoint_len: AtomicU64::new(0),
            obs,
            running: AtomicBool::new(true),
            tasks: Mutex::new(Vec::new()),
        });
        manager.recover()?;
        if !manager.queue_exists(DEAD_LETTER_QUEUE) {
            manager.create_queue(DEAD_LETTER_QUEUE)?;
        }
        manager
            .last_checkpoint_len
            .store(manager.journal.len_bytes(), Ordering::Relaxed);
        Ok(manager)
    }
}

/// A queue manager: named queues + journal + routes.
pub struct QueueManager {
    name: String,
    clock: SharedClock,
    journal: Arc<dyn Journal>,
    config: ManagerConfig,
    /// Queue table, lock-striped so traffic to distinct queues does not
    /// contend on one global lock (see [`crate::shard`]).
    queues: StripedMap<Arc<Queue>>,
    /// remote manager name → local transmission queue(s) staging traffic
    /// toward it. Multiple targets model parallel downstream channels; the
    /// relay picks one deterministically per message id.
    routes: StripedMap<Vec<String>>,
    /// Next-hop transmission queue(s) for destinations with no explicit
    /// route entry — the "default route" of the relay federation.
    default_route: Mutex<Option<Vec<String>>>,
    stats: ManagerStats,
    /// Relay-federation counters (`mq.relay.*`); see [`crate::relay`].
    pub(crate) relay_stats: RelayStats,
    /// Manager-level delivery deduper: origin-manager + message id keys,
    /// shared by every transport feeding this manager and reseeded from
    /// the checkpoint + journal tail on recovery (see [`crate::relay`]).
    pub(crate) delivery_dedup: Mutex<Deduper>,
    /// The checkpoint/mutation exclusion gate. Every journaled mutation
    /// read-holds it across `[journal append + in-memory apply]`;
    /// [`QueueManager::checkpoint`] write-holds it while snapshotting live
    /// state and truncating history, so the snapshot can never miss the
    /// effect of a record it truncates. The gate is never acquired
    /// re-entrantly: consumer wakeups and watcher callbacks run strictly
    /// after the read guard is released, so a queued writer cannot
    /// deadlock against a nested read.
    // lint: never-hold(QueueManager.mutation_gate) across send_batch
    mutation_gate: Arc<RwLock<()>>,
    /// `journal.len_bytes()` as of the last checkpoint — the delta against
    /// the live length drives [`QueueManager::maybe_checkpoint`]. A plain
    /// length threshold would misfire on append-only group journals, whose
    /// length never shrinks at a checkpoint.
    last_checkpoint_len: AtomicU64,
    obs: Arc<Obs>,
    running: AtomicBool,
    /// Background machinery serving this manager (channel movers, TCP
    /// acceptors); drained and stopped by [`QueueManager::shutdown`].
    tasks: Mutex<Vec<Arc<dyn ManagedTask>>>,
}

impl fmt::Debug for QueueManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueueManager")
            .field("name", &self.name)
            .field("queues", &self.queue_names())
            .field("running", &self.is_running())
            .finish()
    }
}

impl QueueManager {
    /// Starts building a queue manager with the given name.
    pub fn builder(name: impl Into<String>) -> QueueManagerBuilder {
        QueueManagerBuilder {
            name: name.into(),
            clock: None,
            journal: None,
            config: ManagerConfig::default(),
            obs: None,
        }
    }

    /// The manager's name (used in [`QueueAddress`]es).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared clock all queues use.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// The manager's journal.
    pub fn journal(&self) -> &Arc<dyn Journal> {
        &self.journal
    }

    /// Manager-wide statistics.
    pub fn stats(&self) -> &ManagerStats {
        &self.stats
    }

    /// Relay-federation statistics (`mq.relay.*`).
    pub fn relay_stats(&self) -> &RelayStats {
        &self.relay_stats
    }

    /// The manager's observability hub (metrics registry + lifecycle
    /// trace). Shared with other managers when built via
    /// [`QueueManagerBuilder::obs`].
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// The message-lifecycle trace log.
    pub fn trace(&self) -> &TraceLog {
        self.obs.trace()
    }

    /// A point-in-time snapshot of every metric registered against this
    /// manager's observability hub.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    /// Manager-wide configuration.
    pub fn config(&self) -> &ManagerConfig {
        &self.config
    }

    /// Whether the manager is accepting work.
    pub fn is_running(&self) -> bool {
        self.running.load(Ordering::SeqCst)
    }

    pub(crate) fn check_running(&self) -> MqResult<()> {
        if self.is_running() {
            Ok(())
        } else {
            Err(MqError::ManagerStopped(self.name.clone()))
        }
    }

    // ---------------------------------------------------- queue admin --

    /// Builds a queue whose stats cells are registered under
    /// `mq.queue.<name>.*` and whose journal appends feed the shared
    /// `mq.journal.append_micros` histogram.
    fn make_queue(&self, name: String, config: QueueConfig) -> Arc<Queue> {
        let stats = QueueStats::registered(self.obs.metrics(), &name);
        Queue::new_instrumented(
            name,
            self.clock.clone(),
            self.journal.clone(),
            config,
            stats,
            self.stats.journal_append_micros.clone(),
            self.mutation_gate.clone(),
        )
    }

    /// The checkpoint/mutation exclusion gate (see the field docs).
    // lint: returns-lock(QueueManager.mutation_gate)
    pub(crate) fn mutation_gate(&self) -> &Arc<RwLock<()>> {
        &self.mutation_gate
    }

    /// Creates a queue with default configuration.
    ///
    /// # Errors
    ///
    /// [`MqError::QueueExists`] if the name is taken; journal failures.
    pub fn create_queue(&self, name: impl Into<String>) -> MqResult<Arc<Queue>> {
        self.create_queue_with(name, QueueConfig::default())
    }

    /// Creates a queue with explicit configuration.
    ///
    /// # Errors
    ///
    /// [`MqError::QueueExists`] if the name is taken; journal failures.
    pub fn create_queue_with(
        &self,
        name: impl Into<String>,
        config: QueueConfig,
    ) -> MqResult<Arc<Queue>> {
        self.check_running()?;
        let name = name.into();
        // Gate before stripe (the crate-wide lock order): a checkpoint must
        // not truncate this QueueCreated record without the queue in its
        // snapshot's directory.
        let _gate = self.mutation_gate.read();
        // Check + journal + insert must be atomic per name; the stripe lock
        // serializes exactly the names sharing this stripe, leaving traffic
        // on other stripes untouched.
        let mut stripe = self.queues.lock_key(&name);
        if stripe.contains_key(&name) {
            return Err(MqError::QueueExists(name));
        }
        self.journal.append(&JournalRecord::QueueCreated {
            queue: name.clone(),
        })?;
        let queue = self.make_queue(name.clone(), config);
        stripe.insert(name, queue.clone());
        Ok(queue)
    }

    /// Returns the queue if it exists, creating it otherwise.
    ///
    /// # Errors
    ///
    /// Journal failures during creation.
    pub fn ensure_queue(&self, name: &str) -> MqResult<Arc<Queue>> {
        if let Ok(q) = self.queue(name) {
            return Ok(q);
        }
        match self.create_queue(name) {
            Ok(q) => Ok(q),
            // Raced with another creator: fetch theirs.
            Err(MqError::QueueExists(_)) => self.queue(name),
            Err(e) => Err(e),
        }
    }

    /// Deletes a queue and discards its messages.
    ///
    /// # Errors
    ///
    /// [`MqError::QueueNotFound`]; journal failures.
    pub fn delete_queue(&self, name: &str) -> MqResult<()> {
        self.check_running()?;
        let _gate = self.mutation_gate.read();
        let mut stripe = self.queues.lock_key(name);
        let queue = stripe
            .remove(name)
            .ok_or_else(|| MqError::QueueNotFound(name.to_owned()))?;
        self.journal.append(&JournalRecord::QueueDeleted {
            queue: name.to_owned(),
        })?;
        drop(stripe);
        queue.close();
        Ok(())
    }

    /// Looks up a queue handle.
    ///
    /// # Errors
    ///
    /// [`MqError::QueueNotFound`].
    pub fn queue(&self, name: &str) -> MqResult<Arc<Queue>> {
        self.queues
            .get(name)
            .ok_or_else(|| MqError::QueueNotFound(name.to_owned()))
    }

    /// Whether the named queue exists.
    pub fn queue_exists(&self, name: &str) -> bool {
        self.queues.contains_key(name)
    }

    /// All queue names, sorted.
    pub fn queue_names(&self) -> Vec<String> {
        self.queues.sorted_keys()
    }

    // ------------------------------------------------------- messaging --

    fn validate(&self, msg: &Message) -> MqResult<()> {
        if let Some(max) = self.config.max_message_size {
            if msg.payload().len() > max {
                return Err(MqError::MessageTooLarge {
                    size: msg.payload().len(),
                    max,
                });
            }
        }
        Ok(())
    }

    /// Enqueues a message on a local queue, outside any transaction.
    ///
    /// # Errors
    ///
    /// [`MqError::QueueNotFound`], [`MqError::QueueFull`],
    /// [`MqError::MessageTooLarge`], or journal failures.
    pub fn put(&self, queue: &str, msg: Message) -> MqResult<()> {
        self.check_running()?;
        self.validate(&msg)?;
        self.queue(queue)?.put(msg, true)
    }

    /// Enqueues a message addressed by `manager/queue`, routing to a
    /// transmission queue when the manager is remote.
    ///
    /// # Errors
    ///
    /// [`MqError::NoRoute`] when no channel is defined to the remote
    /// manager, plus the local `put` errors.
    pub fn put_to(&self, addr: &QueueAddress, msg: Message) -> MqResult<()> {
        if addr.manager == self.name {
            return self.put(&addr.queue, msg);
        }
        let xmit = self
            .route_for_message(&addr.manager, msg.id())
            .ok_or_else(|| MqError::NoRoute(addr.manager.clone()))?;
        let envelope = self.wrap_for_transmission(addr, msg);
        self.stats.forwarded.incr();
        self.put(&xmit, envelope)
    }

    /// Wraps a message in a transmission envelope bound for `addr`,
    /// stamping this manager as the relay origin (the first half of the
    /// federation-wide idempotency key) unless an upstream manager already
    /// did.
    pub(crate) fn wrap_for_transmission(&self, addr: &QueueAddress, mut msg: Message) -> Message {
        msg.set_property(XMIT_DEST_QUEUE_PROPERTY, addr.queue.as_str());
        msg.set_property(XMIT_DEST_MANAGER_PROPERTY, addr.manager.as_str());
        if msg.str_property(RELAY_ORIGIN_PROPERTY).is_none() {
            msg.set_property(RELAY_ORIGIN_PROPERTY, self.name.as_str());
        }
        msg
    }

    /// Consumes a message from a local queue, outside any transaction.
    ///
    /// # Errors
    ///
    /// [`MqError::QueueNotFound`]; [`MqError::ManagerStopped`] if the
    /// manager crashes while waiting.
    pub fn get(&self, queue: &str, wait: Wait) -> MqResult<Option<Message>> {
        self.check_running()?;
        self.queue(queue)?.take_blocking(None, wait, true)
    }

    /// Consumes the oldest message whose correlation id equals `corr`,
    /// via the queue's correlation index (O(matches), not a queue scan).
    ///
    /// # Errors
    ///
    /// Same as [`QueueManager::get`].
    pub fn get_by_correlation(
        &self,
        queue: &str,
        corr: &str,
        wait: Wait,
    ) -> MqResult<Option<Message>> {
        self.check_running()?;
        self.queue(queue)?
            .take_by_correlation_blocking(corr, wait, true)
    }

    /// Consumes the first message matching `selector`.
    ///
    /// # Errors
    ///
    /// Same as [`QueueManager::get`].
    pub fn get_selected(
        &self,
        queue: &str,
        selector: &Selector,
        wait: Wait,
    ) -> MqResult<Option<Message>> {
        self.check_running()?;
        self.queue(queue)?.take_blocking(Some(selector), wait, true)
    }

    /// Opens a session for transactional work against this manager.
    pub fn session(self: &Arc<Self>) -> Session {
        Session::new(self.clone())
    }

    // --------------------------------------------------------- routing --

    /// Declares that messages for `remote_manager` should be staged on the
    /// local transmission queue `xmit_queue` (created if missing).
    /// Replaces any previous route (or route group) for that manager.
    ///
    /// # Errors
    ///
    /// Journal failures creating the transmission queue.
    pub fn define_route(&self, remote_manager: &str, xmit_queue: &str) -> MqResult<()> {
        self.define_route_group(remote_manager, std::slice::from_ref(&xmit_queue))
    }

    /// Declares a group of transmission queues for `remote_manager`
    /// (parallel downstream channels). The relay spreads traffic across
    /// the group deterministically by message id, so a retried custody
    /// transfer always picks the same downstream.
    ///
    /// # Errors
    ///
    /// [`MqError::NoRoute`] for an empty group; journal failures creating
    /// the transmission queues.
    pub fn define_route_group<S: AsRef<str>>(
        &self,
        remote_manager: &str,
        xmit_queues: &[S],
    ) -> MqResult<()> {
        if xmit_queues.is_empty() {
            return Err(MqError::NoRoute(remote_manager.to_owned()));
        }
        let mut targets = Vec::with_capacity(xmit_queues.len());
        for q in xmit_queues {
            self.ensure_queue(q.as_ref())?;
            targets.push(q.as_ref().to_owned());
        }
        self.routes.insert(remote_manager.to_owned(), targets);
        Ok(())
    }

    /// Declares the next-hop transmission queue(s) used for any
    /// destination manager without an explicit route entry — the default
    /// route of the relay federation. A chain topology needs only this:
    /// each manager points its default route at the neighbor closer to
    /// the hub and relays everything else.
    ///
    /// # Errors
    ///
    /// [`MqError::NoRoute`] for an empty group; journal failures creating
    /// the transmission queues.
    pub fn define_default_route<S: AsRef<str>>(&self, xmit_queues: &[S]) -> MqResult<()> {
        if xmit_queues.is_empty() {
            return Err(MqError::NoRoute("<default>".to_owned()));
        }
        let mut targets = Vec::with_capacity(xmit_queues.len());
        for q in xmit_queues {
            self.ensure_queue(q.as_ref())?;
            targets.push(q.as_ref().to_owned());
        }
        *self.default_route.lock() = Some(targets);
        Ok(())
    }

    /// Resolves a transmission queue for a remote manager: the first
    /// target of its explicit route, falling back to the default route.
    ///
    /// # Errors
    ///
    /// [`MqError::NoRoute`].
    pub fn route_for(&self, remote_manager: &str) -> MqResult<String> {
        self.routes
            .get(remote_manager)
            .and_then(|targets| targets.first().cloned())
            .or_else(|| {
                self.default_route
                    .lock()
                    .as_ref()
                    .and_then(|targets| targets.first().cloned())
            })
            .ok_or_else(|| MqError::NoRoute(remote_manager.to_owned()))
    }

    /// Resolves the transmission queue for one message bound for
    /// `remote_manager`: the explicit route group if one exists, else the
    /// default route; within the group the target is chosen
    /// deterministically from the message id, so retries of the same
    /// custody transfer always travel the same downstream.
    pub fn route_for_message(&self, remote_manager: &str, id: MessageId) -> Option<String> {
        let targets = self
            .routes
            .get(remote_manager)
            .or_else(|| self.default_route.lock().clone())?;
        if targets.is_empty() {
            return None;
        }
        let idx = (id.as_u128() % targets.len() as u128) as usize;
        Some(targets[idx].clone())
    }

    /// Delivers a message arriving from a remote channel. Unknown target
    /// queues dead-letter the message rather than losing it; an envelope
    /// still addressed to a *different* manager is never accepted as
    /// local — it is relayed toward its destination (or dead-lettered
    /// with a reason; see [`crate::relay`]).
    ///
    /// # Errors
    ///
    /// Local put failures.
    // lint: custody(msg, err-reverts)
    pub fn deliver_from_channel(&self, queue: &str, mut msg: Message) -> MqResult<()> {
        self.check_running()?;
        if let Some(dest) = msg
            .str_property(XMIT_DEST_MANAGER_PROPERTY)
            .map(str::to_owned)
        {
            if dest != self.name {
                // Misaddressed envelope: relaying (or dead-lettering) is
                // the only correct fate — silently accepting it here was
                // the misdelivery bug this guard fixes.
                self.stats.received_remote.incr();
                return self.relay_envelope(msg, &dest).map(|_| ());
            }
        }
        msg.remove_property(XMIT_DEST_QUEUE_PROPERTY);
        msg.remove_property(XMIT_DEST_MANAGER_PROPERTY);
        self.stats.received_remote.incr();
        if self.queue_exists(queue) {
            self.put(queue, msg)
        } else {
            msg.set_property(DLQ_REASON_PROPERTY, format!("unknown queue {queue}"));
            self.put(DEAD_LETTER_QUEUE, msg)
        }
    }

    /// Moves a message to the dead-letter queue with a reason, atomically
    /// with its removal from `from_queue` (single `TxCommit` record).
    // lint: custody(msg, err-reverts)
    pub(crate) fn dead_letter(
        &self,
        from_queue: &str,
        mut msg: Message,
        reason: &str,
    ) -> MqResult<()> {
        msg.set_property(DLQ_REASON_PROPERTY, reason);
        let dlq = self.queue(DEAD_LETTER_QUEUE)?;
        let gate = self.mutation_gate.read();
        if msg.is_persistent() {
            self.journal.append(&JournalRecord::TxCommit {
                puts: vec![(DEAD_LETTER_QUEUE.to_owned(), msg.clone())],
                gets: vec![(from_queue.to_owned(), msg.id())],
            })?;
        }
        if let Ok(q) = self.queue(from_queue) {
            q.stats().dead_lettered.incr();
            // The TxCommit above is now the durable cover for the removal;
            // release the source queue's pending-get hold.
            q.finalize_pending(msg.id());
        }
        dlq.put_committed(msg)?;
        drop(gate);
        dlq.notify_arrival();
        Ok(())
    }

    // ---------------------------------------------- lifecycle & tasks --

    /// Registers background machinery (a channel mover, a TCP acceptor)
    /// serving this manager, so [`QueueManager::shutdown`] can stop it.
    pub fn attach_task(&self, task: Arc<dyn ManagedTask>) {
        self.tasks.lock().push(task);
    }

    /// Stops every attached background task (channel movers, TCP
    /// acceptors) and joins their threads. Idempotent: the task list is
    /// drained before stopping, so a second call — or a concurrent one —
    /// finds nothing left to do. The manager itself stays running; use
    /// [`QueueManager::crash`] to also drop volatile state.
    pub fn shutdown(&self) {
        // Take the list first and join outside the lock, so tasks whose
        // shutdown re-enters the manager cannot deadlock against it.
        let tasks = std::mem::take(&mut *self.tasks.lock());
        for task in tasks {
            task.shutdown();
        }
    }

    // ------------------------------------------------ crash & recovery --

    /// Simulates a crash: all volatile state is dropped and every blocked
    /// consumer is woken with [`MqError::ManagerStopped`]. Rebuild a manager
    /// over the same journal to model restart-with-recovery.
    pub fn crash(&self) {
        self.running.store(false, Ordering::SeqCst);
        let mut queues = self.queues.write_all();
        for queue in queues.values() {
            queue.close();
        }
        queues.clear();
    }

    /// Applies one replayed journal record to a recovery image.
    fn apply_recovered(&self, state: &mut RecoveredState, record: JournalRecord) {
        match record {
            JournalRecord::QueueCreated { queue } => {
                if let std::collections::hash_map::Entry::Vacant(e) = state.queues.entry(queue) {
                    let q = self.make_queue(e.key().clone(), QueueConfig::default());
                    e.insert(q);
                }
            }
            JournalRecord::QueueDeleted { queue } => {
                state.queues.remove(&queue);
            }
            JournalRecord::Put { queue, message } => {
                if let Some(q) = state.queues.get(&queue) {
                    state.dedup.record(Deduper::key_of(&message));
                    q.restore(message);
                }
            }
            JournalRecord::Get { queue, message_id } => {
                if let Some(q) = state.queues.get(&queue) {
                    q.remove_by_id(message_id);
                }
            }
            JournalRecord::TxCommit { puts, gets } => {
                for (queue, message_id) in gets {
                    if let Some(q) = state.queues.get(&queue) {
                        q.remove_by_id(message_id);
                    }
                }
                for (queue, message) in puts {
                    if let Some(q) = state.queues.get(&queue) {
                        state.dedup.record(Deduper::key_of(&message));
                        q.restore(message);
                    }
                }
            }
            JournalRecord::Expired { queue, message_id } => {
                if let Some(q) = state.queues.get(&queue) {
                    q.remove_by_id(message_id);
                }
            }
            // A custody transfer replays like a Put onto the outbound
            // transmission queue: accepted-and-forwarded is one atomic
            // record, so a crash between accept and re-enqueue rolls
            // back to "never accepted" and the upstream retry re-runs
            // the relay decision.
            JournalRecord::RelayCustody {
                xmit_queue,
                message,
                ..
            } => {
                if let Some(q) = state.queues.get(&xmit_queue) {
                    state.dedup.record(Deduper::key_of(&message));
                    q.restore(message);
                }
            }
            // Checkpoint markers are handled by the replay driver.
            JournalRecord::CheckpointStart { .. } | JournalRecord::CheckpointEnd { .. } => {}
        }
    }

    /// Streams the journal once, building the recovery image with
    /// **buffer-and-swap** checkpoint handling: a `CheckpointStart` opens a
    /// fresh pending image (queue directory and deduper reseeded from the
    /// marker), records between the markers apply to it, and the matching
    /// `CheckpointEnd` promotes it — discarding everything before the
    /// checkpoint in O(1). A torn checkpoint (no `End`) is dropped whole
    /// and the pre-checkpoint image stands, so a crash *during*
    /// checkpointing recovers exactly the old live set.
    ///
    /// Memory and time are O(live messages + tail records), not O(journal
    /// history): replay is a streaming visitor, and truncating journals
    /// ([`crate::journal::Journal::write_checkpoint`]) drop pre-checkpoint
    /// history physically.
    fn recover(&self) -> MqResult<()> {
        let mut base = RecoveredState::new(self.config.dedup_window);
        let mut pending: Option<(u64, RecoveredState)> = None;
        self.journal.replay(&mut |record| {
            match record {
                JournalRecord::CheckpointStart {
                    checkpoint_id,
                    queues,
                    dedup,
                } => {
                    let mut image = RecoveredState::new(self.config.dedup_window);
                    for name in queues {
                        let q = self.make_queue(name.clone(), QueueConfig::default());
                        image.queues.insert(name, q);
                    }
                    // The deduper's idempotency keys are part of the
                    // snapshot: a sender retrying a custody transfer across
                    // our restart must still be recognized even though the
                    // original arrival records were truncated away.
                    for (origin, id) in dedup {
                        image.dedup.record((origin, MessageId::from_u128(id)));
                    }
                    pending = Some((checkpoint_id, image));
                }
                JournalRecord::CheckpointEnd { checkpoint_id } => {
                    if let Some((open_id, image)) = pending.take() {
                        if open_id == checkpoint_id {
                            base = image;
                        }
                    }
                }
                other => {
                    let state = match pending.as_mut() {
                        Some((_, image)) => image,
                        None => &mut base,
                    };
                    self.apply_recovered(state, other);
                }
            }
            Ok(())
        })?;
        // A checkpoint still open at EOF is torn: drop it, keep `base`.
        drop(pending);
        let mut queues = self.queues.write_all();
        for (name, q) in base.queues {
            queues.insert(name, q);
        }
        *self.delivery_dedup.lock() = base.dedup;
        Ok(())
    }

    /// Snapshots all live persistent state into the journal as a
    /// checkpoint and truncates history before it, bounding journal growth
    /// and making the next recovery O(live). Expired messages are swept
    /// first so the snapshot carries none. Mutation is excluded (via the
    /// write side of the mutation gate) only for the snapshot itself.
    ///
    /// # Errors
    ///
    /// Journal failures; on failure the journal may hold a torn checkpoint,
    /// which recovery ignores (the pre-checkpoint image stands).
    pub fn checkpoint(&self) -> MqResult<()> {
        self.sweep_expired_all()?;
        let _gate = self.mutation_gate.write();
        self.checkpoint_locked()
    }

    /// Expires every ripe message on every queue (TTL and retention), via
    /// each queue's expiry heap. Returns the total expired.
    ///
    /// # Errors
    ///
    /// Journal failures appending expiry records.
    pub fn sweep_expired_all(&self) -> MqResult<usize> {
        let mut n = 0;
        for name in self.queues.sorted_keys() {
            if let Some(q) = self.queues.get(&name) {
                n += q.sweep_expired()?;
            }
        }
        Ok(n)
    }

    /// Checkpoints if the journal has grown past
    /// [`ManagerConfig::checkpoint_bytes`] since the last one. Skips (and
    /// returns `Ok`) when another thread holds the gate — the next commit
    /// will retry; checkpointing is a bound, not a deadline.
    pub(crate) fn maybe_checkpoint(&self) -> MqResult<()> {
        let Some(threshold) = self.config.checkpoint_bytes else {
            return Ok(());
        };
        let grown = self
            .journal
            .len_bytes()
            .saturating_sub(self.last_checkpoint_len.load(Ordering::Relaxed));
        if grown < threshold {
            return Ok(());
        }
        self.sweep_expired_all()?;
        // try_write, not write: the caller may sit under a read-held gate
        // somewhere up-stack (a commit inside a put watcher), and a blocked
        // writer would deadlock against it.
        let Some(_gate) = self.mutation_gate.try_write() else {
            return Ok(());
        };
        self.checkpoint_locked()
    }

    fn checkpoint_locked(&self) -> MqResult<()> {
        // Not wall-clock time (checkpoints must work under SimClock):
        // message-id entropy is unique enough to pair Start with End.
        let checkpoint_id = MessageId::generate().as_u128() as u64;
        let names = self.queues.sorted_keys();
        let dedup: Vec<(u64, u128)> = self
            .delivery_dedup
            .lock()
            .snapshot()
            .into_iter()
            .map(|(origin, id)| (origin, id.as_u128()))
            .collect();
        let mut records = Vec::new();
        records.push(JournalRecord::CheckpointStart {
            checkpoint_id,
            queues: names.clone(),
            dedup,
        });
        for name in &names {
            if let Some(q) = self.queues.get(name) {
                for msg in q.snapshot_persistent() {
                    records.push(JournalRecord::Put {
                        queue: name.clone(),
                        message: (*msg).clone(),
                    });
                }
            }
        }
        records.push(JournalRecord::CheckpointEnd { checkpoint_id });
        self.journal.write_checkpoint(&mut records.into_iter())?;
        self.last_checkpoint_len
            .store(self.journal.len_bytes(), Ordering::Relaxed);
        Ok(())
    }

    /// Bounds journal growth by snapshotting current persistent state.
    /// Alias for [`QueueManager::checkpoint`], kept for callers of the
    /// pre-checkpoint compaction API.
    ///
    /// # Errors
    ///
    /// As for [`QueueManager::checkpoint`].
    pub fn compact(&self) -> MqResult<()> {
        self.checkpoint()
    }
}

/// A recovery image: the queue directory plus the delivery deduper being
/// rebuilt, either the base image or the pending one a checkpoint opened.
struct RecoveredState {
    queues: HashMap<String, Arc<Queue>>,
    dedup: Deduper,
}

impl RecoveredState {
    fn new(dedup_window: usize) -> Self {
        RecoveredState {
            queues: HashMap::new(),
            dedup: Deduper::new(dedup_window),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{FileJournal, MemJournal};
    use simtime::SimClock;

    fn manager() -> (Arc<MemJournal>, Arc<QueueManager>) {
        let journal = MemJournal::new();
        let qm = QueueManager::builder("QM1")
            .clock(SimClock::new())
            .journal(journal.clone())
            .build()
            .unwrap();
        (journal, qm)
    }

    #[test]
    fn create_and_lookup_queues() {
        let (_j, qm) = manager();
        qm.create_queue("A").unwrap();
        assert!(qm.queue_exists("A"));
        assert!(qm.queue("A").is_ok());
        assert!(matches!(qm.queue("B"), Err(MqError::QueueNotFound(_))));
        assert!(matches!(qm.create_queue("A"), Err(MqError::QueueExists(_))));
        assert_eq!(
            qm.queue_names(),
            vec!["A".to_string(), DEAD_LETTER_QUEUE.to_string()]
        );
    }

    #[test]
    fn ensure_queue_is_idempotent() {
        let (_j, qm) = manager();
        let a = qm.ensure_queue("X").unwrap();
        let b = qm.ensure_queue("X").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn put_get_roundtrip() {
        let (_j, qm) = manager();
        qm.create_queue("Q").unwrap();
        qm.put("Q", Message::text("hi").build()).unwrap();
        let got = qm.get("Q", Wait::NoWait).unwrap().unwrap();
        assert_eq!(got.payload_str(), Some("hi"));
        assert!(got.put_time().is_some());
    }

    #[test]
    fn put_to_local_address() {
        let (_j, qm) = manager();
        qm.create_queue("Q").unwrap();
        qm.put_to(&QueueAddress::new("QM1", "Q"), Message::text("x").build())
            .unwrap();
        assert_eq!(qm.queue("Q").unwrap().depth(), 1);
    }

    #[test]
    fn put_to_remote_without_route_fails() {
        let (_j, qm) = manager();
        let err = qm
            .put_to(&QueueAddress::new("QM9", "Q"), Message::text("x").build())
            .unwrap_err();
        assert!(matches!(err, MqError::NoRoute(m) if m == "QM9"));
    }

    #[test]
    fn put_to_remote_stages_envelope_on_xmit_queue() {
        let (_j, qm) = manager();
        qm.define_route("QM2", "XMIT.QM2").unwrap();
        qm.put_to(
            &QueueAddress::new("QM2", "ORDERS"),
            Message::text("x").build(),
        )
        .unwrap();
        let envelope = qm.get("XMIT.QM2", Wait::NoWait).unwrap().unwrap();
        assert_eq!(
            envelope.str_property(XMIT_DEST_QUEUE_PROPERTY),
            Some("ORDERS")
        );
        assert_eq!(
            envelope.str_property(XMIT_DEST_MANAGER_PROPERTY),
            Some("QM2")
        );
        assert_eq!(qm.stats().forwarded.get(), 1);
    }

    #[test]
    fn max_message_size_enforced() {
        let journal = MemJournal::new();
        let qm = QueueManager::builder("QM1")
            .journal(journal)
            .config(ManagerConfig {
                max_message_size: Some(4),
                ..ManagerConfig::default()
            })
            .build()
            .unwrap();
        qm.create_queue("Q").unwrap();
        assert!(matches!(
            qm.put("Q", Message::text("too long").build()),
            Err(MqError::MessageTooLarge { size: 8, max: 4 })
        ));
    }

    #[test]
    fn deliver_from_channel_dead_letters_unknown_queue() {
        let (_j, qm) = manager();
        qm.deliver_from_channel("NOPE", Message::text("lost?").build())
            .unwrap();
        let dlq = qm.get(DEAD_LETTER_QUEUE, Wait::NoWait).unwrap().unwrap();
        assert!(dlq
            .str_property(DLQ_REASON_PROPERTY)
            .unwrap()
            .contains("NOPE"));
        assert_eq!(qm.stats().received_remote.get(), 1);
    }

    #[test]
    fn crash_and_recover_persistent_messages_only() {
        let journal = MemJournal::new();
        let clock = SimClock::new();
        let qm = QueueManager::builder("QM1")
            .clock(clock.clone())
            .journal(journal.clone())
            .build()
            .unwrap();
        qm.create_queue("Q").unwrap();
        qm.put("Q", Message::text("durable").persistent(true).build())
            .unwrap();
        qm.put("Q", Message::text("volatile").build()).unwrap();
        qm.crash();
        assert!(!qm.is_running());
        assert!(matches!(
            qm.put("Q", Message::text("x").build()),
            Err(MqError::ManagerStopped(_))
        ));

        let qm2 = QueueManager::builder("QM1")
            .clock(clock)
            .journal(journal)
            .build()
            .unwrap();
        let q = qm2.queue("Q").unwrap();
        assert_eq!(q.depth(), 1);
        let got = qm2.get("Q", Wait::NoWait).unwrap().unwrap();
        assert_eq!(got.payload_str(), Some("durable"));
    }

    #[test]
    fn recovery_applies_gets_and_deletes() {
        let journal = MemJournal::new();
        let qm = QueueManager::builder("QM1")
            .journal(journal.clone())
            .build()
            .unwrap();
        qm.create_queue("Q").unwrap();
        qm.create_queue("GONE").unwrap();
        let keep = Message::text("keep").persistent(true).build();
        let consumed = Message::text("consumed").persistent(true).build();
        qm.put("Q", keep.clone()).unwrap();
        qm.put("Q", consumed).unwrap();
        // Consume the second message (journal Get record references it).
        qm.get("Q", Wait::NoWait).unwrap().unwrap(); // takes "keep" (FIFO)
        qm.delete_queue("GONE").unwrap();
        qm.crash();

        let qm2 = QueueManager::builder("QM1")
            .journal(journal)
            .build()
            .unwrap();
        assert!(!qm2.queue_exists("GONE"));
        let remaining = qm2.queue("Q").unwrap().browse();
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].payload_str(), Some("consumed"));
    }

    #[test]
    fn compact_preserves_state_and_shrinks_journal() {
        let journal = MemJournal::new();
        let qm = QueueManager::builder("QM1")
            .journal(journal.clone())
            .build()
            .unwrap();
        qm.create_queue("Q").unwrap();
        for i in 0..20 {
            qm.put("Q", Message::text(format!("m{i}")).persistent(true).build())
                .unwrap();
        }
        for _ in 0..15 {
            qm.get("Q", Wait::NoWait).unwrap().unwrap();
        }
        let before = journal.record_count();
        qm.compact().unwrap();
        assert!(journal.record_count() < before);
        qm.crash();
        let qm2 = QueueManager::builder("QM1")
            .journal(journal)
            .build()
            .unwrap();
        assert_eq!(qm2.queue("Q").unwrap().depth(), 5);
        let first = qm2.get("Q", Wait::NoWait).unwrap().unwrap();
        assert_eq!(first.payload_str(), Some("m15"));
    }

    #[test]
    fn dead_letter_is_atomic_in_journal() {
        let journal = MemJournal::new();
        let qm = QueueManager::builder("QM1")
            .journal(journal.clone())
            .build()
            .unwrap();
        qm.create_queue("Q").unwrap();
        let msg = Message::text("poison").persistent(true).build();
        let id = msg.id();
        qm.put("Q", msg.clone()).unwrap();
        let taken = qm
            .queue("Q")
            .unwrap()
            .try_take(None, false)
            .unwrap()
            .unwrap();
        qm.dead_letter("Q", taken, "backout threshold exceeded")
            .unwrap();
        // Crash & recover: message must be on the DLQ, not on Q, not lost.
        qm.crash();
        let qm2 = QueueManager::builder("QM1")
            .journal(journal)
            .build()
            .unwrap();
        assert_eq!(qm2.queue("Q").unwrap().depth(), 0);
        let dlq_msgs = qm2.queue(DEAD_LETTER_QUEUE).unwrap().browse();
        assert_eq!(dlq_msgs.len(), 1);
        assert_eq!(dlq_msgs[0].id(), id);
        assert_eq!(
            dlq_msgs[0].str_property(DLQ_REASON_PROPERTY),
            Some("backout threshold exceeded")
        );
    }

    #[test]
    fn queue_created_during_recovery_accepts_traffic() {
        let journal = MemJournal::new();
        {
            let qm = QueueManager::builder("QM1")
                .journal(journal.clone())
                .build()
                .unwrap();
            qm.create_queue("Q").unwrap();
            qm.crash();
        }
        let qm = QueueManager::builder("QM1")
            .journal(journal)
            .build()
            .unwrap();
        qm.put("Q", Message::text("post-recovery").build()).unwrap();
        assert_eq!(qm.queue("Q").unwrap().depth(), 1);
    }

    #[test]
    fn consecutive_restarts_leave_journal_byte_identical() {
        // Recovery must be a pure read: rebuilding a manager over an
        // existing journal appends nothing, so restarting twice in a row
        // leaves the file untouched byte for byte.
        let path = crate::journal::tests::temp_path("restart-idempotent");
        {
            let journal = FileJournal::open(&path, false).unwrap();
            let qm = QueueManager::builder("QM1")
                .journal(journal)
                .build()
                .unwrap();
            qm.create_queue("Q").unwrap();
            for i in 0..5 {
                qm.put("Q", Message::text(format!("m{i}")).persistent(true).build())
                    .unwrap();
            }
            qm.get("Q", Wait::NoWait).unwrap().unwrap();
            qm.crash();
        }
        let after_first_run = std::fs::read(&path).unwrap();
        for restart in 1..=2 {
            let journal = FileJournal::open(&path, false).unwrap();
            let qm = QueueManager::builder("QM1")
                .journal(journal)
                .build()
                .unwrap();
            assert_eq!(qm.queue("Q").unwrap().depth(), 4);
            qm.crash();
            let now = std::fs::read(&path).unwrap();
            assert_eq!(
                now, after_first_run,
                "restart #{restart} must not grow or rewrite the journal"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_truncates_segments_and_recovers_live_state() {
        use crate::journal::{SegmentConfig, SegmentedJournal};
        let root = crate::journal::tests::temp_path("qmgr-seg-ckpt");
        std::fs::remove_dir_all(&root).ok();
        let config = SegmentConfig {
            roll_bytes: 512,
            sync_every_append: false,
        };
        let journal = SegmentedJournal::open(&root, config.clone()).unwrap();
        let qm = QueueManager::builder("QM1")
            .journal(journal.clone())
            .build()
            .unwrap();
        qm.create_queue("Q").unwrap();
        for i in 0..40 {
            qm.put("Q", Message::text(format!("m{i}")).persistent(true).build())
                .unwrap();
        }
        for _ in 0..35 {
            qm.get("Q", Wait::NoWait).unwrap().unwrap();
        }
        let before = journal.len_bytes();
        qm.checkpoint().unwrap();
        assert!(
            journal.len_bytes() < before,
            "checkpoint must shrink the segmented store ({} -> {})",
            before,
            journal.len_bytes()
        );
        assert_eq!(journal.segment_count().unwrap(), 1);
        qm.crash();
        let journal = SegmentedJournal::open(&root, config).unwrap();
        let qm2 = QueueManager::builder("QM1")
            .journal(journal)
            .build()
            .unwrap();
        assert_eq!(qm2.queue("Q").unwrap().depth(), 5);
        let first = qm2.get("Q", Wait::NoWait).unwrap().unwrap();
        assert_eq!(first.payload_str(), Some("m35"));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn uncommitted_transactional_get_survives_checkpoint_and_crash() {
        let (journal, qm) = manager();
        qm.create_queue("Q").unwrap();
        qm.put("Q", Message::text("held").persistent(true).build())
            .unwrap();
        let mut session = qm.session();
        session.begin().unwrap();
        let got = session.get("Q", Wait::NoWait).unwrap().unwrap();
        assert_eq!(got.payload_str(), Some("held"));
        // The checkpoint snapshot must still cover the provisionally
        // consumed message: its Get is only journaled at commit, and this
        // transaction never commits.
        qm.checkpoint().unwrap();
        qm.crash();
        let qm2 = QueueManager::builder("QM1")
            .journal(journal)
            .build()
            .unwrap();
        assert_eq!(qm2.queue("Q").unwrap().depth(), 1, "get rolls back");
        let back = qm2.get("Q", Wait::NoWait).unwrap().unwrap();
        assert_eq!(back.payload_str(), Some("held"));
    }

    #[test]
    fn commit_volume_triggers_automatic_checkpoint() {
        let journal = MemJournal::new();
        let qm = QueueManager::builder("QM1")
            .journal(journal.clone())
            .config(ManagerConfig {
                checkpoint_bytes: Some(1),
                ..ManagerConfig::default()
            })
            .build()
            .unwrap();
        qm.create_queue("Q").unwrap();
        let mut session = qm.session();
        session.begin().unwrap();
        session
            .put("Q", Message::text("auto").persistent(true).build())
            .unwrap();
        session.commit().unwrap();
        let records = journal.replay_collect().unwrap();
        assert!(
            records
                .iter()
                .any(|r| matches!(r, JournalRecord::CheckpointEnd { .. })),
            "a 1-byte threshold must checkpoint right after the commit"
        );
        qm.crash();
        let qm2 = QueueManager::builder("QM1")
            .journal(journal)
            .build()
            .unwrap();
        assert_eq!(qm2.queue("Q").unwrap().depth(), 1);
    }
}
