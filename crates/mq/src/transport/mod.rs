//! Channel transports: how a batch of envelopes reaches the peer manager.
//!
//! The paper's reliable-messaging substrate (Fig. 4/5) assumes queue
//! managers on different machines; this module abstracts the wire between
//! them. A [`Transport`] pushes a *batch* of transmission-queue envelopes
//! to the remote manager's receiving side and reports one of three fates
//! ([`BatchOutcome`]): delivered-and-acked, dropped (retry now), or
//! unavailable (back off until [`Transport::wait_ready`] fires).
//!
//! Two implementations exist:
//!
//! * [`LinkTransport`] — the original in-process path over the simulated
//!   [`Link`], kept for deterministic tests and fault-model experiments.
//! * [`tcp::TcpTransport`] / [`tcp::TcpAcceptor`] — real sockets with
//!   CRC-framed batches, heartbeats, reconnect, and receiver-side dedup.
//!
//! Both paths converge on [`QueueManager::accept_envelope`] — the relay
//! seam — so a message that crossed a real socket is deduplicated,
//! relayed or delivered, journaled, traced, and counted exactly like one
//! that crossed the simulated link.
//!
//! The channel mover ([`crate::channel`]) is transport-agnostic: it drains
//! the transmission queue in batches under one session transaction, calls
//! [`Transport::send_batch`], and commits only on
//! [`BatchOutcome::Delivered`] — the at-least-once half of the delivery
//! guarantee. The receiving manager's origin+message-id dedup
//! ([`crate::relay`]) supplies the at-most-once half across connection
//! failures, restarts, and multi-hop relays.

pub mod fault;
pub mod frame;
pub mod reactor;
pub mod tcp;

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use simtime::{Millis, SharedClock};

use crate::message::Message;
use crate::net::{Link, Transfer};
use crate::qmgr::QueueManager;
use crate::relay::RelayOutcome;
use crate::stats::{Counter, Gauge, Histogram, MetricsRegistry};
use crate::{MqError, MqResult};

/// Outcome of pushing one batch to the peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOutcome {
    /// The peer accepted (and acknowledged) the whole batch; the sender
    /// may commit the destructive gets from its transmission queue.
    Delivered,
    /// The batch was lost in transit (loss model, torn connection before
    /// the ack); the sender should roll back and retry promptly.
    Dropped,
    /// The transport has no usable connection; the sender should roll
    /// back and park in [`Transport::wait_ready`].
    Unavailable,
}

/// A one-way conduit from a local channel to a remote queue manager.
///
/// Implementations must be safe to share across threads; the channel mover
/// calls [`Transport::send_batch`] from its own thread while supervisors or
/// tests may concurrently tear connections down.
pub trait Transport: Send + Sync + fmt::Debug {
    /// Human-readable peer identity (manager name or socket address),
    /// used in logs and errors.
    fn peer(&self) -> String;

    /// Attempts to push `batch` to the peer and waits for the ack.
    fn send_batch(&self, batch: &[Message]) -> BatchOutcome;

    /// Parks the caller until the transport believes it can deliver again
    /// or `timeout` elapses; returns whether it is ready. Used by the
    /// mover to back off from partitions without sleep-polling.
    fn wait_ready(&self, timeout: Duration) -> bool;

    /// Stops any background machinery (supervisor threads, sockets) and
    /// joins it. Must be idempotent; the default is a no-op for
    /// transports without background state.
    fn shutdown(&self) {}

    /// The pipelined interface, when this transport supports keeping a
    /// window of batches in flight ([`PipelinedTransport`]). Transports
    /// that only speak lockstep (`send_batch`) return `None` and the
    /// channel mover falls back to one-batch-at-a-time.
    fn pipeline(&self) -> Option<&dyn PipelinedTransport> {
        None
    }
}

/// A ticket for one submitted batch: which connection incarnation carried
/// it and its sequence number within that incarnation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchTicket {
    /// Connection epoch the batch was written under; bumps on every
    /// (re)connect, so a ticket from a dead connection can never be
    /// confirmed by a later one's watermark.
    pub epoch: u64,
    /// Batch sequence number (monotonic across the transport's life).
    pub seq: u64,
}

/// A snapshot of pipelined delivery progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineProgress {
    /// Current connection epoch.
    pub epoch: u64,
    /// Highest cumulative ack watermark observed for `epoch`.
    pub acked: u64,
    /// Whether the connection behind `epoch` is still established. When
    /// `false`, in-flight tickets at `epoch` beyond `acked` are lost
    /// (their fate unknown — the mover rolls back and the receiver-side
    /// dedup absorbs the retransmits).
    pub connected: bool,
}

impl PipelineProgress {
    /// Whether the batch behind `ticket` is covered by this progress:
    /// same epoch and at-or-below the acked watermark. A covered batch
    /// was accepted by the peer and its sessions may commit — an observed
    /// watermark is final even if the connection died afterwards.
    pub fn covers(&self, ticket: BatchTicket) -> bool {
        self.epoch == ticket.epoch && self.acked >= ticket.seq
    }

    /// Whether the batch behind `ticket` can still be confirmed later:
    /// its epoch is current and the connection is alive (the watermark
    /// may yet advance over it).
    pub fn pending(&self, ticket: BatchTicket) -> bool {
        self.epoch == ticket.epoch && self.connected && self.acked < ticket.seq
    }
}

/// Why a pipelined submit did not produce a ticket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// No established connection; park in [`Transport::wait_ready`].
    Unavailable,
    /// The batch can never cross this transport (oversized frame); the
    /// caller must shrink or dead-letter it, not retry verbatim.
    Rejected,
}

/// Windowed, ack-decoupled batch submission over a transport.
///
/// `submit` writes a batch and returns immediately with a
/// [`BatchTicket`]; cumulative watermark acks (`AckWin` frames) advance
/// [`PipelinedTransport::progress`], and the channel mover commits each
/// in-flight session once its ticket is covered. Backpressure is
/// physical: when the socket refuses bytes, `submit` parks until the
/// reactor reports the socket writable again.
pub trait PipelinedTransport: Send + Sync {
    /// Writes `batch` to the wire without waiting for its ack.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Unavailable`] with nothing written when no
    /// connection is established (or it died mid-write);
    /// [`SubmitError::Rejected`] when the batch cannot be framed.
    fn submit(&self, batch: &[Message]) -> Result<BatchTicket, SubmitError>;

    /// Current delivery progress (epoch, watermark, liveness).
    fn progress(&self) -> PipelineProgress;

    /// Parks until progress moves past `seen` (watermark advance, epoch
    /// change, connection loss) or `timeout` elapses, returning the
    /// progress at wake. Spurious wakeups are allowed.
    fn wait_progress(&self, seen: PipelineProgress, timeout: Duration) -> PipelineProgress;

    /// Wakes any `wait_progress` parkers (used by queue put-watchers so
    /// the mover notices new work while it waits on acks).
    fn poke(&self);

    /// How many batches the mover should keep in flight.
    fn window(&self) -> usize {
        16
    }
}

/// Metric cells for one transport endpoint, registered as `mq.transport.*`.
///
/// Built with [`TransportMetrics::registered`], which follows the
/// registry's get-or-create semantics: every transport sharing one
/// observability hub accumulates into the same cells.
#[derive(Debug, Clone)]
pub struct TransportMetrics {
    /// Payload bytes written to the wire (frame bodies, sender side).
    pub bytes_sent: Arc<Counter>,
    /// Payload bytes accepted off the wire (receiver side).
    pub bytes_received: Arc<Counter>,
    /// Batches pushed and acknowledged.
    pub batches_sent: Arc<Counter>,
    /// Batches accepted by the receiving side.
    pub batches_received: Arc<Counter>,
    /// Messages pushed inside acknowledged batches.
    pub messages_sent: Arc<Counter>,
    /// Messages enqueued by the receiving side (dedup survivors).
    pub messages_received: Arc<Counter>,
    /// Successful connection establishments (first and subsequent).
    pub connects: Arc<Counter>,
    /// Re-establishments after a previously healthy connection died.
    pub reconnects: Arc<Counter>,
    /// Handshakes that failed (bad magic/version/peer or early close).
    pub handshake_failures: Arc<Counter>,
    /// Heartbeat round-trips completed.
    pub heartbeats: Arc<Counter>,
    /// Heartbeats that got no pong; each one tears the connection down.
    pub heartbeat_misses: Arc<Counter>,
    /// Messages discarded by receiver-side dedup (resends of already
    /// delivered ids after a mid-batch connection loss).
    pub dedup_dropped: Arc<Counter>,
    /// Per-batch send→ack latency in microseconds.
    pub batch_micros: Arc<Histogram>,
    /// Cumulative ack frames consumed (each may cover many batches).
    pub acks_received: Arc<Counter>,
    /// Times a sender parked on a full socket (backpressure events).
    pub send_stalls: Arc<Counter>,
    /// Batches currently in flight (submitted, not yet acked) — the
    /// visible middle of the backpressure chain.
    pub window_depth: Arc<Gauge>,
    /// In-flight batches rolled back because their connection died before
    /// the watermark covered them (each is retransmitted and deduped).
    pub window_rollbacks: Arc<Counter>,
}

impl TransportMetrics {
    /// Gets-or-creates the `mq.transport.*` cells in `registry`.
    pub fn registered(registry: &MetricsRegistry) -> TransportMetrics {
        TransportMetrics {
            bytes_sent: registry.counter("mq.transport.bytes_sent"),
            bytes_received: registry.counter("mq.transport.bytes_received"),
            batches_sent: registry.counter("mq.transport.batches_sent"),
            batches_received: registry.counter("mq.transport.batches_received"),
            messages_sent: registry.counter("mq.transport.messages_sent"),
            messages_received: registry.counter("mq.transport.messages_received"),
            connects: registry.counter("mq.transport.connects"),
            reconnects: registry.counter("mq.transport.reconnects"),
            handshake_failures: registry.counter("mq.transport.handshake_failures"),
            heartbeats: registry.counter("mq.transport.heartbeats"),
            heartbeat_misses: registry.counter("mq.transport.heartbeat_misses"),
            dedup_dropped: registry.counter("mq.transport.dedup_dropped"),
            batch_micros: registry.histogram("mq.transport.batch_micros"),
            acks_received: registry.counter("mq.transport.acks_received"),
            send_stalls: registry.counter("mq.transport.send_stalls"),
            window_depth: registry.gauge("mq.transport.window_depth"),
            window_rollbacks: registry.counter("mq.transport.window_rollbacks"),
        }
    }
}

/// Hands one arriving envelope to the receiving manager through the
/// relay seam ([`QueueManager::accept_envelope`]): the manager-level
/// deduper drops sender retries, envelopes addressed here are delivered
/// locally (journaled, counted, unknown queues dead-lettered), and
/// envelopes addressed to *other* managers are relayed toward their
/// destination or dead-lettered with a reason — never accepted as local.
///
/// # Errors
///
/// Local put/journal failures from the receiving manager.
pub(crate) fn deliver_envelope(to: &QueueManager, msg: Message) -> MqResult<RelayOutcome> {
    to.accept_envelope(msg)
}

/// The in-process transport: crosses a simulated [`Link`] and delivers
/// straight into the remote manager, exactly as channels always have.
///
/// One [`Link::transfer`] fate is sampled per *batch*, so the loss model's
/// drop rate applies to batches rather than individual messages; since a
/// dropped batch is retried in full, the end-to-end guarantee (and every
/// existing link-fault test) is unchanged.
pub struct LinkTransport {
    link: Arc<Link>,
    to: Arc<QueueManager>,
    clock: SharedClock,
    metrics: TransportMetrics,
}

impl fmt::Debug for LinkTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LinkTransport")
            .field("to", &self.to.name())
            .field("link", &self.link)
            .finish()
    }
}

impl LinkTransport {
    /// Builds the in-process transport from `from`'s side of `link`
    /// toward the manager `to`. Registers the link's counters as
    /// `mq.net.*` and the transport cells as `mq.transport.*` on `from`'s
    /// observability hub.
    pub fn new(
        from: &Arc<QueueManager>,
        to: Arc<QueueManager>,
        link: Arc<Link>,
    ) -> Arc<LinkTransport> {
        let registry = from.obs().metrics();
        link.register_metrics(registry);
        Arc::new(LinkTransport {
            link,
            clock: from.clock().clone(),
            metrics: TransportMetrics::registered(registry),
            to,
        })
    }

    /// The underlying simulated link.
    pub fn link(&self) -> &Arc<Link> {
        &self.link
    }
}

impl Transport for LinkTransport {
    fn peer(&self) -> String {
        self.to.name().to_owned()
    }

    fn send_batch(&self, batch: &[Message]) -> BatchOutcome {
        let started = std::time::Instant::now();
        match self.link.transfer() {
            Transfer::Deliver(latency) => {
                if latency > Millis::ZERO {
                    self.clock.sleep(latency);
                }
                let mut bytes = 0u64;
                for msg in batch {
                    bytes += msg.payload().len() as u64;
                    match deliver_envelope(&self.to, msg.clone()) {
                        Ok(RelayOutcome::Duplicate) => self.metrics.dedup_dropped.incr(),
                        Ok(_) => {}
                        // The remote manager refused (stopped/crashed):
                        // treat like a partition so the sender backs off
                        // and the batch is retried after recovery.
                        Err(_) => return BatchOutcome::Unavailable,
                    }
                }
                self.metrics.batches_sent.incr();
                self.metrics.batches_received.incr();
                self.metrics.messages_sent.add(batch.len() as u64);
                self.metrics.messages_received.add(batch.len() as u64);
                self.metrics.bytes_sent.add(bytes);
                self.metrics.bytes_received.add(bytes);
                self.metrics.batch_micros.record_duration(started.elapsed());
                BatchOutcome::Delivered
            }
            Transfer::Dropped => BatchOutcome::Dropped,
            Transfer::Down => BatchOutcome::Unavailable,
        }
    }

    fn wait_ready(&self, timeout: Duration) -> bool {
        if self.link.is_up() {
            return true;
        }
        self.link.wait_state_change(timeout);
        self.link.is_up()
    }
}

/// Convenience conversion used by error paths in the TCP module.
pub(crate) fn transport_error(peer: impl Into<String>, reason: impl Into<String>) -> MqError {
    MqError::Transport {
        peer: peer.into(),
        reason: reason.into(),
    }
}
