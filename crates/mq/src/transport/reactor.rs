//! A sharded non-blocking readiness reactor multiplexing every transport
//! connection over a small fixed pool of I/O threads.
//!
//! The thread-per-connection acceptor and the blocking ack-read in the
//! sender both fall away: each `TcpStream` is switched to non-blocking
//! mode and registered here with a [`Pollable`] handler. A shard thread
//! parks in `epoll_wait` (direct `extern "C"` bindings on Linux — no new
//! dependencies; a condvar-paced readiness scan is the portable fallback)
//! and dispatches readable/writable events to the handlers:
//!
//! * acceptor connections run their whole lifecycle (handshake, batch
//!   delivery, coalesced watermark acks, heartbeat replies) in
//!   [`Pollable::on_readable`];
//! * sender connections consume ack/pong frames there, advancing the
//!   pipelined window's watermark;
//! * a writer that hit `WouldBlock` parks and calls
//!   [`Registration::want_write`]; the shard reports the socket writable
//!   once via [`Pollable::on_writable`] (one-shot, re-arm to keep
//!   waiting), which is the first link of the end-to-end backpressure
//!   chain (socket full → mover parks → queue depth grows).
//!
//! Handlers run on shard threads, so they must never block on locks held
//! across slow work; the shard itself holds no lock while dispatching.
//! The pool is process-wide and lazily started ([`Reactor::global`]),
//! sized from `available_parallelism` and capped small — connections are
//! multiplexed, not thread-per-anything.

use std::collections::HashMap;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A connection registered with the reactor.
pub trait Pollable: Send + Sync {
    /// The socket is readable (or errored/hung up — the read will say).
    /// Drain until `WouldBlock`. Return `false` to drop the registration;
    /// the reactor forgets the connection and the handler owns closing
    /// its stream.
    fn on_readable(&self) -> bool;

    /// The socket became writable after [`Registration::want_write`].
    /// One-shot: call `want_write` again to keep waiting. Return `false`
    /// to drop the registration.
    fn on_writable(&self) -> bool {
        true
    }
}

/// Handle to a registered connection; cheap to clone.
#[derive(Clone)]
pub struct Registration {
    shard: Arc<Shard>,
    token: u64,
}

impl Registration {
    /// Arms a one-shot writable notification for this connection. The
    /// next time the socket can accept bytes, the shard calls
    /// [`Pollable::on_writable`].
    pub fn want_write(&self) {
        self.shard.set_write_interest(self.token, true);
    }

    /// Removes the connection from the reactor. Idempotent; safe to call
    /// from within the handler's own callbacks.
    pub fn deregister(&self) {
        self.shard.deregister(self.token);
    }
}

impl std::fmt::Debug for Registration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registration")
            .field("token", &self.token)
            .finish()
    }
}

/// The process-wide shard pool.
pub struct Reactor {
    shards: Vec<Arc<Shard>>,
    next_shard: AtomicU64,
    next_token: AtomicU64,
}

impl Reactor {
    /// The lazily-started global reactor. Shard threads live for the
    /// process; idle shards are parked in the kernel, not spinning.
    pub fn global() -> &'static Reactor {
        static GLOBAL: OnceLock<Reactor> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .clamp(2, 8);
            let shards = (0..n)
                .map(|i| {
                    let shard = Arc::new(Shard::new());
                    let runner = Arc::clone(&shard);
                    std::thread::Builder::new()
                        .name(format!("mq-reactor-{i}"))
                        .spawn(move || runner.run())
                        .ok();
                    shard
                })
                .collect();
            Reactor {
                shards,
                next_shard: AtomicU64::new(0),
                next_token: AtomicU64::new(1),
            }
        })
    }

    /// Registers `stream` (its own clone; the caller keeps the original)
    /// for readable events, dispatching to `handler` on a shard thread.
    /// The stream must already be in non-blocking mode.
    ///
    /// # Errors
    ///
    /// Propagates the clone or poll-registration failure.
    pub fn register(
        &self,
        stream: &TcpStream,
        handler: Arc<dyn Pollable>,
    ) -> io::Result<Registration> {
        let own = stream.try_clone()?;
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let i = self.next_shard.fetch_add(1, Ordering::Relaxed) as usize % self.shards.len();
        let shard = Arc::clone(&self.shards[i]);
        shard.register(token, own, handler)?;
        Ok(Registration { shard, token })
    }
}

struct Entry {
    stream: TcpStream,
    handler: Arc<dyn Pollable>,
    #[cfg_attr(target_os = "linux", allow(dead_code))]
    want_write: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    //! Minimal epoll bindings. Declared directly against libc's exported
    //! symbols (the C runtime is already linked) — no new crates.

    pub const EPOLL_CLOEXEC: i32 = 0x8_0000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    /// Mirrors `struct epoll_event`; packed on x86 per the kernel ABI.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }

    /// Safe wrapper: creates an epoll instance (negative on failure).
    #[allow(unsafe_code)]
    pub fn create() -> i32 {
        // SAFETY: plain syscall with no pointer arguments.
        unsafe { epoll_create1(EPOLL_CLOEXEC) }
    }

    /// Safe wrapper: one `epoll_ctl` operation on `epfd`.
    #[allow(unsafe_code)]
    pub fn ctl(epfd: i32, op: i32, fd: i32, event: &mut EpollEvent) -> i32 {
        // SAFETY: `event` is a valid exclusive reference for the call's
        // duration; fd ownership is not transferred.
        unsafe { epoll_ctl(epfd, op, fd, event) }
    }

    /// Safe wrapper: waits for events into `events`, returning the count
    /// (negative on failure).
    #[allow(unsafe_code)]
    pub fn wait(epfd: i32, events: &mut [EpollEvent], timeout: i32) -> i32 {
        // SAFETY: the pointer/length pair comes from a live slice.
        unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout) }
    }
}

#[cfg(target_os = "linux")]
struct Shard {
    epfd: i32,
    entries: parking_lot::Mutex<HashMap<u64, Entry>>,
}

#[cfg(target_os = "linux")]
impl Shard {
    fn new() -> Shard {
        // A negative epfd is kept and rejected by register().
        let epfd = sys::create();
        Shard {
            epfd,
            entries: parking_lot::Mutex::new(HashMap::new()),
        }
    }

    fn ctl(&self, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        let rc = sys::ctl(self.epfd, op, fd, &mut ev);
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn register(&self, token: u64, stream: TcpStream, handler: Arc<dyn Pollable>) -> io::Result<()> {
        use std::os::fd::AsRawFd;
        if self.epfd < 0 {
            return Err(io::Error::other("epoll instance unavailable"));
        }
        let fd = stream.as_raw_fd();
        // Insert before the ctl: the shard thread may see the event the
        // instant the ctl lands.
        self.entries.lock().insert(
            token,
            Entry {
                stream,
                handler,
                want_write: false,
            },
        );
        let armed = self.ctl(
            sys::EPOLL_CTL_ADD,
            fd,
            sys::EPOLLIN | sys::EPOLLRDHUP,
            token,
        );
        if armed.is_err() {
            self.entries.lock().remove(&token);
        }
        armed
    }

    fn set_write_interest(&self, token: u64, on: bool) {
        use std::os::fd::AsRawFd;
        let entries = self.entries.lock();
        if let Some(entry) = entries.get(&token) {
            let mut events = sys::EPOLLIN | sys::EPOLLRDHUP;
            if on {
                events |= sys::EPOLLOUT;
            }
            let fd = entry.stream.as_raw_fd();
            drop(entries);
            let _ = self.ctl(sys::EPOLL_CTL_MOD, fd, events, token);
        }
    }

    fn deregister(&self, token: u64) {
        use std::os::fd::AsRawFd;
        let entry = self.entries.lock().remove(&token);
        if let Some(entry) = entry {
            let _ = self.ctl(sys::EPOLL_CTL_DEL, entry.stream.as_raw_fd(), 0, token);
            // Dropping `entry.stream` closes the reactor's clone.
        }
    }

    fn run(self: Arc<Self>) {
        const MAX_EVENTS: usize = 64;
        if self.epfd < 0 {
            return;
        }
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        loop {
            let n = sys::wait(self.epfd, &mut events, -1);
            if n < 0 {
                if io::Error::last_os_error().kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return;
            }
            for ev in events.iter().take(n as usize) {
                // Copy out of the (possibly packed) struct.
                let token = { ev.data };
                let flags = { ev.events };
                let writable = flags & sys::EPOLLOUT != 0;
                let readable =
                    flags & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLERR | sys::EPOLLHUP) != 0;
                // Never hold the map lock across handler dispatch: the
                // handler may re-enter want_write/deregister.
                let handler = self.entries.lock().get(&token).map(|e| Arc::clone(&e.handler));
                let Some(handler) = handler else { continue };
                let mut keep = true;
                if writable {
                    // One-shot: disarm before the callback; the handler
                    // re-arms if its write is still parked.
                    self.set_write_interest(token, false);
                    keep = handler.on_writable();
                }
                if keep && readable {
                    keep = handler.on_readable();
                }
                if !keep {
                    self.deregister(token);
                }
            }
        }
    }
}

/// Portable fallback: a condvar-paced readiness scan. Each shard wakes
/// when a connection registers and then sweeps its handlers, letting the
/// non-blocking reads discover readiness (`WouldBlock` costs one
/// syscall). Only compiled where epoll is unavailable.
#[cfg(not(target_os = "linux"))]
struct Shard {
    entries: parking_lot::Mutex<HashMap<u64, Entry>>,
    wake: parking_lot::Condvar,
}

#[cfg(not(target_os = "linux"))]
impl Shard {
    fn new() -> Shard {
        Shard {
            entries: parking_lot::Mutex::new(HashMap::new()),
            wake: parking_lot::Condvar::new(),
        }
    }

    fn register(&self, token: u64, stream: TcpStream, handler: Arc<dyn Pollable>) -> io::Result<()> {
        let mut entries = self.entries.lock();
        entries.insert(
            token,
            Entry {
                stream,
                handler,
                want_write: false,
            },
        );
        self.wake.notify_all();
        Ok(())
    }

    fn set_write_interest(&self, token: u64, on: bool) {
        let mut entries = self.entries.lock();
        if let Some(entry) = entries.get_mut(&token) {
            entry.want_write = on;
        }
        self.wake.notify_all();
    }

    fn deregister(&self, token: u64) {
        self.entries.lock().remove(&token);
    }

    fn run(self: Arc<Self>) {
        loop {
            let sweep: Vec<(u64, bool, Arc<dyn Pollable>)> = {
                let mut entries = self.entries.lock();
                while entries.is_empty() {
                    self.wake.wait(&mut entries);
                }
                entries
                    .iter()
                    .map(|(t, e)| (*t, e.want_write, Arc::clone(&e.handler)))
                    .collect()
            };
            for (token, want_write, handler) in sweep {
                let mut keep = true;
                if want_write {
                    self.set_write_interest(token, false);
                    keep = handler.on_writable();
                }
                if keep {
                    keep = handler.on_readable();
                }
                if !keep {
                    self.deregister(token);
                }
            }
            // Pace the scan: readiness latency is bounded by this tick.
            let mut entries = self.entries.lock();
            self.wake
                .wait_for(&mut entries, std::time::Duration::from_millis(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    struct CountingEcho {
        stream: parking_lot::Mutex<TcpStream>,
        reads: AtomicUsize,
        closed: AtomicUsize,
    }

    impl Pollable for CountingEcho {
        fn on_readable(&self) -> bool {
            let mut stream = self.stream.lock();
            let mut buf = [0u8; 256];
            loop {
                match stream.read(&mut buf) {
                    Ok(0) => {
                        self.closed.fetch_add(1, Ordering::SeqCst);
                        return false;
                    }
                    Ok(n) => {
                        self.reads.fetch_add(n, Ordering::SeqCst);
                        let _ = stream.write_all(&buf[..n]);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                    Err(_) => {
                        self.closed.fetch_add(1, Ordering::SeqCst);
                        return false;
                    }
                }
            }
        }
    }

    fn wait_until(deadline: Duration, mut ok: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < deadline {
            if ok() {
                return true;
            }
            std::thread::yield_now();
        }
        ok()
    }

    #[test]
    fn reactor_dispatches_reads_and_detects_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let echo = Arc::new(CountingEcho {
            stream: parking_lot::Mutex::new(server.try_clone().unwrap()),
            reads: AtomicUsize::new(0),
            closed: AtomicUsize::new(0),
        });
        let reg = Reactor::global()
            .register(&server, Arc::clone(&echo) as Arc<dyn Pollable>)
            .unwrap();

        let mut client = client;
        client.write_all(b"ping!").unwrap();
        assert!(wait_until(Duration::from_secs(5), || {
            echo.reads.load(Ordering::SeqCst) == 5
        }));
        // The handler echoed back through its own clone.
        let mut back = [0u8; 5];
        client.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"ping!");

        drop(client);
        assert!(wait_until(Duration::from_secs(5), || {
            echo.closed.load(Ordering::SeqCst) == 1
        }));
        // Deregistered by returning false; a second deregister is a no-op.
        reg.deregister();
    }

    #[test]
    fn want_write_fires_writable_once() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        struct WriteWatch {
            fired: AtomicUsize,
        }
        impl Pollable for WriteWatch {
            fn on_readable(&self) -> bool {
                true
            }
            fn on_writable(&self) -> bool {
                self.fired.fetch_add(1, Ordering::SeqCst);
                true
            }
        }
        let watch = Arc::new(WriteWatch {
            fired: AtomicUsize::new(0),
        });
        let reg = Reactor::global()
            .register(&server, Arc::clone(&watch) as Arc<dyn Pollable>)
            .unwrap();
        // An idle socket is immediately writable; the notification is
        // one-shot, so exactly one callback per arm.
        reg.want_write();
        assert!(wait_until(Duration::from_secs(5), || {
            watch.fired.load(Ordering::SeqCst) >= 1
        }));
        reg.deregister();
        drop(client);
    }
}
