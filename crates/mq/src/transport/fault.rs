//! The fault plane: one scripting surface over every fault-injection hook.
//!
//! Fault hooks grew up scattered: the simulated [`Link`] has partition
//! toggles, the TCP acceptor has [`TcpAcceptor::inject_drop_before_ack`]
//! and [`TcpAcceptor::kick_all`], and storage faults lived as ad-hoc test
//! journals. A failure *schedule* — the kind a declarative scenario
//! declares — needs to script all of them uniformly without downcasting to
//! a concrete transport. [`FaultPlane`] is that surface: every injectable
//! component exposes a named fault point and applies [`FaultAction`]s,
//! refusing the ones it cannot express.
//!
//! | action | [`Link`] | [`TcpAcceptor`] | [`FaultableJournal`] |
//! |---|---|---|---|
//! | `Partition` | link down | pause accepts + kick | — |
//! | `Heal` | link up | resume accepts | — |
//! | `DropNext(n)` | next `n` transfers dropped | next `n` batches unacked | — |
//! | `KickConnections` | — | close live conns | — |
//! | `TearJournalTail` | — | — | drop newest record |
//! | `FailStorage` | — | — | appends fail |
//! | `HealStorage` | — | — | appends recover |

use std::fmt;

use crate::error::{MqError, MqResult};
use crate::journal::FaultableJournal;
use crate::net::Link;

use super::tcp::TcpAcceptor;

/// One scripted fault, interpreted by whichever component it targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Sever the component: a link goes down, an acceptor stops taking
    /// connections and closes live ones. Senders observe an unavailable
    /// transport and back off until [`FaultAction::Heal`].
    Partition,
    /// Undo a [`FaultAction::Partition`].
    Heal,
    /// Make the next `n` transfers fail *after* any receiver-side effect:
    /// a link drops the next `n` batches outright; a TCP acceptor delivers
    /// the next `n` batches but closes the connection instead of acking —
    /// the classic duplicate-generating fault that receiver dedup absorbs.
    DropNext(u64),
    /// Hard-close every live connection once (transient network blip,
    /// unlike the sustained [`FaultAction::Partition`]).
    KickConnections,
    /// Tear the newest journal record off, as if its final write was
    /// interrupted; recovery silently stops before it.
    TearJournalTail,
    /// Make journal appends fail until [`FaultAction::HealStorage`].
    FailStorage,
    /// Undo a [`FaultAction::FailStorage`].
    HealStorage,
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::Partition => write!(f, "partition"),
            FaultAction::Heal => write!(f, "heal"),
            FaultAction::DropNext(n) => write!(f, "drop_next({n})"),
            FaultAction::KickConnections => write!(f, "kick_connections"),
            FaultAction::TearJournalTail => write!(f, "tear_journal_tail"),
            FaultAction::FailStorage => write!(f, "fail_storage"),
            FaultAction::HealStorage => write!(f, "heal_storage"),
        }
    }
}

/// A component that can have faults scripted into it.
///
/// Implementations apply the actions they can express and refuse the rest
/// with [`MqError::Transport`] naming the fault point — a failure schedule
/// aimed at the wrong component is a scenario bug, not a silent no-op.
pub trait FaultPlane: Send + Sync + fmt::Debug {
    /// Stable name of this fault point (e.g. `link:QM.A->QM.B`,
    /// `tcp:QM.B`, `journal:QM.B`), used in schedules and errors.
    fn fault_point(&self) -> String;

    /// Applies one fault action.
    ///
    /// # Errors
    ///
    /// [`MqError::Transport`] when this component cannot express `action`.
    fn apply_fault(&self, action: FaultAction) -> MqResult<()>;
}

/// Builds the standard refusal for an unsupported action.
fn unsupported(point: &dyn FaultPlane, action: FaultAction) -> MqError {
    MqError::Transport {
        peer: point.fault_point(),
        reason: format!("fault point cannot express {action}"),
    }
}

impl FaultPlane for Link {
    fn fault_point(&self) -> String {
        "link".to_owned()
    }

    fn apply_fault(&self, action: FaultAction) -> MqResult<()> {
        match action {
            FaultAction::Partition => {
                self.set_up(false);
                Ok(())
            }
            FaultAction::Heal => {
                self.set_up(true);
                Ok(())
            }
            FaultAction::DropNext(n) => {
                self.drop_next(n);
                Ok(())
            }
            _ => Err(unsupported(self, action)),
        }
    }
}

impl FaultPlane for TcpAcceptor {
    fn fault_point(&self) -> String {
        format!("tcp:{}", self.manager_name())
    }

    fn apply_fault(&self, action: FaultAction) -> MqResult<()> {
        match action {
            FaultAction::Partition => {
                self.set_paused(true);
                self.kick_all();
                Ok(())
            }
            FaultAction::Heal => {
                self.set_paused(false);
                Ok(())
            }
            FaultAction::DropNext(n) => {
                self.inject_drop_before_ack(n);
                Ok(())
            }
            FaultAction::KickConnections => {
                self.kick_all();
                Ok(())
            }
            _ => Err(unsupported(self, action)),
        }
    }
}

impl FaultPlane for FaultableJournal {
    fn fault_point(&self) -> String {
        "journal".to_owned()
    }

    fn apply_fault(&self, action: FaultAction) -> MqResult<()> {
        match action {
            FaultAction::TearJournalTail => {
                self.tear_tail();
                Ok(())
            }
            FaultAction::FailStorage => {
                self.set_failing(true);
                Ok(())
            }
            FaultAction::HealStorage => {
                self.set_failing(false);
                Ok(())
            }
            _ => Err(unsupported(self, action)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Transfer;

    #[test]
    fn link_partition_heal_and_forced_drops() {
        let link = Link::ideal();
        let plane: &dyn FaultPlane = link.as_ref();
        plane.apply_fault(FaultAction::Partition).unwrap();
        assert_eq!(link.transfer(), Transfer::Down);
        plane.apply_fault(FaultAction::Heal).unwrap();
        plane.apply_fault(FaultAction::DropNext(2)).unwrap();
        assert_eq!(link.transfer(), Transfer::Dropped);
        assert_eq!(link.transfer(), Transfer::Dropped);
        assert!(matches!(link.transfer(), Transfer::Deliver(_)));
    }

    #[test]
    fn link_refuses_storage_faults() {
        let link = Link::ideal();
        let err = link.apply_fault(FaultAction::TearJournalTail).unwrap_err();
        match err {
            MqError::Transport { peer, reason } => {
                assert_eq!(peer, "link");
                assert!(reason.contains("tear_journal_tail"), "{reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn journal_storage_faults_via_plane() {
        let journal = FaultableJournal::new();
        let plane: &dyn FaultPlane = journal.as_ref();
        plane.apply_fault(FaultAction::FailStorage).unwrap();
        assert!(journal.is_failing());
        plane.apply_fault(FaultAction::HealStorage).unwrap();
        assert!(!journal.is_failing());
        assert!(plane.apply_fault(FaultAction::Partition).is_err());
        assert_eq!(plane.fault_point(), "journal");
    }
}
